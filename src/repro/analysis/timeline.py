"""Periodic snapshots of server and controller state during a run.

A :class:`TimelineProbe` schedules itself on the simulator and captures
a :class:`TimelineSample` every ``interval`` simulated seconds: queue
depths, CPU busy split, cumulative outcomes, and — when the policy is
UNIT — the control knobs (``C_flex``, degraded-item count, ticket
threshold).  This is the reusable version of what the flash-crowd
example does by hand.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.db.server import CONTROL_EVENT_PRIORITY, Server
from repro.db.transactions import Outcome


@dataclasses.dataclass(frozen=True)
class TimelineSample:
    """One snapshot of a running simulation."""

    time: float
    ready_queries: int
    ready_updates: int
    busy_query: float
    busy_update: float
    outcomes: Dict[Outcome, int]
    c_flex: Optional[float] = None
    degraded_items: Optional[int] = None
    ticket_threshold: Optional[float] = None

    @property
    def utilization_so_far(self) -> float:
        """CPU busy fraction from t=0 to this sample."""
        if self.time <= 0:
            return 0.0
        return (self.busy_query + self.busy_update) / self.time


class Timeline:
    """An ordered collection of samples with simple accessors."""

    def __init__(self) -> None:
        self.samples: List[TimelineSample] = []

    def append(self, sample: TimelineSample) -> None:
        if self.samples and sample.time < self.samples[-1].time:
            raise ValueError("samples must be appended in time order")
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def series(self, field: str) -> List[float]:
        """Extract one attribute across samples (None values skipped)."""
        values = []
        for sample in self.samples:
            value = getattr(sample, field)
            if value is not None:
                values.append(value)
        return values

    def outcome_deltas(self, outcome: Outcome) -> List[int]:
        """Per-interval increments of one outcome count."""
        deltas = []
        previous = 0
        for sample in self.samples:
            current = sample.outcomes.get(outcome, 0)
            deltas.append(current - previous)
            previous = current
        return deltas


class TimelineProbe:
    """Self-scheduling sampler attached to a server.

    Example::

        probe = TimelineProbe(server, interval=10.0, horizon=400.0)
        probe.start()
        sim.run(until=401.0)
        print(len(probe.timeline))
    """

    def __init__(self, server: Server, interval: float, horizon: float) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.server = server
        self.interval = interval
        self.horizon = horizon
        self.timeline = Timeline()

    def start(self) -> None:
        """Schedule the first sample (at one interval from now)."""
        self.server.sim.schedule_after(
            self.interval, self._sample, priority=CONTROL_EVENT_PRIORITY
        )

    def _sample(self) -> None:
        server = self.server
        busy = server.busy_time_by_class()
        policy = server.policy
        c_flex = None
        degraded = None
        threshold = None
        admission = getattr(policy, "admission", None)
        if admission is not None:
            c_flex = admission.c_flex
        modulator = getattr(policy, "modulator", None)
        if modulator is not None:
            degraded = modulator.degraded_count()
            threshold = modulator.tickets.threshold
        self.timeline.append(
            TimelineSample(
                time=server.now,
                ready_queries=len(server.ready.ready_queries()),
                ready_updates=len(server.ready.ready_updates()),
                busy_query=busy["query"],
                busy_update=busy["update"],
                outcomes=dict(server.outcome_counts),
                c_flex=c_flex,
                degraded_items=degraded,
                ticket_threshold=threshold,
            )
        )
        if server.now + self.interval <= self.horizon:
            server.sim.schedule_after(
                self.interval, self._sample, priority=CONTROL_EVENT_PRIORITY
            )
