"""Response-time analysis over query records.

The paper evaluates outcome *counts*; response-time distributions are
the natural next question a systems reader asks (how close to their
deadlines do successful queries finish? how long do doomed queries
linger before the firm deadline kills them?).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.db.transactions import Outcome, QueryRecord


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]).

    Raises:
        ValueError: On an empty sequence or ``q`` outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    value = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Interpolation round-off must not escape the observed range.
    return min(max(value, ordered[0]), ordered[-1])


@dataclasses.dataclass(frozen=True)
class LatencySummary:
    """Percentiles of response time for one outcome class."""

    outcome: Optional[Outcome]  # None = all outcomes pooled
    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_values(
        cls, values: Sequence[float], outcome: Optional[Outcome] = None
    ) -> "LatencySummary":
        if not values:
            raise ValueError("no values to summarize")
        return cls(
            outcome=outcome,
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50),
            p90=percentile(values, 90),
            p99=percentile(values, 99),
            maximum=max(values),
        )


def latency_summary(
    records: Iterable[QueryRecord],
) -> Dict[Optional[Outcome], LatencySummary]:
    """Response-time summaries pooled and per outcome.

    Rejections resolve instantly (response time 0) and are excluded
    from the pooled summary to avoid skewing it; they still appear
    under their own key when present.
    """
    by_outcome: Dict[Outcome, List[float]] = {}
    pooled: List[float] = []
    for record in records:
        by_outcome.setdefault(record.outcome, []).append(record.response_time)
        if record.outcome is not Outcome.REJECTED:
            pooled.append(record.response_time)

    result: Dict[Optional[Outcome], LatencySummary] = {}
    if pooled:
        result[None] = LatencySummary.from_values(pooled)
    for outcome, values in by_outcome.items():
        result[outcome] = LatencySummary.from_values(values, outcome)
    return result


def slack_ratios(records: Iterable[QueryRecord]) -> List[float]:
    """For successful queries: response time as a fraction of the
    deadline (1.0 = finished exactly at the wire)."""
    return [
        record.response_time / record.relative_deadline
        for record in records
        if record.outcome is Outcome.SUCCESS and record.relative_deadline > 0
    ]
