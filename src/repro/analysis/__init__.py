"""Post-run analysis: latency distributions and control timelines.

The experiment runner reports outcome totals; this subpackage digs into
*how* a run unfolded — response-time percentiles per outcome
(:mod:`repro.analysis.latency`) and periodic snapshots of the server
and controller state (:mod:`repro.analysis.timeline`), the machinery
behind plots like the flash-crowd example.
"""

from repro.analysis.latency import LatencySummary, latency_summary, percentile
from repro.analysis.timeline import Timeline, TimelineProbe, TimelineSample

__all__ = [
    "LatencySummary",
    "Timeline",
    "TimelineProbe",
    "TimelineSample",
    "latency_summary",
    "percentile",
]
