"""``python -m repro.obs``: summarize, filter, or convert a trace.

Subcommands::

    summary     per-kind counts and the time span of a JSONL trace
    filter      select events by kind / time range (JSONL in, JSONL out)
    chrome      convert a JSONL trace to Chrome trace-event JSON
    controller  extract control.window snapshots as CSV
    digest      SHA-256 of the canonical JSONL bytes
    spans       fold a trace into query-lifecycle spans (JSONL out)
    attrib      wait-time attribution + USM-loss ledger tables
    dash        run a sweep with the live dashboard and export the
                page as a static HTML artifact (used by CI)
    smoke       run one instrumented cell end to end and export
                every artifact (used by CI)

Everything consumes the JSONL dump written by
:func:`repro.obs.export.write_trace_jsonl` (one flattened event per
line), so traces can be post-processed long after the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.export import (
    render_trace_jsonl,
    trace_digest,
    write_chrome_trace,
    write_controller_csv,
    write_trace_jsonl,
)
from repro.obs.logging_setup import (
    add_verbosity_flags,
    configure_logging,
    verbosity_from_args,
)


def _load_events(path: str) -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {exc}")
            if not isinstance(event, dict):
                raise SystemExit(f"{path}:{lineno}: expected a JSON object")
            events.append(event)
    return events


def _truncation_warning(events: List[Dict[str, object]]) -> Optional[str]:
    """Warning text when the trace carries a ``trace.meta`` header
    reporting ring-buffer drops (the stream is incomplete)."""
    for event in events:
        if event.get("kind") != "trace.meta":
            continue
        dropped = event.get("dropped")
        if isinstance(dropped, int) and dropped > 0:
            return (
                f"WARNING: trace is truncated — the recorder ring dropped "
                f"{dropped} events (oldest first); analyses over this file "
                "are partial"
            )
    return None


def _cmd_summary(args: argparse.Namespace) -> int:
    events = _load_events(args.trace)
    by_kind: Dict[str, int] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for event in events:
        kind = str(event.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
    print(f"{args.trace}: {len(events)} events")
    warning = _truncation_warning(events)
    if warning is not None:
        print(f"  {warning}", file=sys.stderr)
    if t_min is not None and t_max is not None:
        print(f"  sim-time span: {t_min:.3f}s .. {t_max:.3f}s")
    for kind in sorted(by_kind):
        print(f"  {kind:<22} {by_kind[kind]}")
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    events = _load_events(args.trace)
    kinds = set(args.kind or [])

    def keep(event: Dict[str, object]) -> bool:
        if kinds and event.get("kind") not in kinds:
            return False
        t = event.get("t")
        if isinstance(t, (int, float)):
            if args.since is not None and t < args.since:
                return False
            if args.until is not None and t > args.until:
                return False
        return True

    selected = [event for event in events if keep(event)]
    if args.out:
        count = write_trace_jsonl(selected, args.out)
        print(f"wrote {count} of {len(events)} events to {args.out}")
    else:
        sys.stdout.write(render_trace_jsonl(selected))
    return 0


def _cmd_chrome(args: argparse.Namespace) -> int:
    events = _load_events(args.trace)
    count = write_chrome_trace(events, args.out)
    print(f"wrote {count} Chrome trace events to {args.out}")
    return 0


def _cmd_controller(args: argparse.Namespace) -> int:
    events = _load_events(args.trace)
    count = write_controller_csv(events, args.out)
    print(f"wrote {count} controller-window rows to {args.out}")
    return 0


def _cmd_digest(args: argparse.Namespace) -> int:
    print(f"{trace_digest(_load_events(args.trace))}  {args.trace}")
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    from repro.obs.spans import build_spans, render_spans_jsonl, write_spans_jsonl

    events = _load_events(args.trace)
    warning = _truncation_warning(events)
    if warning is not None:
        print(warning, file=sys.stderr)
    result = build_spans(events)
    if args.out:
        count = write_spans_jsonl(result, args.out)
        print(f"wrote {count} spans to {args.out}")
    else:
        sys.stdout.write(render_spans_jsonl(result))
    summary = result.summary()
    if result.partial:
        print(
            f"note: span output is PARTIAL (trace dropped {result.dropped} "
            "events)",
            file=sys.stderr,
        )
    if summary["skipped"]:
        print(f"note: skipped events {summary['skipped']}", file=sys.stderr)
    return 0


def _cmd_attrib(args: argparse.Namespace) -> int:
    from repro.core.usm import TABLE2_PROFILES, PenaltyProfile
    from repro.obs.attrib import (
        attrib_report,
        ledger_table,
        percentile_table,
        wait_table,
    )
    from repro.obs.spans import build_spans

    if args.profile == "naive":
        profile = PenaltyProfile.naive()
    elif args.profile in TABLE2_PROFILES:
        profile = TABLE2_PROFILES[args.profile]
    else:
        choices = ", ".join(["naive"] + sorted(TABLE2_PROFILES))
        raise SystemExit(f"unknown profile {args.profile!r} (choices: {choices})")

    events = _load_events(args.trace)
    warning = _truncation_warning(events)
    if warning is not None:
        print(warning, file=sys.stderr)
    result = build_spans(events)
    report = attrib_report(result.spans, profile)
    title_suffix = " (PARTIAL trace)" if result.partial else ""
    print(wait_table(report["waits"], title=f"Wait breakdown{title_suffix}"))
    print()
    print(percentile_table(report["percentiles"]))
    print()
    print(ledger_table(report["ledger"]))
    if args.json:
        from repro.experiments.report import json_sanitize

        report["spans_summary"] = result.summary()
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(
            json.dumps(json_sanitize(report), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        print(f"wrote JSON report to {args.json}")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    # Heavy imports deferred, as in smoke.
    from repro.core.usm import PenaltyProfile
    from repro.experiments.config import SCALES, ExperimentConfig
    from repro.experiments.sweep import run_grid
    from repro.obs.config import ObsConfig
    from repro.obs.dash import DashboardServer, DashboardState, render_static_html

    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    traces = [name.strip() for name in args.traces.split(",") if name.strip()]
    scale = SCALES[args.scale]
    base = ExperimentConfig(
        policy=policies[0],
        update_trace=traces[0],
        seed=args.seed,
        scale=scale,
        obs=ObsConfig(enabled=True, keep_events=True, metrics=False),
    )
    state = DashboardState(
        title=f"{args.scale} sweep: {','.join(policies)} × {','.join(traces)}"
    )
    server: Optional[DashboardServer] = None
    if args.serve:
        server = DashboardServer(state, port=args.port).start()
        print(f"dashboard live at {server.url}")
    run_grid(
        policies,
        traces,
        [PenaltyProfile.naive()],
        scale,
        seed=args.seed,
        base=base,
        dashboard=state,
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_static_html(state), encoding="utf-8")
    print(f"wrote static dashboard to {out}")
    if server is not None:
        if args.hold:
            print("sweep complete; serving until interrupted (Ctrl-C)")
            import threading

            try:
                threading.Event().wait()
            except KeyboardInterrupt:
                pass
        server.stop()
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    # Imported here: the experiments stack is heavy and the other
    # subcommands are pure trace-file plumbing.
    from repro.experiments.config import SCALES, ExperimentConfig
    from repro.obs.config import ObsConfig

    from repro.experiments.runner import run_experiment

    out_dir = Path(args.out)
    config = ExperimentConfig(
        policy=args.policy,
        update_trace=args.trace,
        seed=args.seed,
        scale=SCALES[args.scale],
        obs=ObsConfig(enabled=True, out_dir=str(out_dir)),
    )
    report = run_experiment(config)
    print(report.summary())
    if report.obs_summary is not None:
        recorded = report.obs_summary.get("recorded")
        dropped = report.obs_summary.get("dropped")
        print(f"trace: {recorded} events recorded, {dropped} dropped")
    artifacts = sorted(out_dir.glob("*")) if out_dir.exists() else []
    for artifact in artifacts:
        print(f"artifact: {artifact}")
    return 0 if artifacts else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, filter, or convert a recorded simulation trace.",
    )
    add_verbosity_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="per-kind counts and time span")
    p.add_argument("trace", help="JSONL trace file")
    p.set_defaults(func=_cmd_summary)

    p = sub.add_parser("filter", help="select events by kind / time range")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument(
        "--kind", action="append", help="keep only this kind (repeatable)"
    )
    p.add_argument("--since", type=float, help="keep events at or after this sim time")
    p.add_argument("--until", type=float, help="keep events at or before this sim time")
    p.add_argument("--out", help="write JSONL here instead of stdout")
    p.set_defaults(func=_cmd_filter)

    p = sub.add_parser("chrome", help="convert to Chrome trace-event JSON")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--out", required=True, help="output .json path")
    p.set_defaults(func=_cmd_chrome)

    p = sub.add_parser("controller", help="extract control.window rows as CSV")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--out", required=True, help="output .csv path")
    p.set_defaults(func=_cmd_controller)

    p = sub.add_parser("digest", help="SHA-256 of the canonical JSONL bytes")
    p.add_argument("trace", help="JSONL trace file")
    p.set_defaults(func=_cmd_digest)

    p = sub.add_parser(
        "spans", help="fold a trace into query-lifecycle spans (JSONL)"
    )
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--out", help="write span JSONL here instead of stdout")
    p.set_defaults(func=_cmd_spans)

    p = sub.add_parser(
        "attrib", help="wait-time attribution + USM-loss ledger tables"
    )
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument(
        "--profile",
        default="naive",
        help="penalty profile: naive (default) or a Table-2 key",
    )
    p.add_argument("--json", help="also write the full report as JSON here")
    p.set_defaults(func=_cmd_attrib)

    p = sub.add_parser(
        "dash", help="run a sweep with the live dashboard, export static HTML"
    )
    p.add_argument("--scale", default="smoke", help="scale preset (default: smoke)")
    p.add_argument(
        "--policies", default="unit,odu", help="comma-separated policy names"
    )
    p.add_argument(
        "--traces", default="low-unif,med-unif", help="comma-separated trace names"
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", required=True, help="static HTML output path")
    p.add_argument(
        "--serve", action="store_true", help="serve the live dashboard too"
    )
    p.add_argument("--port", type=int, default=0, help="port for --serve (0=auto)")
    p.add_argument(
        "--hold",
        action="store_true",
        help="with --serve: keep serving after the sweep until Ctrl-C",
    )
    p.set_defaults(func=_cmd_dash)

    p = sub.add_parser(
        "smoke", help="run one instrumented cell and export every artifact"
    )
    p.add_argument("--scale", default="smoke", help="scale preset (default: smoke)")
    p.add_argument("--policy", default="unit")
    p.add_argument("--trace", default="med-unif", help="update trace name")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", required=True, help="artifact output directory")
    p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    configure_logging(verbosity_from_args(args))
    result: int = args.func(args)
    return result


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
