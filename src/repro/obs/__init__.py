"""Observability for the simulator and the UNIT feedback loop.

The paper's contribution is a *feedback* framework — admission control
and update-frequency modulation reacting to the monitored USM window —
and this package is the window into those per-decision signals:

``repro.obs.trace``
    A trace recorder with typed, slotted trace events (admission,
    outcome attribution, lock waits/preemptions, update apply/drop,
    modulation changes, controller window snapshots), recorded in
    **sim time** and stored in a bounded ring buffer.  The shared
    :data:`~repro.obs.trace.NULL_RECORDER` makes the disabled path a
    single attribute check on every instrumentation site.

``repro.obs.metrics``
    A metrics registry (counters, gauges, histograms with fixed bucket
    edges, keyed by name + frozen label tuples) built on the
    :mod:`repro.sim.stats` machinery.

``repro.obs.export``
    Exporters: JSONL trace dump, Chrome trace-event JSON (loadable in
    Perfetto), controller-window CSV, and a Prometheus-style text
    snapshot.

``repro.obs.logging_setup``
    Quiet-by-default ``logging`` configuration shared by every CLI.

``python -m repro.obs``
    Summarize, filter, or convert a recorded trace; ``smoke`` runs one
    instrumented cell end to end and exports every artifact.

The cardinal rule: observability must never change simulation results.
Recorders only *observe* (no RNG draws, no extra simulator events), and
every timestamp is simulated time — simlint's SL002 patrols this
package like any other simulation component.
"""

from repro.obs.config import ObsConfig
from repro.obs.export import (
    chrome_trace_events,
    controller_rows,
    render_prometheus,
    trace_digest,
    write_chrome_trace,
    write_controller_csv,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.logging_setup import configure_logging, get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, RunMetrics
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsConfig",
    "Recorder",
    "RunMetrics",
    "TraceEvent",
    "TraceRecorder",
    "chrome_trace_events",
    "configure_logging",
    "controller_rows",
    "get_logger",
    "render_prometheus",
    "trace_digest",
    "write_chrome_trace",
    "write_controller_csv",
    "write_prometheus",
    "write_trace_jsonl",
]
