"""Wait-time attribution and the USM-loss ledger.

The analysis layer over :mod:`repro.obs.spans`: given one run's spans
it answers *where the deadline slack went* (queue wait vs lock wait vs
refresh wait vs service) and *which Eq. 5 component lost USM points to
which cause*; given a sweep's spans it breaks both down per load level
(the update-trace volume prefix: ``low`` / ``med`` / ``high``), which
is where query-at-a-time collapse becomes visible.

**Reconciliation contract.**  :func:`usm_loss_ledger` applies a
:class:`~repro.core.usm.PenaltyProfile` to span outcome counts with the
*identical* operation order as
:meth:`repro.core.usm.UsmAccumulator.components` (``count / total``
then ``* weight``), so for a complete span set the ledger's component
values equal the report's ``components`` dict float-for-float — an
exact cross-check between the span pipeline and the USM accounting,
asserted in tests.

Everything here is pure post-processing: no wall clock, no I/O, no
randomness — deterministic output for a deterministic span set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.fixedpoint import fixed_from_float, float_from_fixed
from repro.core.usm import PenaltyProfile
from repro.db.transactions import Outcome
from repro.obs.logging_setup import get_logger
from repro.obs.spans import (
    COMPONENT_BY_OUTCOME,
    WAIT_STATES,
    QuerySpan,
)

_log = get_logger(__name__)

#: The percentiles every table reports.
PERCENTILES: Tuple[float, ...] = (0.50, 0.90, 0.99)


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an ascending sequence.

    The numpy default ("linear"): rank ``(n-1) * fraction``, fractional
    ranks interpolate between neighbors.  Deterministic and exact on
    the boundary ranks; raises on an empty sequence.
    """
    n = len(sorted_values)
    if n == 0:
        raise ValueError("percentile of an empty sequence")
    if n == 1:
        return sorted_values[0]
    rank = (n - 1) * fraction
    lo = int(rank)
    hi = min(lo + 1, n - 1)
    weight = rank - lo
    if weight == 0.0:
        return sorted_values[lo]
    return sorted_values[lo] * (1.0 - weight) + sorted_values[hi] * weight


def _percentile_row(values: List[float]) -> Dict[str, Optional[float]]:
    """p50/p90/p99 (plus count) of a value list; Nones when empty."""
    row: Dict[str, Optional[float]] = {"count": float(len(values))}
    if not values:
        for fraction in PERCENTILES:
            row[f"p{int(fraction * 100)}"] = None
        return row
    values = sorted(values)
    for fraction in PERCENTILES:
        row[f"p{int(fraction * 100)}"] = percentile(values, fraction)
    return row


def latency_slack_percentiles(
    spans: Iterable[QuerySpan],
) -> Dict[str, Dict[str, Optional[float]]]:
    """Latency and deadline-slack percentile rows over completed spans.

    Rejection spans (no lifecycle) are excluded; slack is
    ``deadline − outcome_time`` (negative means the deadline passed —
    only deadline misses land there under firm deadlines).
    """
    latencies: List[float] = []
    slacks: List[float] = []
    for span in spans:
        if span.admit is None:
            continue
        latencies.append(span.duration)
        slack = span.slack
        if slack is not None:
            slacks.append(slack)
    return {
        "latency": _percentile_row(latencies),
        "slack": _percentile_row(slacks),
    }


def wait_breakdown(spans: Iterable[QuerySpan]) -> Dict[str, object]:
    """Where the lifecycle time of a span set went, by wait state.

    Totals are exact fixed-point sums over every segment (converted to
    floats once at the end); ``share`` is each state's fraction of the
    total spanned time.  Also counts preemptions, restarts, and the
    spans themselves (rejections separately — they carry no time).
    """
    totals_fixed: Dict[str, int] = {state: 0 for state in WAIT_STATES}
    completed = 0
    rejected = 0
    preemptions = 0
    restarts = 0
    for span in spans:
        if span.admit is None:
            rejected += 1
            continue
        completed += 1
        preemptions += span.preemptions
        restarts += span.restarts
        for segment in span.segments:
            dur = fixed_from_float(segment.end) - fixed_from_float(segment.start)
            totals_fixed[segment.state] = totals_fixed.get(segment.state, 0) + dur
    grand = sum(totals_fixed.values())
    totals = {state: float_from_fixed(fx) for state, fx in totals_fixed.items()}
    shares = {
        state: (fx / grand if grand else 0.0) for state, fx in totals_fixed.items()
    }
    return {
        "totals": totals,
        "shares": shares,
        "completed": completed,
        "rejected": rejected,
        "preemptions": preemptions,
        "restarts": restarts,
    }


def usm_loss_ledger(
    spans: Iterable[QuerySpan],
    profile: PenaltyProfile,
) -> Dict[str, object]:
    """The Eq. 5 decomposition attributed span by span.

    For each component (``S`` / ``R`` / ``F_m`` / ``F_s``): the span
    count, the outcome ratio, the component value (gain for S, loss
    otherwise — computed with the same ``count / total * weight``
    order as :meth:`UsmAccumulator.components`, so a complete span set
    reconciles float-for-float with the report), and the per-cause
    span counts (admission reasons for R, dominant wait states for
    F_m, ``stale-read`` for F_s).
    """
    weights = {
        "S": profile.gain,
        "R": profile.c_r,
        "F_m": profile.c_fm,
        "F_s": profile.c_fs,
    }
    counts: Dict[str, int] = {component: 0 for component in weights}
    causes: Dict[str, Dict[str, int]] = {component: {} for component in weights}
    total = 0
    for span in spans:
        total += 1
        component = span.usm_component
        counts[component] = counts.get(component, 0) + 1
        if span.cause is not None:
            bucket = causes.setdefault(component, {})
            bucket[span.cause] = bucket.get(span.cause, 0) + 1
    components: Dict[str, float] = {}
    ratios: Dict[str, float] = {}
    for component, weight in weights.items():
        ratio = counts[component] / total if total else 0.0
        ratios[component] = ratio
        components[component] = ratio * weight
    # Mirror UsmAccumulator.average_usm exactly: sum the per-outcome
    # contributions (gain positive, penalties negative) in Outcome
    # order, then divide once — NOT S − R − F_m − F_s over the
    # components, which rounds differently in the last ulp.
    contributions = {
        "S": profile.contribution(Outcome.SUCCESS),
        "R": profile.contribution(Outcome.REJECTED),
        "F_m": profile.contribution(Outcome.DEADLINE_MISS),
        "F_s": profile.contribution(Outcome.DATA_STALE),
    }
    usm = (
        sum(contributions[c] * counts[c] for c in weights) / total
        if total
        else 0.0
    )
    return {
        "total": total,
        "counts": counts,
        "ratios": ratios,
        "components": components,
        "causes": {
            component: dict(sorted(bucket.items()))
            for component, bucket in causes.items()
        },
        "usm": usm,
        "profile": profile.describe(),
    }


def attrib_report(
    spans: Sequence[QuerySpan],
    profile: PenaltyProfile,
) -> Dict[str, object]:
    """One run's full attribution: breakdown + percentiles + ledger."""
    return {
        "waits": wait_breakdown(spans),
        "percentiles": latency_slack_percentiles(spans),
        "ledger": usm_loss_ledger(spans, profile),
    }


# ----------------------------------------------------------------------
# sweep-level aggregation (per load level)
# ----------------------------------------------------------------------


#: Recognized update-trace volume prefixes (the standard traces are
#: named ``<volume>-<skew>``; see workload.updates.VOLUME_UTILIZATION).
RECOGNIZED_LOAD_LEVELS: Tuple[str, ...] = ("low", "med", "high")

#: Bucket for trace names without a recognized volume prefix.
OTHER_LOAD_LEVEL = "other"

# Unrecognized names already warned about (warn once per name, so a
# sweep over many cells of one custom scenario logs a single line).
_warned_levels: set = set()


def load_level(trace_name: str) -> str:
    """The load-level bucket of an update-trace name.

    The standard traces are named ``<volume>-<skew>`` (``med-unif``,
    ``high-skew`` …); the volume prefix is the load level.  Names
    without a recognized volume prefix (custom scenario names, ad-hoc
    traces) all pool into the explicit ``"other"`` bucket — a warning
    is logged once per distinct name so misnamed traces don't silently
    vanish into spurious one-cell levels.
    """
    prefix = trace_name.split("-", 1)[0]
    if prefix in RECOGNIZED_LOAD_LEVELS:
        return prefix
    if trace_name not in _warned_levels:
        _warned_levels.add(trace_name)
        _log.warning(
            "update-trace name %r has no recognized volume prefix %s; "
            "pooling it into the %r load bucket",
            trace_name,
            RECOGNIZED_LOAD_LEVELS,
            OTHER_LOAD_LEVEL,
        )
    return OTHER_LOAD_LEVEL


def aggregate_by_load(
    cells: Mapping[Tuple[str, str, str], Sequence[QuerySpan]],
    profile: PenaltyProfile,
) -> Dict[str, Dict[str, object]]:
    """Pool sweep cells by load level and attribute each pool.

    ``cells`` maps sweep keys ``(policy, trace, profile_name)`` to that
    cell's spans (e.g. from :func:`repro.obs.spans.build_spans` over
    each report's events).  Returns ``{level: attribution}`` in sorted
    level order; each attribution is an :func:`attrib_report` over the
    pooled spans plus the contributing cell keys.
    """
    pools: Dict[str, List[QuerySpan]] = {}
    members: Dict[str, List[Tuple[str, str, str]]] = {}
    for key in sorted(cells):
        level = load_level(key[1])
        pools.setdefault(level, []).extend(cells[key])
        members.setdefault(level, []).append(key)
    out: Dict[str, Dict[str, object]] = {}
    for level in sorted(pools):
        report = attrib_report(pools[level], profile)
        report["cells"] = ["/".join(key) for key in members[level]]
        out[level] = report
    return out


# ----------------------------------------------------------------------
# ASCII rendering (the ``obs attrib`` CLI output)
# ----------------------------------------------------------------------


def wait_table(breakdown: Mapping[str, object], title: str = "Wait breakdown") -> str:
    """Render a wait breakdown as a fixed-width table."""
    from repro.experiments.report import ascii_table

    totals = breakdown["totals"]
    shares = breakdown["shares"]
    rows = [
        [state, totals[state], shares[state]]  # type: ignore[index]
        for state in WAIT_STATES
    ]
    footer = (
        f"{title} — {breakdown['completed']} completed, "
        f"{breakdown['rejected']} rejected, "
        f"{breakdown['preemptions']} preemptions, "
        f"{breakdown['restarts']} restarts"
    )
    return ascii_table(["state", "total (s)", "share"], rows, title=footer)


def percentile_table(
    percentiles: Mapping[str, Mapping[str, Optional[float]]],
    title: str = "Latency / slack percentiles",
) -> str:
    """Render latency/slack percentile rows as a table."""
    from repro.experiments.report import ascii_table

    headers = ["metric", "count"] + [f"p{int(f * 100)}" for f in PERCENTILES]
    rows = []
    for metric in sorted(percentiles):
        row_data = percentiles[metric]
        cells: List[object] = [metric, int(row_data["count"] or 0)]
        for fraction in PERCENTILES:
            value = row_data.get(f"p{int(fraction * 100)}")
            cells.append("-" if value is None else value)
        rows.append(cells)
    return ascii_table(headers, rows, title=title)


def ledger_table(
    ledger: Mapping[str, object], title: str = "USM-loss ledger"
) -> str:
    """Render a USM-loss ledger as a fixed-width table."""
    from repro.experiments.report import ascii_table

    counts = ledger["counts"]
    ratios = ledger["ratios"]
    components = ledger["components"]
    causes = ledger["causes"]
    rows = []
    for component in ("S", "R", "F_m", "F_s"):
        cause_text = ", ".join(
            f"{cause}:{count}"
            for cause, count in causes[component].items()  # type: ignore[index]
        )
        rows.append(
            [
                component,
                counts[component],  # type: ignore[index]
                ratios[component],  # type: ignore[index]
                components[component],  # type: ignore[index]
                cause_text or "-",
            ]
        )
    heading = (
        f"{title} — {ledger['total']} queries, USM={ledger['usm']:+.4f}, "
        f"profile {ledger['profile']}"
    )
    return ascii_table(
        ["component", "count", "ratio", "value", "causes"], rows, title=heading
    )
