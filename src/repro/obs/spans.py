"""Query-lifecycle spans: per-query wait-state segmentation.

The trace stream (:mod:`repro.obs.trace`) records *point* events.  This
module folds them into one **span** per query — the full lifecycle
``admitted → queued → lock-wait → executing → (preempted)* → outcome``
— with every simulated instant between admission and outcome assigned
to exactly one wait state:

=================  ====================================================
``queued``         in the ready queue (EDF order, behind updates)
``lock-wait``      blocked behind a 2PL-HP lock
``refresh-wait``   parked while on-demand refreshes commit (ODU)
``executing``      on the CPU (including work later lost to restarts)
=================  ====================================================

**Exactness contract.**  Segments are contiguous by construction
(each closes at the timestamp the next opens), so in the integer
fixed-point mirror (:mod:`repro.core.fixedpoint`, units of 2**-1074)
their durations telescope: the sum over a completed span equals
``fixed(end) − fixed(admit)`` *exactly* — not approximately, to the
ulp.  The builder asserts this invariant for every span it finalizes.

**USM attribution.**  Each span names the Eq. 5 component its outcome
feeds (``S`` / ``R`` / ``F_m`` / ``F_s``) and a ``cause``: rejections
carry the admission controller's reason, deadline misses carry the
dominant wait state that consumed the slack (or ``service``), stale
reads carry ``stale-read``.  Fault windows overlapping a failed span
are listed so injected degradation is attributable.

Malformed streams (ring-buffer truncation, orphan outcomes, sched
events for unknown queries) never raise: the builder skips and counts
(:attr:`SpanBuildResult.skipped`), and marks the output *partial* when
the recorder reports dropped events.

All timestamps are simulated time; this module never reads the wall
clock (simlint SL002 patrols it like any other simulation component).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.fixedpoint import fixed_from_float, float_from_fixed
from repro.obs import trace as _trace

# Wait states (the ``state`` field of every segment).
STATE_QUEUED = "queued"
STATE_LOCK_WAIT = "lock-wait"
STATE_REFRESH_WAIT = "refresh-wait"
STATE_EXECUTING = "executing"

#: Segment states in presentation (and tie-break) order.
WAIT_STATES: Tuple[str, ...] = (
    STATE_QUEUED,
    STATE_LOCK_WAIT,
    STATE_REFRESH_WAIT,
    STATE_EXECUTING,
)

#: Bootstrap state between ``query.admit`` and the first scheduler
#: event.  Both fire at the same simulated instant, so this segment is
#: always zero-length and is dropped from the output.
_STATE_ADMITTED = "admitted"

# USM components (Eq. 5) a span's outcome feeds.
COMPONENT_BY_OUTCOME: Dict[str, str] = {
    "success": "S",
    "rejected": "R",
    "dmf": "F_m",
    "dsf": "F_s",
}

# Skip-counter categories (malformed / truncated streams).
SKIP_ORPHAN_OUTCOME = "orphan_outcome"  # non-rejection outcome, no admit
SKIP_ORPHAN_SCHED = "orphan_sched"  # sched.* for an unknown query
SKIP_ORPHAN_LOCK = "orphan_lock"  # lock wait/grant for an unknown txn
SKIP_DUPLICATE_ADMIT = "duplicate_admit"
SKIP_UNFINISHED = "unfinished"  # admitted, no outcome by stream end

SKIP_CATEGORIES: Tuple[str, ...] = (
    SKIP_ORPHAN_OUTCOME,
    SKIP_ORPHAN_SCHED,
    SKIP_ORPHAN_LOCK,
    SKIP_DUPLICATE_ADMIT,
    SKIP_UNFINISHED,
)


class Segment:
    """One contiguous wait-state interval of a span."""

    __slots__ = ("state", "start", "end")

    def __init__(self, state: str, start: float, end: float) -> None:
        self.state = state
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        """Correctly-rounded float of the exact fixed-point duration."""
        return float_from_fixed(fixed_from_float(self.end) - fixed_from_float(self.start))

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "t0": self.start,
            "t1": self.end,
            "dur": self.duration,
        }

    def __repr__(self) -> str:
        return f"Segment({self.state!r}, {self.start:.6f}..{self.end:.6f})"


class QuerySpan:
    """One query's complete lifecycle.

    ``admit`` is ``None`` for rejection spans (the query never entered
    the system; its span is the admission verdict alone).  ``waits``
    maps every wait state to its exact total (floats of fixed-point
    sums); ``lock_items`` attributes lock-wait time to the items that
    caused it.
    """

    __slots__ = (
        "txn",
        "arrival",
        "admit",
        "end",
        "outcome",
        "deadline",
        "freshness",
        "restarts",
        "preemptions",
        "segments",
        "waits",
        "lock_items",
        "usm_component",
        "cause",
        "faults",
        "shard",
    )

    def __init__(
        self,
        txn: int,
        arrival: Optional[float],
        admit: Optional[float],
        end: float,
        outcome: str,
        deadline: Optional[float],
        freshness: Optional[float],
        restarts: int,
        preemptions: int,
        segments: List[Segment],
        waits: Dict[str, float],
        lock_items: Dict[int, float],
        usm_component: str,
        cause: Optional[str],
        faults: List[str],
        shard: Optional[int] = None,
    ) -> None:
        self.txn = txn
        self.arrival = arrival
        self.admit = admit
        self.end = end
        self.outcome = outcome
        self.deadline = deadline
        self.freshness = freshness
        self.restarts = restarts
        self.preemptions = preemptions
        self.segments = segments
        self.waits = waits
        self.lock_items = lock_items
        self.usm_component = usm_component
        self.cause = cause
        self.faults = faults
        self.shard = shard

    @property
    def duration(self) -> float:
        """admit → outcome (0.0 for rejection spans)."""
        if self.admit is None:
            return 0.0
        return float_from_fixed(
            fixed_from_float(self.end) - fixed_from_float(self.admit)
        )

    @property
    def slack(self) -> Optional[float]:
        """Deadline minus outcome time (negative: the deadline passed)."""
        if self.deadline is None:
            return None
        return self.deadline - self.end

    def as_dict(self) -> Dict[str, object]:
        """Flatten for the JSONL dump (keys sorted at dump time).

        The ``shard`` key only appears for fleet runs (label set) so
        single-server span dumps keep their historical digests."""
        out: Dict[str, object] = {
            "txn": self.txn,
            "arrival": self.arrival,
            "admit": self.admit,
            "end": self.end,
            "outcome": self.outcome,
            "deadline": self.deadline,
            "freshness": self.freshness,
            "restarts": self.restarts,
            "preemptions": self.preemptions,
            "segments": [seg.as_dict() for seg in self.segments],
            "waits": {state: self.waits.get(state, 0.0) for state in WAIT_STATES},
            "lock_items": {str(item): dur for item, dur in sorted(self.lock_items.items())},
            "usm_component": self.usm_component,
            "cause": self.cause,
            "faults": self.faults,
        }
        if self.shard is not None:
            out["shard"] = self.shard
        return out

    def __repr__(self) -> str:
        return (
            f"QuerySpan(txn={self.txn}, outcome={self.outcome!r}, "
            f"{len(self.segments)} segments)"
        )


class SpanBuildResult:
    """Output of :func:`build_spans`.

    Attributes:
        spans: Finalized spans in outcome order (the trace's own order).
        skipped: Per-category counts of events/queries the builder had
            to skip (see the ``SKIP_*`` constants); all zero on a
            well-formed complete stream.
        dropped: Ring-buffer drop count from the trace header, if any.
        partial: True when the stream is known to be incomplete
            (``dropped > 0``): spans near the truncation boundary may
            be missing and skip counts are expected to be non-zero.
    """

    __slots__ = ("spans", "skipped", "dropped", "partial")

    def __init__(
        self,
        spans: List[QuerySpan],
        skipped: Dict[str, int],
        dropped: int,
        partial: bool,
    ) -> None:
        self.spans = spans
        self.skipped = skipped
        self.dropped = dropped
        self.partial = partial

    @property
    def total_skipped(self) -> int:
        return sum(self.skipped.values())

    def summary(self) -> Dict[str, object]:
        return {
            "spans": len(self.spans),
            "skipped": {k: v for k, v in sorted(self.skipped.items()) if v},
            "dropped": self.dropped,
            "partial": self.partial,
        }


class _OpenSpan:
    """Mutable per-query tracker while its span is still open."""

    __slots__ = (
        "txn",
        "admit",
        "deadline",
        "state",
        "state_start",
        "segments",
        "wait_fixed",
        "preemptions",
        "lock_item",
        "lock_start",
        "lock_fixed",
    )

    def __init__(self, txn: int, admit: float, deadline: Optional[float]) -> None:
        self.txn = txn
        self.admit = admit
        self.deadline = deadline
        self.state = _STATE_ADMITTED
        self.state_start = admit
        self.segments: List[Segment] = []
        self.wait_fixed: Dict[str, int] = {}
        self.preemptions = 0
        # Current lock wait being attributed (item id, start time).
        self.lock_item: Optional[int] = None
        self.lock_start = 0.0
        self.lock_fixed: Dict[int, int] = {}

    def transition(self, now: float, new_state: str) -> None:
        """Close the current segment at ``now`` and enter ``new_state``."""
        self._close(now)
        self.state = new_state
        self.state_start = now

    def _close(self, now: float) -> None:
        state = self.state
        start = self.state_start
        if state is not _STATE_ADMITTED and now > start:
            self.segments.append(Segment(state, start, now))
            dur = fixed_from_float(now) - fixed_from_float(start)
            self.wait_fixed[state] = self.wait_fixed.get(state, 0) + dur
        elif state is not _STATE_ADMITTED and now == start:
            # Zero-length segments (same-instant transitions) are
            # dropped; the telescoping sum is unaffected.
            pass

    def begin_lock_wait(self, now: float, item: int) -> None:
        self.end_lock_wait(now)  # a new wait supersedes any open one
        self.lock_item = item
        self.lock_start = now

    def end_lock_wait(self, now: float) -> None:
        item = self.lock_item
        if item is None:
            return
        dur = fixed_from_float(now) - fixed_from_float(self.lock_start)
        if dur > 0:
            self.lock_fixed[item] = self.lock_fixed.get(item, 0) + dur
        self.lock_item = None

    def finalize(self, now: float) -> Tuple[List[Segment], Dict[str, float], Dict[int, float]]:
        """Close the span at ``now`` and verify the exactness contract."""
        self._close(now)
        self.end_lock_wait(now)
        total = sum(self.wait_fixed.values())
        expected = fixed_from_float(now) - fixed_from_float(self.admit)
        if total != expected:  # pragma: no cover - invariant by construction
            raise AssertionError(
                f"span {self.txn}: segment sum {total} != duration {expected} "
                "(fixed-point units)"
            )
        waits = {state: float_from_fixed(fx) for state, fx in self.wait_fixed.items()}
        lock_items = {item: float_from_fixed(fx) for item, fx in self.lock_fixed.items()}
        return self.segments, waits, lock_items


def _failure_cause(wait_fixed: Mapping[str, int]) -> str:
    """Deterministic dominant-state attribution for a deadline miss.

    The state that consumed the most of the span (exact fixed-point
    compare, ties broken in :data:`WAIT_STATES` order).  ``executing``
    dominance reads as ``service`` — the query had the CPU but not
    enough of it.
    """
    best_state = STATE_QUEUED
    best = -1
    for state in WAIT_STATES:
        dur = wait_fixed.get(state, 0)
        if dur > best:
            best = dur
            best_state = state
    if best_state == STATE_EXECUTING:
        return "service"
    return f"wait:{best_state}"


EventLike = Union[Mapping[str, object], "_trace.TraceEvent"]


def _iter_event_tuples(
    events: Iterable[EventLike],
) -> Iterable[Tuple[float, str, Mapping[str, object]]]:
    """Normalize trace events / JSONL dicts to ``(t, kind, fields)``."""
    for event in events:
        if isinstance(event, _trace.TraceEvent):
            yield event.time, event.kind, event.fields
        else:
            yield (
                float(event.get("t", 0.0)),  # type: ignore[arg-type]
                str(event.get("kind", "")),
                event,
            )


def build_spans(
    events: Iterable[EventLike],
    dropped: int = 0,
    shard: Optional[int] = None,
) -> SpanBuildResult:
    """Fold a trace stream into per-query lifecycle spans.

    Args:
        events: Trace events in emit order — :class:`TraceEvent`
            objects (e.g. ``recorder.events()``) or flattened dicts
            (e.g. parsed JSONL lines).  A leading ``trace.meta`` header
            contributes its ``dropped`` count.
        dropped: Ring-buffer drop count when the caller knows it
            out-of-band (e.g. from a live :class:`TraceRecorder`).
        shard: Fleet shard label stamped on every span (``None`` —
            the default — for single-server runs; the span dump then
            omits the key entirely, preserving historical digests).

    Returns:
        A :class:`SpanBuildResult`; never raises on malformed input.
    """
    open_spans: Dict[int, _OpenSpan] = {}
    spans: List[QuerySpan] = []
    skipped: Dict[str, int] = {category: 0 for category in SKIP_CATEGORIES}
    # txn -> admission rejection reason (attribution for R spans).
    reject_reasons: Dict[int, str] = {}
    # Fault windows: label -> (start, end-or-None, fault type).
    fault_open: Dict[str, float] = {}
    fault_windows: List[Tuple[float, Optional[float], str]] = []
    total_dropped = dropped

    for now, kind, fields in _iter_event_tuples(events):
        if kind == _trace.QUERY_ADMIT:
            txn = int(fields["txn"])  # type: ignore[index]
            if txn in open_spans:
                skipped[SKIP_DUPLICATE_ADMIT] += 1
                continue
            deadline = fields.get("deadline")
            open_spans[txn] = _OpenSpan(
                txn,
                now,
                float(deadline) if isinstance(deadline, (int, float)) else None,
            )
        elif kind == _trace.SCHED_ENQUEUE:
            txn = int(fields["txn"])  # type: ignore[index]
            span = open_spans.get(txn)
            if span is None:
                skipped[SKIP_ORPHAN_SCHED] += 1
                continue
            cause = fields.get("cause")
            if cause == _trace.ENQUEUE_PREEMPT:
                span.preemptions += 1
            if span.state == STATE_LOCK_WAIT:
                span.end_lock_wait(now)
            span.transition(now, STATE_QUEUED)
        elif kind == _trace.SCHED_DISPATCH:
            txn = int(fields["txn"])  # type: ignore[index]
            span = open_spans.get(txn)
            if span is None:
                skipped[SKIP_ORPHAN_SCHED] += 1
                continue
            span.transition(now, STATE_EXECUTING)
        elif kind == _trace.SCHED_PARK:
            txn = int(fields["txn"])  # type: ignore[index]
            span = open_spans.get(txn)
            if span is None:
                skipped[SKIP_ORPHAN_SCHED] += 1
                continue
            span.transition(now, STATE_REFRESH_WAIT)
        elif kind == _trace.LOCK_WAIT:
            if fields.get("update"):
                continue  # update transactions have no spans
            txn = int(fields["txn"])  # type: ignore[index]
            span = open_spans.get(txn)
            if span is None:
                skipped[SKIP_ORPHAN_LOCK] += 1
                continue
            item = fields.get("item")
            span.transition(now, STATE_LOCK_WAIT)
            if isinstance(item, int):
                span.begin_lock_wait(now, item)
        elif kind == _trace.LOCK_GRANT:
            txn = int(fields["txn"])  # type: ignore[index]
            span = open_spans.get(txn)
            if span is None:
                # Updates are granted locks too; only count queries we
                # have genuinely lost track of (lock state, no span).
                continue
            span.end_lock_wait(now)
        elif kind == _trace.QUERY_OUTCOME:
            txn = int(fields["txn"])  # type: ignore[index]
            outcome = str(fields.get("outcome", ""))
            freshness = fields.get("freshness")
            arrival = fields.get("arrival")
            restarts = fields.get("restarts", 0)
            span = open_spans.pop(txn, None)
            if span is None:
                if outcome != "rejected":
                    skipped[SKIP_ORPHAN_OUTCOME] += 1
                    continue
                # Rejection spans: no lifecycle, just the verdict.
                spans.append(
                    QuerySpan(
                        txn=txn,
                        arrival=float(arrival) if isinstance(arrival, (int, float)) else None,
                        admit=None,
                        end=now,
                        outcome=outcome,
                        deadline=None,
                        freshness=None,
                        restarts=0,
                        preemptions=0,
                        segments=[],
                        waits={},
                        lock_items={},
                        usm_component="R",
                        cause=reject_reasons.pop(txn, "admission"),
                        faults=_overlapping_faults(fault_windows, fault_open, now, now),
                        shard=shard,
                    )
                )
                continue
            segments, waits, lock_items = span.finalize(now)
            component = COMPONENT_BY_OUTCOME.get(outcome, "S")
            cause: Optional[str]
            if outcome == "success":
                cause = None
            elif outcome == "dmf":
                cause = _failure_cause(span.wait_fixed)
            elif outcome == "dsf":
                cause = "stale-read"
            else:
                cause = outcome
            faults: List[str] = []
            if outcome != "success":
                faults = _overlapping_faults(
                    fault_windows, fault_open, span.admit, now
                )
            spans.append(
                QuerySpan(
                    txn=txn,
                    arrival=float(arrival) if isinstance(arrival, (int, float)) else None,
                    admit=span.admit,
                    end=now,
                    outcome=outcome,
                    deadline=span.deadline,
                    freshness=float(freshness) if isinstance(freshness, (int, float)) else None,
                    restarts=int(restarts) if isinstance(restarts, (int, float)) else 0,
                    preemptions=span.preemptions,
                    segments=segments,
                    waits=waits,
                    lock_items=lock_items,
                    usm_component=component,
                    cause=cause,
                    faults=faults,
                    shard=shard,
                )
            )
        elif kind == _trace.ADMISSION_DECISION:
            if fields.get("admitted") is False:
                txn = int(fields["txn"])  # type: ignore[index]
                reason = fields.get("reason")
                if isinstance(reason, str) and reason:
                    reject_reasons[txn] = reason
        elif kind == _trace.FAULT_START:
            label = str(fields.get("label", ""))
            fault_open[label] = now
        elif kind == _trace.FAULT_END:
            label = str(fields.get("label", ""))
            start = fault_open.pop(label, None)
            if start is not None:
                fault_windows.append((start, now, label))
        elif kind == _trace.TRACE_META:
            meta_dropped = fields.get("dropped")
            if isinstance(meta_dropped, int):
                total_dropped += meta_dropped

    skipped[SKIP_UNFINISHED] = len(open_spans)
    return SpanBuildResult(
        spans=spans,
        skipped=skipped,
        dropped=total_dropped,
        partial=total_dropped > 0,
    )


def _overlapping_faults(
    closed: List[Tuple[float, Optional[float], str]],
    still_open: Dict[str, float],
    start: Optional[float],
    end: float,
) -> List[str]:
    """Labels of fault windows overlapping ``[start, end]`` (sorted)."""
    lo = start if start is not None else end
    labels = [
        label
        for w_start, w_end, label in closed
        if w_start <= end and (w_end is None or w_end >= lo)
    ]
    labels.extend(label for label, w_start in still_open.items() if w_start <= end)
    return sorted(set(labels))


# ----------------------------------------------------------------------
# serialization (canonical, deterministic — mirrors export.py's JSONL)
# ----------------------------------------------------------------------


def _dump_line(payload: Mapping[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def render_spans_jsonl(result: SpanBuildResult) -> str:
    """Canonical JSONL: a header line, then one span per line."""
    header: Dict[str, object] = {"kind": "spans.meta"}
    header.update(result.summary())
    lines = [_dump_line(header)]
    lines.extend(_dump_line(span.as_dict()) for span in result.spans)
    return "\n".join(lines) + "\n"


def write_spans_jsonl(result: SpanBuildResult, path: Union[str, Path]) -> int:
    """Write the span JSONL dump; returns the number of spans."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_spans_jsonl(result), encoding="utf-8")
    return len(result.spans)


def spans_digest(result: SpanBuildResult) -> str:
    """SHA-256 of the canonical span JSONL (determinism contract)."""
    return hashlib.sha256(render_spans_jsonl(result).encode("utf-8")).hexdigest()
