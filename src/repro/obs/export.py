"""Exporters for recorded traces and metrics.

Four output formats, all deterministic byte-for-byte for a given
event sequence (keys sorted, compact separators, no wall-clock or
environment leakage):

* **JSONL** — one flattened event per line; the unit of the trace
  determinism tests (:func:`trace_digest` hashes exactly these bytes).
* **Chrome trace-event JSON** — loads in Perfetto / ``chrome://tracing``
  with three lanes: *server* (query lifetimes as complete events,
  admission/update instants), *controller* (window snapshots as counter
  tracks, allocation/modulation instants), and *locks* (waits and
  preemptions).
* **Controller CSV** — one row per ``control.window`` snapshot: the USM
  components, the aggregate USM, and the knob values the controller
  chose.  The artifact to diff when calibrating the feedback loop.
* **Prometheus text** — a point-in-time snapshot of the metrics
  registry in the standard exposition format.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs import trace as _trace
from repro.obs.metrics import Histogram, MetricsRegistry, RunMetrics

EventDict = Mapping[str, object]
EventSource = Union["_trace.TraceRecorder", Iterable[EventDict]]

_SEC_TO_US = 1_000_000.0

# Chrome trace lanes (thread ids within the single simulated process).
_PID = 1
_TID_SERVER = 1
_TID_CONTROLLER = 2
_TID_LOCKS = 3

_LANE_NAMES = {
    _TID_SERVER: "server",
    _TID_CONTROLLER: "controller",
    _TID_LOCKS: "locks",
}

_LANE_BY_KIND = {
    _trace.QUERY_ADMIT: _TID_SERVER,
    _trace.QUERY_OUTCOME: _TID_SERVER,
    _trace.ADMISSION_DECISION: _TID_SERVER,
    _trace.UPDATE_APPLY: _TID_SERVER,
    _trace.UPDATE_DROP: _TID_SERVER,
    _trace.SCHED_ENQUEUE: _TID_SERVER,
    _trace.SCHED_DISPATCH: _TID_SERVER,
    _trace.SCHED_PARK: _TID_SERVER,
    _trace.LOCK_WAIT: _TID_LOCKS,
    _trace.LOCK_GRANT: _TID_LOCKS,
    _trace.LOCK_PREEMPT: _TID_LOCKS,
    _trace.MODULATION_CHANGE: _TID_CONTROLLER,
    _trace.CONTROL_ALLOCATE: _TID_CONTROLLER,
    _trace.CONTROL_WINDOW: _TID_CONTROLLER,
    _trace.FAULT_START: _TID_CONTROLLER,
    _trace.FAULT_END: _TID_CONTROLLER,
}


def _event_dicts(source: EventSource) -> List[Dict[str, object]]:
    if hasattr(source, "event_dicts"):
        return source.event_dicts()  # type: ignore[union-attr]
    return [dict(event) for event in source]


def _dump_line(event: EventDict) -> str:
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def truncation_header(source: EventSource) -> Optional[Dict[str, object]]:
    """``trace.meta`` header when the ring buffer dropped events.

    None for complete traces (the common case), so their JSONL bytes —
    and therefore every historical :func:`trace_digest` — are
    unchanged.  Consumers (span builder, ``obs summary``) read the
    header to mark their output partial instead of silently analyzing
    a truncated stream.
    """
    dropped = getattr(source, "dropped", 0)
    if not dropped:
        return None
    header: Dict[str, object] = {"kind": _trace.TRACE_META, "dropped": dropped}
    counts = getattr(source, "counts", None)
    if counts:
        header["recorded"] = sum(counts.values())
    try:
        header["retained"] = len(source)  # type: ignore[arg-type]
    except TypeError:
        pass
    return header


def render_trace_jsonl(source: EventSource) -> str:
    """The full JSONL text for a trace (one event per line).

    When the source recorder reports dropped events, a ``trace.meta``
    header line leads the dump so downstream consumers know the stream
    is truncated.
    """
    lines = [_dump_line(event) for event in _event_dicts(source)]
    header = truncation_header(source)
    if header is not None:
        lines.insert(0, _dump_line(header))
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_jsonl(source: EventSource, path: Union[str, Path]) -> int:
    """Write the JSONL trace dump; returns the number of events."""
    events = _event_dicts(source)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header = truncation_header(source)
    with target.open("w", encoding="utf-8") as fh:
        if header is not None:
            fh.write(_dump_line(header))
            fh.write("\n")
        for event in events:
            fh.write(_dump_line(event))
            fh.write("\n")
    return len(events)


def trace_digest(source: EventSource) -> str:
    """SHA-256 of the canonical JSONL bytes — the determinism contract."""
    return hashlib.sha256(
        render_trace_jsonl(source).encode("utf-8")
    ).hexdigest()


def chrome_trace_events(source: EventSource) -> List[Dict[str, object]]:
    """Translate a trace into Chrome trace-event dicts (Perfetto-ready).

    Query outcomes become complete ("X") slices spanning arrival to
    completion on the server lane; ``control.window`` snapshots become
    counter ("C") tracks so Perfetto plots the USM components as
    stacked series; everything else is an instant ("i").
    """
    out: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro-sim"},
        }
    ]
    for tid, lane in sorted(_LANE_NAMES.items()):
        out.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": lane},
            }
        )
    for event in _event_dicts(source):
        kind = str(event.get("kind", ""))
        if kind == _trace.TRACE_META:
            continue  # synthetic truncation header, not a sim event
        tid = _LANE_BY_KIND.get(kind, _TID_SERVER)
        t_us = float(event.get("t", 0.0)) * _SEC_TO_US
        args = {
            key: value
            for key, value in sorted(event.items())
            if key not in ("t", "kind")
        }
        if kind == _trace.QUERY_OUTCOME:
            arrival = event.get("arrival")
            latency = event.get("latency")
            start_us = (
                float(arrival) * _SEC_TO_US
                if isinstance(arrival, (int, float))
                else t_us
            )
            dur_us = (
                max(float(latency), 0.0) * _SEC_TO_US
                if isinstance(latency, (int, float))
                else 0.0
            )
            out.append(
                {
                    "ph": "X",
                    "pid": _PID,
                    "tid": tid,
                    "ts": start_us,
                    "dur": dur_us,
                    "name": f"query:{event.get('outcome')}",
                    "cat": kind,
                    "args": args,
                }
            )
        elif kind == _trace.CONTROL_WINDOW:
            counters = {
                key: value
                for key, value in args.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
            out.append(
                {
                    "ph": "C",
                    "pid": _PID,
                    "tid": tid,
                    "ts": t_us,
                    "name": "usm_window",
                    "cat": kind,
                    "args": counters,
                }
            )
        else:
            out.append(
                {
                    "ph": "i",
                    "pid": _PID,
                    "tid": tid,
                    "ts": t_us,
                    "s": "t",
                    "name": kind,
                    "cat": kind,
                    "args": args,
                }
            )
    return out


def write_chrome_trace(source: EventSource, path: Union[str, Path]) -> int:
    """Write a Chrome trace-event JSON file; returns the event count."""
    events = chrome_trace_events(source)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    target.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")),
        encoding="utf-8",
    )
    return len(events)


def controller_rows(source: EventSource) -> List[Dict[str, object]]:
    """``control.window`` snapshots as flat rows (one per window)."""
    rows: List[Dict[str, object]] = []
    for event in _event_dicts(source):
        if event.get("kind") != _trace.CONTROL_WINDOW:
            continue
        row: Dict[str, object] = {"t": event.get("t")}
        for key, value in event.items():
            if key in ("t", "kind"):
                continue
            if key == "signals" and isinstance(value, (list, tuple)):
                row[key] = "+".join(str(s) for s in value) or "none"
            else:
                row[key] = value
        rows.append(row)
    return rows


def write_controller_csv(source: EventSource, path: Union[str, Path]) -> int:
    """Write the controller-window CSV; returns the row count."""
    rows = controller_rows(source)
    columns: List[str] = ["t"]
    seen = {"t"}
    for row in rows:
        for key in sorted(row):
            if key not in seen:
                seen.add(key)
                columns.append(key)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    target.write_text(buffer.getvalue(), encoding="utf-8")
    return len(rows)


#: Quantiles published for every histogram (as ``<name>_quantile`` lines).
PROM_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


def _prom_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _prom_escape(value: object) -> str:
    """Escape a label value per the text exposition format (backslash,
    double-quote, and newline are the only escapable characters)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Sequence, extra: str = "") -> str:
    parts = [f'{key}="{_prom_escape(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def histogram_quantile(hist: Histogram, fraction: float) -> Optional[float]:
    """Estimate a quantile from fixed buckets, Prometheus-style.

    Linear interpolation inside the bucket that crosses the rank
    ``fraction * count``; the lower bound of the first bucket is the
    observed minimum (we record real values, not the non-negative
    quantities Prometheus assumes).  A rank landing in the overflow
    (+Inf) bucket falls back to the highest finite edge — the estimate
    Prometheus itself reports.  Returns None for an empty histogram.
    """
    count = hist.stats.count
    if count == 0:
        return None
    rank = fraction * count
    running = 0
    for index, bucket_count in enumerate(hist.bucket_counts):
        previous = running
        running += bucket_count
        if running < rank or bucket_count == 0:
            continue
        if index >= len(hist.edges):  # overflow bucket
            return hist.edges[-1]
        upper = hist.edges[index]
        if index == 0:
            lower = min(hist.stats.minimum, upper)
        else:
            lower = hist.edges[index - 1]
        if math.isinf(upper):  # defensive: an explicit +Inf edge
            return lower
        return lower + (upper - lower) * (rank - previous) / bucket_count
    return hist.edges[-1]  # pragma: no cover - ranks always land above


def render_prometheus(
    metrics: Union[MetricsRegistry, RunMetrics],
    help_text: Optional[Mapping[str, str]] = None,
) -> str:
    """The registry as Prometheus text exposition format."""
    registry = metrics.registry if isinstance(metrics, RunMetrics) else metrics
    help_text = help_text or {}
    lines: List[str] = []
    typed: set = set()
    for inst in registry.instruments():
        if inst.name not in typed:
            typed.add(inst.name)
            if inst.name in help_text:
                lines.append(f"# HELP {inst.name} {help_text[inst.name]}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
        if isinstance(inst, Histogram):
            cumulative = inst.cumulative()
            for edge, count in zip(inst.edges, cumulative):
                le = _prom_labels(inst.labels, f'le="{_prom_number(edge)}"')
                lines.append(f"{inst.name}_bucket{le} {count}")
            inf_labels = _prom_labels(inst.labels, 'le="+Inf"')
            lines.append(f"{inst.name}_bucket{inf_labels} {cumulative[-1]}")
            plain = _prom_labels(inst.labels)
            lines.append(f"{inst.name}_sum{plain} {_prom_number(inst.total)}")
            lines.append(f"{inst.name}_count{plain} {inst.stats.count}")
            for fraction in PROM_QUANTILES:
                estimate = histogram_quantile(inst, fraction)
                if estimate is None:
                    continue
                q_labels = _prom_labels(
                    inst.labels, f'quantile="{_prom_number(fraction)}"'
                )
                lines.append(
                    f"{inst.name}_quantile{q_labels} {_prom_number(estimate)}"
                )
        else:
            plain = _prom_labels(inst.labels)
            lines.append(f"{inst.name}{plain} {_prom_number(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    metrics: Union[MetricsRegistry, RunMetrics], path: Union[str, Path]
) -> int:
    """Write the Prometheus snapshot; returns the number of lines."""
    text = render_prometheus(metrics)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return text.count("\n")
