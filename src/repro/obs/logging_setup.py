"""Quiet-by-default logging shared by every repro CLI.

Library modules call :func:`get_logger` at import time and log freely;
nothing is printed unless a CLI entry point calls
:func:`configure_logging` (or the application configures ``logging``
itself).  Progress output goes to **stderr** so stdout stays reserved
for the actual artifact (tables, JSON, traces) and remains pipeable.

Verbosity maps CLI flags to levels on the ``repro`` logger::

    -q / --quiet    -> ERROR
    (default)       -> WARNING
    -v / --verbose  -> INFO
    -vv             -> DEBUG

simlint's SL007 forbids bare ``print()`` in library code, which keeps
all diagnostic output flowing through here.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

#: Root of the package's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(levelname).1s %(name)s: %(message)s"

_LEVEL_BY_VERBOSITY = {
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Pass ``__name__``; module paths already start with ``repro.`` so
    they parent correctly.  Other names are nested under ``repro``.
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Clamp a ``-q``/``-v`` count to a logging level."""
    clamped = max(-1, min(2, verbosity))
    return _LEVEL_BY_VERBOSITY[clamped]


def configure_logging(
    verbosity: int = 0, stream: Optional[TextIO] = None
) -> logging.Logger:
    """Install one stderr handler on the ``repro`` logger.

    Idempotent: reconfiguring replaces the previously installed
    handler (recognized by a marker attribute) instead of stacking a
    second one, so tests and long-lived processes can call this
    repeatedly.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(verbosity_to_level(verbosity))
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    # Don't double-log through the (possibly configured) root logger.
    root.propagate = False
    return root


def add_verbosity_flags(parser) -> None:
    """Attach the standard ``-v``/``-q`` flags to an argparse parser."""
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="only log errors",
    )


def verbosity_from_args(args) -> int:
    """Fold parsed ``-v``/``-q`` flags into one verbosity count."""
    verbose = int(getattr(args, "verbose", 0) or 0)
    if getattr(args, "quiet", False):
        return -1
    return verbose
