"""Metrics registry: counters, gauges, histograms with fixed buckets.

Instruments are keyed by ``(name, frozen label tuple)`` so a family
like ``repro_query_outcomes_total`` fans out per ``outcome=...`` label
without string formatting on the hot path.  Gauges sample into the
existing :class:`repro.sim.stats.TimeSeries` and histograms fold their
observations into :class:`repro.sim.stats.OnlineStats`, so the obs
layer reuses the simulator's own statistics machinery rather than
growing a parallel one.

:class:`RunMetrics` is the domain-level sink: it owns a registry and
knows how to fold each trace-event kind (see :mod:`repro.obs.trace`)
into the right instruments.  It is driven by the trace recorder as
events are emitted, so metrics cover the whole run even when the trace
ring buffer wraps.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.obs import trace as _trace
from repro.sim.stats import OnlineStats, TimeSeries

#: Frozen label set: sorted ``(key, value)`` pairs.
LabelTuple = Tuple[Tuple[str, str], ...]

#: Fixed bucket edges for query latency (seconds).  Chosen around the
#: calibrated mean query service time (~50 ms) and typical deadlines.
LATENCY_EDGES: Tuple[float, ...] = (
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Fixed bucket edges for freshness (a ratio in [0, 1]).
FRESHNESS_EDGES: Tuple[float, ...] = (
    0.1,
    0.2,
    0.3,
    0.4,
    0.5,
    0.6,
    0.7,
    0.8,
    0.9,
    0.95,
    1.0,
)


def freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelTuple:
    """Canonicalize a label mapping to a hashable, sorted tuple."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelTuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"value": self.value}


class Gauge:
    """Point-in-time value, sampled into a :class:`TimeSeries`.

    ``set`` takes the *sim* time of the sample so the series doubles as
    a plottable trajectory (e.g. USM per controller window).
    """

    __slots__ = ("name", "labels", "series")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelTuple) -> None:
        self.name = name
        self.labels = labels
        self.series = TimeSeries(name=name)

    def set(self, time: float, value: float) -> None:
        self.series.append(time, value)

    @property
    def value(self) -> float:
        last = self.series.last()
        return last[1] if last is not None else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "samples": len(self.series),
            "mean": self.series.mean(),
        }


class Histogram:
    """Fixed-bucket histogram plus streaming moments.

    ``edges`` are the inclusive upper bounds of the finite buckets; one
    implicit ``+Inf`` bucket catches the overflow.  The running
    count/mean/min/max come from an :class:`OnlineStats`.
    """

    __slots__ = ("name", "labels", "edges", "bucket_counts", "stats", "total")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelTuple, edges: Tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("edges must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.stats = OnlineStats()
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.edges, value)] += 1
        self.stats.add(value)
        self.total += value

    def cumulative(self) -> List[int]:
        """Cumulative counts per ``le`` edge (Prometheus semantics)."""
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def as_dict(self) -> Dict[str, object]:
        stats = self.stats
        return {
            "count": stats.count,
            "sum": self.total,
            "mean": stats.mean,
            "min": stats.minimum if stats.count else None,
            "max": stats.maximum if stats.count else None,
            "edges": list(self.edges),
            "buckets": list(self.bucket_counts),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for every instrument in a run."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelTuple], Instrument] = {}

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = (name, freeze_labels(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = Counter(name, key[1])
            self._instruments[key] = inst
        elif not isinstance(inst, Counter):
            raise TypeError(f"{name} already registered as {inst.kind}")
        return inst

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = (name, freeze_labels(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = Gauge(name, key[1])
            self._instruments[key] = inst
        elif not isinstance(inst, Gauge):
            raise TypeError(f"{name} already registered as {inst.kind}")
        return inst

    def histogram(
        self,
        name: str,
        edges: Tuple[float, ...],
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = (name, freeze_labels(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = Histogram(name, key[1], tuple(edges))
            self._instruments[key] = inst
        elif not isinstance(inst, Histogram):
            raise TypeError(f"{name} already registered as {inst.kind}")
        elif inst.edges != tuple(edges):
            raise ValueError(f"{name} already registered with different edges")
        return inst

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> Iterable[Instrument]:
        """All instruments in deterministic (name, labels) order."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def snapshot(self) -> Dict[str, object]:
        """Deterministic, JSON-friendly dump of every instrument."""
        out: Dict[str, object] = {}
        for inst in self.instruments():
            label_part = ",".join(f"{k}={v}" for k, v in inst.labels)
            key = f"{inst.name}{{{label_part}}}" if label_part else inst.name
            entry = inst.as_dict()
            entry["kind"] = inst.kind
            out[key] = entry
        return out


class RunMetrics:
    """Fold trace events into a metrics registry.

    Passed to :class:`repro.obs.trace.TraceRecorder` as its ``metrics``
    sink; every emitted event lands here exactly once, in order.
    """

    __slots__ = ("registry",)

    #: ``control.window`` fields that are snapshot metadata rather than
    #: USM components; everything else in the event is gauged as a
    #: per-window component trajectory.
    _WINDOW_META = frozenset(
        {"usm", "samples", "signals", "c_flex", "update_load",
         "degraded_items", "ticket_threshold"}
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def observe_event(self, event: _trace.TraceEvent) -> None:
        kind = event.kind
        reg = self.registry
        if kind == _trace.QUERY_OUTCOME:
            # ``event.fields`` on the typed hot-kind events builds a
            # dict per read, so the two hottest branches fetch field
            # values without it (the typed attributes when present,
            # falling back to the dict for hand-built TraceEvents).
            if isinstance(event, _trace.QueryOutcomeEvent):
                outcome = str(event.outcome)
                latency: object = event.latency
                freshness: object = event.freshness
                restarts: object = event.restarts
            else:
                fields = event.fields
                outcome = str(fields["outcome"])
                latency = fields["latency"]
                freshness = fields["freshness"]
                restarts = fields["restarts"]
            reg.counter("repro_query_outcomes_total", {"outcome": outcome}).inc()
            if outcome != "rejected":
                if isinstance(latency, (int, float)):
                    reg.histogram(
                        "repro_query_latency_seconds", LATENCY_EDGES
                    ).observe(float(latency))
                if isinstance(freshness, (int, float)):
                    reg.histogram(
                        "repro_query_freshness_ratio", FRESHNESS_EDGES
                    ).observe(float(freshness))
                if isinstance(restarts, (int, float)) and restarts:
                    reg.counter("repro_query_restarts_total").inc(float(restarts))
            return
        if kind == _trace.QUERY_ADMIT:
            # Counts only — never materialize the fields dict.
            reg.counter("repro_query_admitted_total").inc()
            return
        fields = event.fields
        if kind == _trace.ADMISSION_DECISION:
            reg.counter(
                "repro_admission_decisions_total",
                {"reason": str(fields["reason"])},
            ).inc()
        elif kind == _trace.LOCK_WAIT:
            reg.counter("repro_lock_waits_total").inc()
        elif kind == _trace.LOCK_PREEMPT:
            victims = fields["victims"]
            reg.counter("repro_lock_preemptions_total").inc()
            if isinstance(victims, list):
                reg.counter("repro_lock_preempt_victims_total").inc(len(victims))
        elif kind == _trace.UPDATE_APPLY:
            on_demand = "true" if fields["on_demand"] else "false"
            reg.counter(
                "repro_updates_applied_total", {"on_demand": on_demand}
            ).inc()
        elif kind == _trace.UPDATE_DROP:
            reg.counter("repro_updates_dropped_total").inc()
        elif kind == _trace.MODULATION_CHANGE:
            reg.counter(
                "repro_modulation_changes_total",
                {"direction": str(fields["direction"])},
            ).inc()
        elif kind == _trace.CONTROL_ALLOCATE:
            reg.counter(
                "repro_control_allocations_total",
                {"dominant": str(fields["dominant"])},
            ).inc()
        elif kind == _trace.FAULT_START:
            reg.counter(
                "repro_fault_windows_total", {"fault": str(fields["fault"])}
            ).inc()
        elif kind == _trace.CONTROL_WINDOW:
            time = event.time
            usm = fields.get("usm")
            if isinstance(usm, (int, float)):
                reg.gauge("repro_usm").set(time, float(usm))
            for key in ("c_flex", "update_load", "degraded_items", "ticket_threshold"):
                value = fields.get(key)
                if isinstance(value, (int, float)):
                    reg.gauge(f"repro_{key}").set(time, float(value))
            for key, value in fields.items():
                if key in self._WINDOW_META:
                    continue
                if isinstance(value, (int, float)):
                    reg.gauge(
                        "repro_usm_component", {"component": key}
                    ).set(time, float(value))

    def snapshot(self) -> Dict[str, object]:
        return self.registry.snapshot()
