"""Per-run observability configuration.

An :class:`ObsConfig` rides on ``ExperimentConfig.obs`` (default
``None`` — fully disabled, null-recorder path).  The runner derives
per-cell export paths from ``out_dir`` and the cell label so parallel
sweep workers never collide on a file.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path
from typing import Optional

_LABEL_SANITIZER = re.compile(r"[^A-Za-z0-9._-]+")


def sanitize_label(label: str) -> str:
    """Make an experiment label safe to use as a file-name stem."""
    cleaned = _LABEL_SANITIZER.sub("-", label).strip("-")
    return cleaned or "cell"


@dataclasses.dataclass(frozen=True)
class ObsConfig:
    """What to record and where to export it.

    Attributes:
        enabled: Master switch; when False the run uses the shared
            null recorder and none of the other fields matter.
        capacity: Trace ring-buffer size (events); oldest events are
            evicted (and counted) beyond this.
        metrics: Also fold events into a metrics registry.
        keep_events: Attach the flattened event dicts to the
            ``SimulationReport`` (for tests/CLI use; large).
        spans: Fold the trace into query-lifecycle spans after the run
            (:mod:`repro.obs.spans`) and attach the wait-attribution
            digest to ``SimulationReport.obs_spans``.
        out_dir: Directory for per-cell exports.  When set, the runner
            writes ``<stem>.trace.jsonl``, ``<stem>.chrome.json``,
            ``<stem>.controller.csv``, ``<stem>.prom.txt``, and (with
            ``spans``) ``<stem>.spans.jsonl`` where ``<stem>`` is the
            sanitized cell label + seed.
        trace_jsonl / chrome_json / controller_csv / prometheus_txt /
        spans_jsonl:
            Explicit output paths; each overrides the ``out_dir``
            derivation for that one artifact.
    """

    enabled: bool = True
    capacity: int = 262_144
    metrics: bool = True
    keep_events: bool = False
    spans: bool = True
    out_dir: Optional[str] = None
    trace_jsonl: Optional[str] = None
    chrome_json: Optional[str] = None
    controller_csv: Optional[str] = None
    prometheus_txt: Optional[str] = None
    spans_jsonl: Optional[str] = None

    def export_paths(self, label: str, seed: int) -> dict:
        """Resolve the artifact paths for one cell (or {}).

        Explicit per-artifact paths always win; otherwise paths are
        derived from ``out_dir``.  Artifacts with no resolvable path
        are omitted from the mapping.
        """
        stem = f"{sanitize_label(label)}.seed{seed}"
        base = Path(self.out_dir) if self.out_dir is not None else None
        paths = {}
        pairs = (
            ("trace_jsonl", self.trace_jsonl, f"{stem}.trace.jsonl"),
            ("chrome_json", self.chrome_json, f"{stem}.chrome.json"),
            ("controller_csv", self.controller_csv, f"{stem}.controller.csv"),
            ("prometheus_txt", self.prometheus_txt, f"{stem}.prom.txt"),
            ("spans_jsonl", self.spans_jsonl, f"{stem}.spans.jsonl"),
        )
        for key, explicit, default_name in pairs:
            if explicit is not None:
                paths[key] = Path(explicit)
            elif base is not None:
                paths[key] = base / default_name
        return paths
