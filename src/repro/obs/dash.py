"""Live sweep dashboard: stdlib HTTP + SSE, one self-contained page.

``run_grid`` / ``run_grid_parallel`` accept a ``dashboard`` object and
call :meth:`DashboardState.on_progress` after every finished cell (the
same signature as a progress callback).  The state folds each
:class:`~repro.experiments.runner.SimulationReport` into a JSON-able
snapshot — per-cell USM, outcome ratios, throughput, runner phase
timings, the controller's windowed-USM series for sparklines, and the
span wait-state breakdown when the report carries its events — and
publishes it to any connected Server-Sent-Events subscriber.

:class:`DashboardServer` serves three routes on a background thread:

=============  ========================================================
``/``          the dashboard page (self-contained HTML, no CDN)
``/state``     the current snapshot as JSON
``/events``    SSE stream: one ``data:`` frame per finished cell
=============  ========================================================

:func:`render_static_html` bakes the same page with the snapshot
embedded, so a finished sweep exports as a single HTML artifact (the
CI ``obs-dash-smoke`` job snapshots it) that renders without a server.

This module lives in a patrolled simulation component (simlint SL002),
so it never touches the wall clock: blocking uses
``threading.Event.wait`` and queue timeouts, and all displayed timings
come from the reports themselves.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import json_sanitize
from repro.experiments.runner import SimulationReport
from repro.obs.logging_setup import get_logger

_log = get_logger(__name__)

#: Cap per-cell sparkline series (points are downsampled, never cut).
_SPARK_POINTS = 60

#: SSE keep-alive interval, seconds (queue timeout, not a clock read).
_SSE_PING_SECONDS = 15.0

#: Per-subscriber frame-queue bound.  Frames are *full-state* snapshots
#: (not deltas), so when a slow or stuck client falls behind, the oldest
#: queued frame is stale and can be dropped losslessly — the newest one
#: supersedes it.  Without the bound a dead-but-not-yet-detected client
#: accumulates one frame per finished cell for the whole sweep.
_SUBSCRIBER_QUEUE_FRAMES = 64

#: Socket send timeout for SSE handler threads, seconds.  A client that
#: stops reading (suspended laptop, wedged proxy) eventually blocks the
#: handler's ``wfile.write`` forever; the timeout turns that into an
#: ``OSError`` so the handler unsubscribes and exits instead of pinning
#: its queue (and thread) for the rest of the sweep.
_SSE_SEND_TIMEOUT_SECONDS = 20.0


def _downsample(series: List[float], limit: int = _SPARK_POINTS) -> List[float]:
    """Thin a series to at most ``limit`` points (every k-th, keep last)."""
    n = len(series)
    if n <= limit:
        return series
    step = n / limit
    out = [series[int(i * step)] for i in range(limit)]
    out[-1] = series[-1]
    return out


def _cell_payload(
    key: Tuple[str, str, str], report: SimulationReport
) -> Dict[str, object]:
    """One finished cell as a JSON-able dict."""
    policy, trace, profile_name = key
    wall = report.wall_seconds
    payload: Dict[str, object] = {
        "key": "/".join(key),
        "policy": policy,
        "trace": trace,
        "profile": profile_name,
        "usm": report.usm,
        "queries": report.queries_submitted,
        "ratios": {
            outcome.value: ratio for outcome, ratio in report.ratios.items()
        },
        "throughput": (report.queries_submitted / wall) if wall > 0 else None,
        "wall_seconds": wall,
        "phase_seconds": report.phase_seconds,
    }
    events = report.obs_events
    if events:
        usm_series = [
            float(event["usm"])
            for event in events
            if event.get("kind") == "control.window"
            and isinstance(event.get("usm"), (int, float))
        ]
        if usm_series:
            payload["usm_series"] = _downsample(usm_series)
        # Span wait-state breakdown (shares of lifecycle time).  Import
        # here to keep the dashboard usable without the span stack.
        from repro.obs.attrib import wait_breakdown
        from repro.obs.spans import build_spans

        result = build_spans(events)
        breakdown = wait_breakdown(result.spans)
        payload["waits"] = breakdown["shares"]
        payload["preemptions"] = breakdown["preemptions"]
        payload["restarts"] = breakdown["restarts"]
        payload["spans_partial"] = result.partial
    return payload


class DashboardState:
    """Thread-safe sweep progress; the model behind every route.

    Use an instance as the ``dashboard`` argument of
    :func:`repro.experiments.sweep.run_grid` — the sweep calls
    :meth:`on_progress` from whatever thread runs the cells; HTTP
    handler threads read snapshots concurrently.
    """

    def __init__(self, title: str = "repro sweep") -> None:
        self.title = title
        self._lock = threading.Lock()
        self._cells: List[Dict[str, object]] = []
        self._done = 0
        self._total = 0
        self._subscribers: List["queue.Queue[Optional[str]]"] = []

    # -- sweep side -----------------------------------------------------

    def on_progress(
        self,
        key: Tuple[str, str, str],
        report: SimulationReport,
        done: int,
        total: int,
    ) -> None:
        """Fold one finished cell in and notify SSE subscribers."""
        payload = _cell_payload(key, report)
        with self._lock:
            self._cells.append(payload)
            self._done = done
            self._total = total
        self._publish()

    # -- reader side ----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The current state as a JSON-able dict."""
        with self._lock:
            return {
                "title": self.title,
                "done": self._done,
                "total": self._total,
                "complete": self._total > 0 and self._done >= self._total,
                "cells": list(self._cells),
            }

    def snapshot_json(self) -> str:
        return json.dumps(
            json_sanitize(self.snapshot()), sort_keys=True, separators=(",", ":")
        )

    # -- SSE plumbing ---------------------------------------------------

    def subscribe(self) -> "queue.Queue[Optional[str]]":
        subscriber: "queue.Queue[Optional[str]]" = queue.Queue(
            maxsize=_SUBSCRIBER_QUEUE_FRAMES
        )
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: "queue.Queue[Optional[str]]") -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    @staticmethod
    def _offer(
        subscriber: "queue.Queue[Optional[str]]", frame: Optional[str]
    ) -> None:
        """Enqueue a frame, evicting the stalest one when full.

        Frames are complete snapshots, so drop-oldest is lossless for
        any reader that eventually catches up — and it means a stuck
        subscriber can never make ``on_progress`` (the sweep thread)
        block or grow without bound.
        """
        while True:
            try:
                subscriber.put_nowait(frame)
                return
            except queue.Full:
                try:
                    subscriber.get_nowait()
                except queue.Empty:  # raced with the consumer: retry put
                    continue

    def _publish(self) -> None:
        frame = self.snapshot_json()
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            self._offer(subscriber, frame)

    def close(self) -> None:
        """Tell every subscriber the stream is over."""
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            self._offer(subscriber, None)


def _make_handler(state: DashboardState) -> type:
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: object) -> None:  # noqa: A002
            _log.debug("dash: %s", format % args)

        def _send(self, status: int, content_type: str, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            if path == "/":
                page = render_page(state.snapshot_json(), live=True)
                self._send(200, "text/html; charset=utf-8", page.encode("utf-8"))
            elif path == "/state":
                self._send(
                    200,
                    "application/json",
                    state.snapshot_json().encode("utf-8"),
                )
            elif path == "/events":
                self._serve_events()
            else:
                self._send(404, "text/plain; charset=utf-8", b"not found\n")

        def _serve_events(self) -> None:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            self.end_headers()
            # A client that stops *reading* (without closing) would
            # otherwise block a send forever, pinning this handler and
            # its subscriber queue for the rest of the sweep.
            self.connection.settimeout(_SSE_SEND_TIMEOUT_SECONDS)
            subscriber = state.subscribe()
            try:
                # Replay the current state so late joiners render now.
                self._frame(state.snapshot_json())
                while True:
                    try:
                        frame = subscriber.get(timeout=_SSE_PING_SECONDS)
                    except queue.Empty:
                        self.wfile.write(b": ping\n\n")
                        self.wfile.flush()
                        continue
                    if frame is None:
                        break
                    self._frame(frame)
            except OSError:
                # Client went away (broken pipe / reset) or stopped
                # reading (send timeout): release the subscription
                # either way so long sweeps don't accumulate dead
                # queues.  BrokenPipeError, ConnectionResetError, and
                # socket.timeout are all OSError subclasses.
                pass
            finally:
                state.unsubscribe(subscriber)

        def _frame(self, payload: str) -> None:
            self.wfile.write(b"data: " + payload.encode("utf-8") + b"\n\n")
            self.wfile.flush()

    return _Handler


class DashboardServer:
    """Background-thread HTTP server for a :class:`DashboardState`."""

    def __init__(
        self,
        state: DashboardState,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.state = state
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(state))
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> "DashboardServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-dash",
            daemon=True,
        )
        self._thread.start()
        _log.info("dashboard serving at %s", self.url)
        return self

    def stop(self) -> None:
        self.state.close()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def render_static_html(state: DashboardState) -> str:
    """The dashboard page with the snapshot baked in (no server)."""
    return render_page(state.snapshot_json(), live=False)


def render_page(state_json: str, live: bool) -> str:
    """Assemble the self-contained page around a state snapshot."""
    # "</" would close the script element mid-JSON.
    safe_state = state_json.replace("</", "<\\/")
    return (
        _PAGE_TEMPLATE.replace("__LIVE__", "true" if live else "false").replace(
            "__STATE__", safe_state
        )
    )


_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro sweep dashboard</title>
<style>
  :root {
    --bg: #11161d; --panel: #1a212b; --ink: #dbe4ee; --dim: #8294a8;
    --line: #2a3442; --good: #4cc38a; --warn: #e5a50a; --bad: #e0565b;
    --accent: #5ea1f7;
  }
  * { box-sizing: border-box; }
  body { margin: 0; background: var(--bg); color: var(--ink);
         font: 14px/1.45 ui-monospace, "SF Mono", Menlo, Consolas, monospace; }
  header { padding: 16px 22px 10px; border-bottom: 1px solid var(--line); }
  h1 { margin: 0 0 6px; font-size: 17px; font-weight: 600; }
  .sub { color: var(--dim); font-size: 12px; }
  .progress { height: 8px; background: var(--line); border-radius: 4px;
              margin-top: 10px; overflow: hidden; }
  .progress > div { height: 100%; background: var(--accent);
                    transition: width .3s; }
  main { padding: 16px 22px; }
  table { border-collapse: collapse; width: 100%; }
  th { text-align: left; color: var(--dim); font-weight: 500;
       font-size: 12px; padding: 6px 10px; border-bottom: 1px solid var(--line); }
  td { padding: 6px 10px; border-bottom: 1px solid var(--line);
       vertical-align: middle; white-space: nowrap; }
  tr:hover td { background: var(--panel); }
  .usm { font-weight: 600; }
  .bar { display: inline-block; height: 9px; border-radius: 2px;
         background: var(--accent); vertical-align: middle; }
  .stack { display: inline-flex; width: 120px; height: 9px;
           border-radius: 2px; overflow: hidden; vertical-align: middle; }
  .stack i { display: block; height: 100%; }
  svg.spark { vertical-align: middle; }
  .legend { margin: 14px 0 6px; color: var(--dim); font-size: 12px; }
  .legend i { display: inline-block; width: 9px; height: 9px;
              border-radius: 2px; margin: 0 4px 0 10px; vertical-align: -1px; }
  .pill { font-size: 11px; border: 1px solid var(--line); border-radius: 8px;
          padding: 0 6px; color: var(--dim); margin-left: 6px; }
  .empty { color: var(--dim); padding: 30px 0; text-align: center; }
  #agg { margin-top: 18px; padding: 12px 14px; background: var(--panel);
         border: 1px solid var(--line); border-radius: 6px; max-width: 560px; }
  #agg h2 { margin: 0 0 8px; font-size: 13px; color: var(--dim);
            font-weight: 500; }
  .aggrow { display: flex; align-items: center; margin: 3px 0; }
  .aggrow span { width: 110px; color: var(--dim); font-size: 12px; }
  .aggrow b { font-size: 12px; margin-left: 8px; font-weight: 500; }
</style>
</head>
<body>
<header>
  <h1 id="title">repro sweep</h1>
  <div class="sub" id="status">waiting for cells…</div>
  <div class="progress"><div id="pbar" style="width:0%"></div></div>
</header>
<main>
  <div class="legend">
    outcomes: <i style="background:var(--good)"></i>success
    <i style="background:var(--accent)"></i>reject
    <i style="background:var(--bad)"></i>dmf
    <i style="background:var(--warn)"></i>dsf
    &nbsp;&nbsp;waits: <i style="background:#7d8ea3"></i>queued
    <i style="background:#b07cc6"></i>lock
    <i style="background:#46b1c9"></i>refresh
    <i style="background:#4cc38a"></i>exec
  </div>
  <div id="cells"></div>
  <div id="agg" hidden><h2>pooled wait breakdown (time share)</h2>
    <div id="aggbody"></div></div>
</main>
<script>
"use strict";
const LIVE = __LIVE__;
let STATE = __STATE__;

const OUT_COLORS = {success:"var(--good)", rejected:"var(--accent)",
                    dmf:"var(--bad)", dsf:"var(--warn)"};
const WAIT_COLORS = {"queued":"#7d8ea3", "lock-wait":"#b07cc6",
                     "refresh-wait":"#46b1c9", "executing":"#4cc38a"};
const WAIT_ORDER = ["queued", "lock-wait", "refresh-wait", "executing"];

function fmt(x, digits) {
  return (x === null || x === undefined) ? "-" : Number(x).toFixed(digits);
}

function stack(parts, colors, width) {
  let html = '<span class="stack" style="width:' + width + 'px">';
  for (const [name, frac] of parts) {
    const w = Math.max(0, frac * 100);
    html += '<i style="width:' + w + '%;background:' + colors[name] + '"></i>';
  }
  return html + "</span>";
}

function spark(series, w, h) {
  if (!series || series.length < 2) return "";
  const min = Math.min(...series), max = Math.max(...series);
  const span = (max - min) || 1;
  const pts = series.map((v, i) =>
    (i / (series.length - 1) * (w - 2) + 1).toFixed(1) + "," +
    ((1 - (v - min) / span) * (h - 2) + 1).toFixed(1)).join(" ");
  return '<svg class="spark" width="' + w + '" height="' + h + '">' +
    '<polyline points="' + pts + '" fill="none" stroke="var(--accent)"' +
    ' stroke-width="1.2"/></svg>';
}

function render() {
  const s = STATE || {cells: [], done: 0, total: 0};
  document.getElementById("title").textContent = s.title || "repro sweep";
  const pct = s.total ? (100 * s.done / s.total) : 0;
  document.getElementById("pbar").style.width = pct + "%";
  document.getElementById("status").textContent =
    s.total ? (s.done + " / " + s.total + " cells" +
               (s.complete ? " — complete" : " — running…")) :
              "waiting for cells…";

  const cells = s.cells || [];
  const host = document.getElementById("cells");
  if (!cells.length) {
    host.innerHTML = '<div class="empty">no finished cells yet</div>';
    document.getElementById("agg").hidden = true;
    return;
  }
  const usms = cells.map(c => c.usm);
  const lo = Math.min(0, ...usms), hi = Math.max(...usms, 1e-9);
  let html = "<table><tr><th>cell</th><th>USM</th><th></th>" +
    "<th>outcomes</th><th>waits</th><th>USM window</th>" +
    "<th>q/s</th><th>wall</th></tr>";
  for (const c of cells) {
    const w = Math.max(2, 90 * (c.usm - lo) / (hi - lo || 1));
    const outs = Object.entries(c.ratios || {})
      .filter(([k]) => OUT_COLORS[k]).sort();
    const waits = c.waits ?
      WAIT_ORDER.map(k => [k, c.waits[k] || 0]) : null;
    html += "<tr><td>" + c.key +
      (c.spans_partial ? ' <span class="pill">partial</span>' : "") +
      "</td><td class=\\"usm\\">" + fmt(c.usm, 4) + "</td>" +
      '<td><span class="bar" style="width:' + w + 'px"></span></td>' +
      "<td>" + stack(outs, OUT_COLORS, 120) + "</td>" +
      "<td>" + (waits ? stack(waits, WAIT_COLORS, 120) : "-") + "</td>" +
      "<td>" + spark(c.usm_series, 140, 26) + "</td>" +
      "<td>" + (c.throughput ? fmt(c.throughput, 0) : "-") + "</td>" +
      "<td>" + fmt(c.wall_seconds, 2) + "s</td></tr>";
  }
  host.innerHTML = html + "</table>";

  const withWaits = cells.filter(c => c.waits);
  const agg = document.getElementById("agg");
  if (withWaits.length) {
    agg.hidden = false;
    const sums = {};
    for (const k of WAIT_ORDER) sums[k] = 0;
    for (const c of withWaits)
      for (const k of WAIT_ORDER) sums[k] += (c.waits[k] || 0);
    let body = "";
    for (const k of WAIT_ORDER) {
      const frac = sums[k] / withWaits.length;
      body += '<div class="aggrow"><span>' + k + "</span>" +
        '<span class="bar" style="width:' + (300 * frac) +
        "px;background:" + WAIT_COLORS[k] + '"></span><b>' +
        (100 * frac).toFixed(1) + "%</b></div>";
    }
    document.getElementById("aggbody").innerHTML = body;
  } else {
    agg.hidden = true;
  }
}

render();
if (LIVE && window.EventSource) {
  const source = new EventSource("/events");
  source.onmessage = (msg) => { STATE = JSON.parse(msg.data); render(); };
  source.onerror = () => { /* sweep over or server gone: keep last state */ };
}
</script>
</body>
</html>
"""
