"""Structured trace recording for simulation runs.

Every instrumentation site in the server, the lock manager, and the
UNIT control modules is guarded by a single attribute check::

    rec = self.obs
    if rec.enabled:
        rec.query_outcome(...)

so the disabled path (the default, via the shared
:data:`NULL_RECORDER`) costs one attribute load and a false branch —
nothing is allocated, formatted, or appended.  The enabled path builds
one slotted :class:`TraceEvent` per occurrence and appends it to a
bounded ring buffer; when the ring is full the *oldest* events are
evicted and counted in :attr:`TraceRecorder.dropped`.

All timestamps are **simulated** time (the caller passes
``Simulator.now``); this module never reads the wall clock — simlint's
SL002 patrols it like any other simulation component.

Event kinds (the ``kind`` field of every event):

=====================  ==============================================
``query.admit``        query passed admission control
``query.outcome``      terminal outcome (success / rejected / dmf /
                       dsf) with latency, freshness, restart count
``sched.enqueue``      a query entered the ready queue (cause: admit /
                       grant / refresh / restart / preempt)
``sched.dispatch``     a query left the ready queue for the CPU
``sched.park``         a query blocked waiting on on-demand refreshes
``admission.decision`` the AC's full verdict (reason, EST, C_flex)
``lock.wait``          a transaction blocked behind a lock
``lock.grant``         a queued waiter was promoted to lock holder
``lock.preempt``       2PL-HP abort: victims named, requester named
``update.apply``       an update transaction committed
``update.drop``        a source arrival dropped by the policy
``modulation.change``  an item's period degraded / upgraded
``control.allocate``   one Adaptive Allocation decision (LBC)
``control.window``     controller window snapshot: USM components
                       S / R / F_m / F_s plus the knob values chosen
``fault.start``        an injected fault window opened (label, fault
                       type, parameters)
``fault.end``          an injected fault window closed
``fleet.route``        the fleet router assigned a query to a shard
                       (candidates considered, estimated freshness)
``fleet.rebalance``    the global coordinator issued a per-shard
                       directive (C_flex factor, modulation signal)
=====================  ==============================================
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

# Event-kind constants (shared with the exporters and the CLI).
QUERY_ADMIT = "query.admit"
QUERY_OUTCOME = "query.outcome"
SCHED_ENQUEUE = "sched.enqueue"
SCHED_DISPATCH = "sched.dispatch"
SCHED_PARK = "sched.park"
ADMISSION_DECISION = "admission.decision"
LOCK_WAIT = "lock.wait"
LOCK_GRANT = "lock.grant"
LOCK_PREEMPT = "lock.preempt"
UPDATE_APPLY = "update.apply"
UPDATE_DROP = "update.drop"
MODULATION_CHANGE = "modulation.change"
CONTROL_ALLOCATE = "control.allocate"
CONTROL_WINDOW = "control.window"
FAULT_START = "fault.start"
FAULT_END = "fault.end"
FLEET_ROUTE = "fleet.route"
FLEET_REBALANCE = "fleet.rebalance"

#: Synthetic header line prepended to JSONL exports when the recorder's
#: ring buffer dropped events (truncated stream).  Not a recordable
#: kind — never emitted by instrumentation, absent from ALL_KINDS — so
#: complete traces keep their historical digests byte-for-byte.
TRACE_META = "trace.meta"

ALL_KINDS: Tuple[str, ...] = (
    QUERY_ADMIT,
    QUERY_OUTCOME,
    SCHED_ENQUEUE,
    SCHED_DISPATCH,
    SCHED_PARK,
    ADMISSION_DECISION,
    LOCK_WAIT,
    LOCK_GRANT,
    LOCK_PREEMPT,
    UPDATE_APPLY,
    UPDATE_DROP,
    MODULATION_CHANGE,
    CONTROL_ALLOCATE,
    CONTROL_WINDOW,
    FAULT_START,
    FAULT_END,
    FLEET_ROUTE,
    FLEET_REBALANCE,
)

#: Default ring capacity: large enough for a full small-scale cell
#: (~100k events), small enough to stay a bounded memory cost.
DEFAULT_CAPACITY = 262_144


class TraceEvent:
    """One recorded occurrence, in sim time.

    Slotted: a run can record hundreds of thousands of these, so the
    per-event layout matters.  ``fields`` is a plain dict of
    JSON-serializable values; the flattened form (:meth:`as_dict`) is
    what the exporters consume.
    """

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time: float, kind: str, fields: Dict[str, object]) -> None:
        self.time = time
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> Dict[str, object]:
        """Flatten to ``{"t": ..., "kind": ..., **fields}``."""
        out: Dict[str, object] = {"t": self.time, "kind": self.kind}
        out.update(self.fields)
        return out

    def __repr__(self) -> str:
        return f"TraceEvent(t={self.time:.6f}, kind={self.kind!r}, {self.fields!r})"


class QueryAdmitEvent(TraceEvent):
    """``query.admit`` with typed slots instead of an eager fields dict.

    Admit and outcome are the two hottest kinds on the enabled path; the
    per-event dict construction dominated their recording cost.  The
    ``fields`` property (shadowing the base slot) builds the same dict
    on demand for exporters, so the flattened form is unchanged.
    """

    __slots__ = ("txn", "deadline", "n_items")

    def __init__(self, time: float, txn: int, deadline: float, n_items: int) -> None:
        self.time = time
        self.kind = QUERY_ADMIT
        self.txn = txn
        self.deadline = deadline
        self.n_items = n_items

    @property
    def fields(self) -> Dict[str, object]:  # type: ignore[override]
        return {"txn": self.txn, "deadline": self.deadline, "items": self.n_items}

    def as_dict(self) -> Dict[str, object]:
        return {
            "t": self.time,
            "kind": self.kind,
            "txn": self.txn,
            "deadline": self.deadline,
            "items": self.n_items,
        }


class QueryOutcomeEvent(TraceEvent):
    """``query.outcome`` with typed slots; see :class:`QueryAdmitEvent`."""

    __slots__ = ("txn", "outcome", "arrival", "latency", "freshness", "restarts")

    def __init__(
        self,
        time: float,
        txn: int,
        outcome: str,
        arrival: float,
        latency: float,
        freshness: Optional[float],
        restarts: int,
    ) -> None:
        self.time = time
        self.kind = QUERY_OUTCOME
        self.txn = txn
        self.outcome = outcome
        self.arrival = arrival
        self.latency = latency
        self.freshness = freshness
        self.restarts = restarts

    @property
    def fields(self) -> Dict[str, object]:  # type: ignore[override]
        return {
            "txn": self.txn,
            "outcome": self.outcome,
            "arrival": self.arrival,
            "latency": self.latency,
            "freshness": self.freshness,
            "restarts": self.restarts,
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "t": self.time,
            "kind": self.kind,
            "txn": self.txn,
            "outcome": self.outcome,
            "arrival": self.arrival,
            "latency": self.latency,
            "freshness": self.freshness,
            "restarts": self.restarts,
        }


# ``sched.enqueue`` causes — why a query (re)entered the ready queue.
ENQUEUE_ADMIT = "admit"  # fresh admission
ENQUEUE_GRANT = "grant"  # a blocking lock was granted
ENQUEUE_REFRESH = "refresh"  # its on-demand refreshes committed
ENQUEUE_RESTART = "restart"  # restarted after a 2PL-HP abort
ENQUEUE_PREEMPT = "preempt"  # preempted off the CPU

ENQUEUE_CAUSES: Tuple[str, ...] = (
    ENQUEUE_ADMIT,
    ENQUEUE_GRANT,
    ENQUEUE_REFRESH,
    ENQUEUE_RESTART,
    ENQUEUE_PREEMPT,
)


class SchedEvent(TraceEvent):
    """The three ``sched.*`` kinds with typed slots.

    Scheduler transitions fire on every dispatch round of every query
    (several per query under contention), so like the admit/outcome
    events they skip the eager fields dict; ``cause`` is ``None`` for
    ``sched.dispatch`` / ``sched.park``.
    """

    __slots__ = ("txn", "cause")

    def __init__(
        self, time: float, kind: str, txn: int, cause: Optional[str]
    ) -> None:
        self.time = time
        self.kind = kind
        self.txn = txn
        self.cause = cause

    @property
    def fields(self) -> Dict[str, object]:  # type: ignore[override]
        if self.cause is None:
            return {"txn": self.txn}
        return {"txn": self.txn, "cause": self.cause}

    def as_dict(self) -> Dict[str, object]:
        if self.cause is None:
            return {"t": self.time, "kind": self.kind, "txn": self.txn}
        return {
            "t": self.time,
            "kind": self.kind,
            "txn": self.txn,
            "cause": self.cause,
        }


class Recorder:
    """Interface shared by :class:`TraceRecorder` and :class:`NullRecorder`.

    Instrumentation sites hold a ``Recorder`` and guard every typed
    call with ``if rec.enabled:`` — the subclass never changes under a
    running simulation, so the guard is branch-predictable.
    """

    __slots__ = ()

    #: False on the null recorder; instrumentation guards on this.
    enabled: bool = False

    # -- generic hook ---------------------------------------------------

    def emit(self, time: float, kind: str, fields: Dict[str, object]) -> None:
        """Record one event (no-op on the null recorder)."""

    # -- typed hooks (all forward to :meth:`emit`) ----------------------

    def query_admit(
        self, time: float, txn_id: int, deadline: float, n_items: int
    ) -> None:
        self.emit(
            time, QUERY_ADMIT, {"txn": txn_id, "deadline": deadline, "items": n_items}
        )

    def query_outcome(
        self,
        time: float,
        txn_id: int,
        outcome: str,
        arrival: float,
        latency: float,
        freshness: Optional[float],
        restarts: int,
    ) -> None:
        self.emit(
            time,
            QUERY_OUTCOME,
            {
                "txn": txn_id,
                "outcome": outcome,
                "arrival": arrival,
                "latency": latency,
                "freshness": freshness,
                "restarts": restarts,
            },
        )

    def sched_enqueue(self, time: float, txn_id: int, cause: str) -> None:
        self.emit(time, SCHED_ENQUEUE, {"txn": txn_id, "cause": cause})

    def sched_dispatch(self, time: float, txn_id: int) -> None:
        self.emit(time, SCHED_DISPATCH, {"txn": txn_id})

    def sched_park(self, time: float, txn_id: int) -> None:
        self.emit(time, SCHED_PARK, {"txn": txn_id})

    def admission_decision(
        self,
        time: float,
        txn_id: int,
        admitted: bool,
        reason: str,
        est: float,
        endangered: int,
        c_flex: float,
    ) -> None:
        self.emit(
            time,
            ADMISSION_DECISION,
            {
                "txn": txn_id,
                "admitted": admitted,
                "reason": reason,
                "est": est,
                "endangered": endangered,
                "c_flex": c_flex,
            },
        )

    def lock_wait(
        self,
        time: float,
        txn_id: int,
        item_id: int,
        is_update: bool,
        holders: Sequence[int],
    ) -> None:
        self.emit(
            time,
            LOCK_WAIT,
            {
                "txn": txn_id,
                "item": item_id,
                "update": is_update,
                "holders": list(holders),
            },
        )

    def lock_grant(self, time: float, txn_id: int, item_id: int) -> None:
        self.emit(time, LOCK_GRANT, {"txn": txn_id, "item": item_id})

    def lock_preempt(
        self,
        time: float,
        txn_id: int,
        item_id: int,
        is_update: bool,
        victims: Sequence[int],
    ) -> None:
        self.emit(
            time,
            LOCK_PREEMPT,
            {
                "txn": txn_id,
                "item": item_id,
                "update": is_update,
                "victims": list(victims),
            },
        )

    def update_apply(
        self, time: float, item_id: int, txn_id: int, on_demand: bool, period: float
    ) -> None:
        self.emit(
            time,
            UPDATE_APPLY,
            {"item": item_id, "txn": txn_id, "on_demand": on_demand, "period": period},
        )

    def update_drop(self, time: float, item_id: int, period: float) -> None:
        self.emit(time, UPDATE_DROP, {"item": item_id, "period": period})

    def modulation_change(
        self,
        time: float,
        item_id: int,
        direction: str,
        old_period: float,
        new_period: float,
    ) -> None:
        self.emit(
            time,
            MODULATION_CHANGE,
            {
                "item": item_id,
                "direction": direction,
                "old_period": old_period,
                "new_period": new_period,
            },
        )

    def control_allocate(
        self,
        time: float,
        costs: Dict[str, float],
        dominant: str,
        signals: Sequence[str],
        usm: Optional[float],
        samples: int,
    ) -> None:
        fields: Dict[str, object] = {
            "dominant": dominant,
            "signals": list(signals),
            "usm": usm,
            "samples": samples,
        }
        fields.update({f"cost_{key}": value for key, value in sorted(costs.items())})
        self.emit(time, CONTROL_ALLOCATE, fields)

    def control_window(
        self,
        time: float,
        components: Dict[str, float],
        usm: Optional[float],
        samples: int,
        signals: Sequence[str],
        c_flex: float,
        update_load: float,
        degraded_items: int,
        ticket_threshold: float,
    ) -> None:
        fields: Dict[str, object] = {
            "usm": usm,
            "samples": samples,
            "signals": list(signals),
            "c_flex": c_flex,
            "update_load": update_load,
            "degraded_items": degraded_items,
            "ticket_threshold": ticket_threshold,
        }
        fields.update(
            {key: value for key, value in sorted(components.items())}
        )
        self.emit(time, CONTROL_WINDOW, fields)

    def fault_start(
        self,
        time: float,
        label: str,
        fault: str,
        params: Dict[str, float],
    ) -> None:
        fields: Dict[str, object] = {"label": label, "fault": fault}
        fields.update(sorted(params.items()))
        self.emit(time, FAULT_START, fields)

    def fault_end(self, time: float, label: str, fault: str) -> None:
        self.emit(time, FAULT_END, {"label": label, "fault": fault})

    def fleet_route(
        self,
        time: float,
        txn_id: int,
        shard: int,
        policy: str,
        candidates: Sequence[int],
        est_freshness: float,
        forced: bool,
    ) -> None:
        self.emit(
            time,
            FLEET_ROUTE,
            {
                "txn": txn_id,
                "shard": shard,
                "policy": policy,
                "candidates": list(candidates),
                "est_freshness": est_freshness,
                "forced": forced,
            },
        )

    def fleet_rebalance(
        self,
        time: float,
        shard: int,
        flex_factor: float,
        c_flex_before: float,
        c_flex_after: float,
        modulate: Optional[str],
    ) -> None:
        self.emit(
            time,
            FLEET_REBALANCE,
            {
                "shard": shard,
                "flex_factor": flex_factor,
                "c_flex_before": c_flex_before,
                "c_flex_after": c_flex_after,
                "modulate": modulate,
            },
        )


class NullRecorder(Recorder):
    """The disabled recorder: every hook is a no-op.

    Instrumentation sites check :attr:`enabled` (a class attribute,
    False here) before doing any work, so the per-event cost of the
    disabled path is one attribute load and an untaken branch.
    """

    __slots__ = ()

    enabled = False

    def __len__(self) -> int:
        return 0

    def events(self) -> Iterator[TraceEvent]:
        return iter(())


#: The shared disabled recorder — safe to share because it is stateless.
NULL_RECORDER = NullRecorder()


class TraceRecorder(Recorder):
    """Bounded in-memory trace recorder.

    Events land in a ring buffer of ``capacity`` slots: when full, the
    oldest event is evicted and counted in :attr:`dropped` (the *tail*
    of a run is usually the interesting part for debugging).  An
    optional :class:`~repro.obs.metrics.RunMetrics` sink folds every
    event into its registry as it is recorded, so metrics cover the
    whole run even when the ring wraps.
    """

    __slots__ = ("_ring", "_capacity", "dropped", "counts", "metrics")

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        metrics: Optional["RunMetricsLike"] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._ring: Deque[TraceEvent] = deque()
        self.dropped = 0
        self.counts: Dict[str, int] = {}
        self.metrics = metrics

    def emit(self, time: float, kind: str, fields: Dict[str, object]) -> None:
        self._record(TraceEvent(time, kind, fields), kind)

    def _record(self, event: TraceEvent, kind: str) -> None:
        ring = self._ring
        if len(ring) >= self._capacity:
            ring.popleft()
            self.dropped += 1
        ring.append(event)
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.observe_event(event)

    # The hottest kinds bypass ``emit`` entirely: a typed slotted
    # event is appended with no fields dict (built lazily only if an
    # exporter asks).

    def sched_enqueue(self, time: float, txn_id: int, cause: str) -> None:
        self._record(SchedEvent(time, SCHED_ENQUEUE, txn_id, cause), SCHED_ENQUEUE)

    def sched_dispatch(self, time: float, txn_id: int) -> None:
        self._record(SchedEvent(time, SCHED_DISPATCH, txn_id, None), SCHED_DISPATCH)

    def sched_park(self, time: float, txn_id: int) -> None:
        self._record(SchedEvent(time, SCHED_PARK, txn_id, None), SCHED_PARK)

    def query_admit(
        self, time: float, txn_id: int, deadline: float, n_items: int
    ) -> None:
        self._record(QueryAdmitEvent(time, txn_id, deadline, n_items), QUERY_ADMIT)

    def query_outcome(
        self,
        time: float,
        txn_id: int,
        outcome: str,
        arrival: float,
        latency: float,
        freshness: Optional[float],
        restarts: int,
    ) -> None:
        self._record(
            QueryOutcomeEvent(
                time, txn_id, outcome, arrival, latency, freshness, restarts
            ),
            QUERY_OUTCOME,
        )

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def capacity(self) -> int:
        return self._capacity

    def events(self) -> Iterator[TraceEvent]:
        """The retained events, oldest first."""
        return iter(self._ring)

    def event_dicts(self) -> List[Dict[str, object]]:
        """All retained events flattened (the exporters' input)."""
        return [event.as_dict() for event in self._ring]

    def summary(self) -> Dict[str, object]:
        """Small, picklable digest for reports."""
        return {
            "events": len(self._ring),
            "recorded": sum(self.counts.values()),
            "dropped": self.dropped,
            "by_kind": dict(sorted(self.counts.items())),
        }


class RunMetricsLike:
    """Structural stand-in for :class:`repro.obs.metrics.RunMetrics`.

    Kept here (rather than importing the metrics module) so the trace
    layer has zero dependencies and the type reads in both directions.
    """

    __slots__ = ()

    def observe_event(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError
