"""Deterministic fault injection & graceful-degradation harness.

Public surface:

* :mod:`repro.faults.scenario` — the declarative :class:`FaultScenario`
  schema (re-exported here);
* :mod:`repro.faults.scenarios` — canned scenarios for the standard
  suite;
* :mod:`repro.faults.driver` — runtime injection on a live server;
* :mod:`repro.faults.metrics` — USM degradation metrics (dip depth,
  time below band, recovery time);
* :mod:`repro.faults.suite` / ``python -m repro.faults`` — the
  UNIT-vs-baselines recovery comparison.

Only the scenario types are imported eagerly: the experiments layer
imports this package for the ``ExperimentConfig.faults`` field, so the
heavier modules (driver, suite, CLI) must be pulled in explicitly to
keep the import graph acyclic.
"""

from repro.faults.scenario import (
    FaultScenario,
    FaultWindow,
    FlashCrowd,
    HotspotShift,
    ServerSlowdown,
    UpdateStorm,
)

__all__ = [
    "FaultScenario",
    "FaultWindow",
    "FlashCrowd",
    "HotspotShift",
    "ServerSlowdown",
    "UpdateStorm",
]
