"""Declarative fault scenarios.

A :class:`FaultScenario` is an immutable, hashable description of the
stress a run is subjected to, layered on top of the base workload:

* :class:`FlashCrowd` — an arrival-rate multiplier over a time window
  (the query stream bursts, or thins when the multiplier is below 1);
* :class:`UpdateStorm` — a per-item or global update-period override
  over a window.  ``period_factor < 1`` is a storm (the source emits
  faster), ``period_factor == 0`` is an update-stream *outage* (the
  window is silent);
* :class:`HotspotShift` — an access-popularity rotation applied to all
  query accesses from a point in time on (the hot set moves);
* :class:`ServerSlowdown` — a service-rate multiplier over a window
  (modeling CPU contention: the same work takes ``1/rate`` as long).

The first three shape the *traces* and are applied at workload-build
time (:mod:`repro.workload.perturb`); the slowdown is applied live by
the :class:`repro.faults.driver.FaultDriver`.  Correspondingly,
:meth:`FaultScenario.workload_fingerprint` covers exactly the
trace-shaping injectors — a slowdown-only scenario hashes to the empty
fingerprint, so paired runs with and without it share one workload
cache entry, and a config with no scenario keeps its pre-fault
``workload_key()`` byte for byte.

Determinism contract: scenario application draws only from named
``RandomStreams`` substreams (``fault-*``), disjoint from every
workload and policy stream, so equal seeds give byte-identical traces
— and an unconfigured run never touches the ``fault-*`` streams at
all.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

#: Fingerprint schema version; bump when injection semantics change.
_FINGERPRINT_VERSION = "faults-v1"


def _coerce_floats(obj: object, *fields: str) -> None:
    """Canonicalize numeric fields of a frozen dataclass to float, so
    ``FlashCrowd(30, 60, 3)`` and ``FlashCrowd(30.0, 60.0, 3.0)``
    fingerprint (and hash) identically."""
    for field in fields:
        object.__setattr__(obj, field, float(getattr(obj, field)))


@dataclasses.dataclass(frozen=True)
class FlashCrowd:
    """Query arrival-rate multiplier over ``[start, end)``.

    ``multiplier > 1`` replicates in-window queries (a crowd);
    ``multiplier < 1`` thins them (an audience drop-off).
    """

    start: float
    end: float
    multiplier: float

    def __post_init__(self) -> None:
        _coerce_floats(self, "start", "end", "multiplier")
        if self.end <= self.start:
            raise ValueError("flash crowd window must have end > start")
        if self.multiplier < 0:
            raise ValueError("multiplier cannot be negative")

    def params(self) -> Dict[str, float]:
        return {"start": self.start, "end": self.end, "multiplier": self.multiplier}


@dataclasses.dataclass(frozen=True)
class UpdateStorm:
    """Update-period override over ``[start, end)``.

    In-window arrivals of the affected items are regenerated with
    period ``base_period * period_factor``: ``period_factor < 1`` is a
    storm, ``> 1`` a lull, and ``0`` silences the window entirely (an
    update-stream outage).  ``item_id`` limits the fault to one item;
    ``None`` applies it to every item.
    """

    start: float
    end: float
    period_factor: float
    item_id: Optional[int] = None

    def __post_init__(self) -> None:
        _coerce_floats(self, "start", "end", "period_factor")
        if self.end <= self.start:
            raise ValueError("update storm window must have end > start")
        if self.period_factor < 0:
            raise ValueError("period_factor cannot be negative")

    @property
    def is_outage(self) -> bool:
        return self.period_factor == 0.0

    def params(self) -> Dict[str, float]:
        out = {
            "start": self.start,
            "end": self.end,
            "period_factor": self.period_factor,
        }
        if self.item_id is not None:
            out["item_id"] = float(self.item_id)
        return out


@dataclasses.dataclass(frozen=True)
class HotspotShift:
    """Access-popularity rotation from time ``at`` on.

    Every query arriving at or after ``at`` has each accessed item id
    ``j`` remapped to ``(j + rotation) % n_items`` — the popularity
    histogram rotates, so the items the controller learned to protect
    go cold and previously cold items become hot.
    """

    at: float
    rotation: int

    def __post_init__(self) -> None:
        _coerce_floats(self, "at")
        if self.at < 0:
            raise ValueError("shift time cannot be negative")
        if self.rotation == 0:
            raise ValueError("rotation must be non-zero")

    def params(self) -> Dict[str, float]:
        return {"at": self.at, "rotation": float(self.rotation)}


@dataclasses.dataclass(frozen=True)
class ServerSlowdown:
    """Service-rate multiplier over ``[start, end)``.

    ``rate`` scales how much work the CPU retires per simulated second
    (0.5 = everything takes twice as long).  Overlapping slowdowns
    compose multiplicatively.
    """

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        _coerce_floats(self, "start", "end", "rate")
        if self.end <= self.start:
            raise ValueError("slowdown window must have end > start")
        if self.rate <= 0:
            raise ValueError("rate must be positive (use a small value, not 0)")

    def params(self) -> Dict[str, float]:
        return {"start": self.start, "end": self.end, "rate": self.rate}


@dataclasses.dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault interval, resolved for the driver/metrics.

    ``kind`` is the injector family (``flash-crowd`` / ``update-storm``
    / ``hotspot-shift`` / ``server-slowdown``); ``label`` is unique
    within the scenario.  Instantaneous faults (hotspot shifts) have
    ``end == start``.
    """

    label: str
    kind: str
    start: float
    end: float
    params: Tuple[Tuple[str, float], ...]

    def params_dict(self) -> Dict[str, float]:
        return dict(self.params)


@dataclasses.dataclass(frozen=True)
class FaultScenario:
    """A named, immutable bundle of fault injections."""

    name: str
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    update_storms: Tuple[UpdateStorm, ...] = ()
    hotspot_shifts: Tuple[HotspotShift, ...] = ()
    slowdowns: Tuple[ServerSlowdown, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        # Tolerate lists at construction time; store canonical tuples so
        # the dataclass stays hashable.
        for field in ("flash_crowds", "update_storms", "hotspot_shifts", "slowdowns"):
            value = getattr(self, field)
            if not isinstance(value, tuple):
                object.__setattr__(self, field, tuple(value))

    @property
    def is_empty(self) -> bool:
        return not (
            self.flash_crowds
            or self.update_storms
            or self.hotspot_shifts
            or self.slowdowns
        )

    def shapes_workload(self) -> bool:
        """True when the scenario perturbs the generated traces (so it
        must participate in the workload cache key)."""
        return bool(self.flash_crowds or self.update_storms or self.hotspot_shifts)

    def workload_fingerprint(self) -> str:
        """Canonical hash input covering the trace-shaping injectors.

        Empty for scenarios that leave the traces untouched (slowdown
        only, or no faults at all) — the caller then omits it from the
        cache key, keeping unconfigured keys byte-identical to pre-fault
        builds.  Floats are canonicalized with ``float.hex()``.
        """
        if not self.shapes_workload():
            return ""
        parts: List[str] = [_FINGERPRINT_VERSION]
        for crowd in self.flash_crowds:
            parts.append(
                "fc:" + ",".join(
                    (crowd.start.hex(), crowd.end.hex(), crowd.multiplier.hex())
                )
            )
        for storm in self.update_storms:
            item = "*" if storm.item_id is None else str(storm.item_id)
            parts.append(
                "us:" + ",".join(
                    (storm.start.hex(), storm.end.hex(), storm.period_factor.hex(), item)
                )
            )
        for shift in self.hotspot_shifts:
            parts.append("hs:" + ",".join((shift.at.hex(), str(shift.rotation))))
        return "\x1e".join(parts)

    def timeline(self) -> List[FaultWindow]:
        """Every fault interval with a stable label, ordered by
        ``(start, label)`` — the driver's schedule and the metrics
        module's window list."""
        windows: List[FaultWindow] = []
        for i, crowd in enumerate(self.flash_crowds):
            windows.append(
                FaultWindow(
                    label=f"flash-crowd-{i}",
                    kind="flash-crowd",
                    start=crowd.start,
                    end=crowd.end,
                    params=tuple(sorted(crowd.params().items())),
                )
            )
        for i, storm in enumerate(self.update_storms):
            kind = "update-outage" if storm.is_outage else "update-storm"
            windows.append(
                FaultWindow(
                    label=f"{kind}-{i}",
                    kind=kind,
                    start=storm.start,
                    end=storm.end,
                    params=tuple(sorted(storm.params().items())),
                )
            )
        for i, shift in enumerate(self.hotspot_shifts):
            windows.append(
                FaultWindow(
                    label=f"hotspot-shift-{i}",
                    kind="hotspot-shift",
                    start=shift.at,
                    end=shift.at,
                    params=tuple(sorted(shift.params().items())),
                )
            )
        for i, slow in enumerate(self.slowdowns):
            windows.append(
                FaultWindow(
                    label=f"server-slowdown-{i}",
                    kind="server-slowdown",
                    start=slow.start,
                    end=slow.end,
                    params=tuple(sorted(slow.params().items())),
                )
            )
        windows.sort(key=lambda window: (window.start, window.label))
        return windows

    def describe(self) -> str:
        counts = []
        if self.flash_crowds:
            counts.append(f"{len(self.flash_crowds)} flash crowd(s)")
        if self.update_storms:
            counts.append(f"{len(self.update_storms)} update storm(s)/outage(s)")
        if self.hotspot_shifts:
            counts.append(f"{len(self.hotspot_shifts)} hotspot shift(s)")
        if self.slowdowns:
            counts.append(f"{len(self.slowdowns)} slowdown(s)")
        return f"{self.name}: " + (", ".join(counts) if counts else "no faults")
