"""Graceful-degradation metrics.

Turns one run's per-query records into a bucketed USM time series and,
for every fault window of the scenario, three recovery measures
(motivated by Liu & Ji's performance/freshness tradeoff analysis —
what matters under transient stress is not the steady state but how
deep the dip is and how fast the system climbs back):

* **dip depth** — pre-fault baseline USM minus the minimum bucketed USM
  observed from the fault start until the end of the run;
* **time below band** — total bucketed time with USM below
  ``baseline - band`` from the fault start on;
* **recovery time** — seconds after the fault *ends* until the bucketed
  USM re-enters the pre-fault band and stays there for
  ``settle_buckets`` consecutive buckets (None when it never settles).

Everything is computed from the immutable record list — no simulator
state — so the metrics work identically for UNIT and the baseline
policies, and re-running them is free.  USM per query uses
``PenaltyProfile.contribution`` (Eq. 3), bucketed by *finish* time (the
instant the user experiences the outcome).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.usm import PenaltyProfile
from repro.db.transactions import QueryRecord
from repro.faults.scenario import FaultScenario, FaultWindow

#: Default bucket width (seconds of sim time per USM sample).
DEFAULT_BUCKET = 5.0

#: Default tolerance band around the pre-fault baseline, as a fraction
#: of the profile's attainable USM range.
DEFAULT_BAND_FRACTION = 0.05

#: Buckets the series must stay in-band for recovery to count.
DEFAULT_SETTLE_BUCKETS = 2


def usm_time_series(
    records: Sequence[QueryRecord],
    profile: PenaltyProfile,
    horizon: float,
    bucket: float = DEFAULT_BUCKET,
) -> List[Tuple[float, Optional[float]]]:
    """Bucketed average USM: ``[(bucket_start, usm-or-None), ...]``.

    Buckets with no finished query report None (no signal, not zero —
    an idle system is not a dissatisfied one).  Records finishing past
    the horizon (the drain window) land in the final bucket row so late
    outcomes still count.
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    n_buckets = max(1, int(horizon / bucket + 0.999999))
    sums = [0.0] * n_buckets
    counts = [0] * n_buckets
    for record in records:
        index = int(record.finish_time / bucket)
        if index >= n_buckets:
            index = n_buckets - 1
        record_profile = record.profile or profile
        sums[index] += record_profile.contribution(record.outcome)  # type: ignore[attr-defined]
        counts[index] += 1
    series: List[Tuple[float, Optional[float]]] = []
    for index in range(n_buckets):
        value = sums[index] / counts[index] if counts[index] else None
        series.append((index * bucket, value))
    return series


def _baseline(
    series: Sequence[Tuple[float, Optional[float]]], before: float
) -> Optional[float]:
    """Mean bucketed USM over buckets entirely before ``before``."""
    values = [
        value for start, value in series if start + 1e-12 < before and value is not None
    ]
    # A fault starting at t=0 has no pre-fault buckets; fall back to the
    # whole-series mean so the dip is still measured against *something*.
    if not values:
        values = [value for _, value in series if value is not None]
    if not values:
        return None
    return sum(values) / len(values)


def _window_metrics(
    window: FaultWindow,
    series: Sequence[Tuple[float, Optional[float]]],
    bucket: float,
    band: float,
    settle_buckets: int,
) -> Dict[str, object]:
    baseline = _baseline(series, window.start)
    out: Dict[str, object] = {
        "label": window.label,
        "kind": window.kind,
        "start": window.start,
        "end": window.end,
        "baseline_usm": baseline,
        "band": band,
        "dip_depth": None,
        "min_usm": None,
        "time_below": 0.0,
        "recovery_time": None,
    }
    if baseline is None:
        return out
    floor = baseline - band

    after_start = [
        (start, value)
        for start, value in series
        if start + bucket > window.start and value is not None
    ]
    if after_start:
        min_usm = min(value for _, value in after_start)
        out["min_usm"] = min_usm
        out["dip_depth"] = max(0.0, baseline - min_usm)
        out["time_below"] = bucket * sum(
            1 for _, value in after_start if value < floor
        )

    # Recovery: first bucket at/after the fault end from which the
    # series stays in-band for `settle_buckets` consecutive non-empty
    # buckets.
    post = [
        (start, value) for start, value in series if start + bucket > window.end
    ]
    run = 0
    recovered_at: Optional[float] = None
    for start, value in post:
        if value is None:
            continue  # no signal: neither confirms nor breaks the streak
        if value >= floor:
            if run == 0:
                recovered_at = start
            run += 1
            if run >= settle_buckets:
                out["recovery_time"] = max(0.0, recovered_at - window.end)
                break
        else:
            run = 0
            recovered_at = None
    return out


def degradation_metrics(
    records: Sequence[QueryRecord],
    profile: PenaltyProfile,
    scenario: FaultScenario,
    horizon: float,
    bucket: float = DEFAULT_BUCKET,
    band: Optional[float] = None,
    settle_buckets: int = DEFAULT_SETTLE_BUCKETS,
) -> Dict[str, object]:
    """Per-fault-window degradation metrics for one run.

    Args:
        records: The run's complete query records
            (``ExperimentConfig.keep_records=True``).
        profile: The system penalty profile (per-record profiles, when
            present, take precedence — matching the USM accounting).
        scenario: The injected scenario; one metrics row per window.
        horizon: The run's trace horizon.
        bucket: USM sampling bucket width (seconds).
        band: Absolute tolerance around the baseline; defaults to
            ``DEFAULT_BAND_FRACTION`` of the profile's USM range.
        settle_buckets: Consecutive in-band buckets required to declare
            recovery.
    """
    if band is None:
        band = DEFAULT_BAND_FRACTION * profile.usm_range
    series = usm_time_series(records, profile, horizon, bucket=bucket)
    windows = [
        _window_metrics(window, series, bucket, band, settle_buckets)
        for window in scenario.timeline()
    ]
    return {
        "scenario": scenario.name,
        "bucket_seconds": bucket,
        "band": band,
        "settle_buckets": settle_buckets,
        "windows": windows,
        "usm_series": [
            {"t": start, "usm": value} for start, value in series
        ],
    }
