"""``python -m repro.faults``: run fault scenarios and recovery suites.

Subcommands::

    list     canned scenarios and their injector timelines
    run      one policy under one canned scenario (degradation JSON)
    suite    UNIT vs IMU/ODU/QMF under one canned scenario, with
             table + bar-chart figures and a JSON report
    smoke    tiny suite run used by CI; writes the report artifacts
             and exits non-zero if they are missing
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.obs.logging_setup import (
    add_verbosity_flags,
    configure_logging,
    verbosity_from_args,
)


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.config import SCALES
    from repro.faults.scenarios import CANNED, canned

    preset = SCALES[args.scale]
    for name in sorted(CANNED):
        scenario = canned(name, preset.horizon, preset.n_items)
        print(scenario.describe())
        for window in scenario.timeline():
            params = " ".join(
                f"{key}={value:g}" for key, value in window.params_dict().items()
            )
            print(
                f"  {window.label:<20} [{window.start:8.1f}, {window.end:8.1f})"
                f"  {params}"
            )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.config import SCALES, ExperimentConfig
    from repro.experiments.report import degradation_table, json_sanitize
    from repro.experiments.runner import run_experiment
    from repro.faults.scenarios import canned
    from repro.obs.config import ObsConfig

    preset = SCALES[args.scale]
    scenario = canned(args.scenario, preset.horizon, preset.n_items)
    obs = None
    if args.trace_out:
        obs = ObsConfig(enabled=True, out_dir=args.trace_out)
    config = ExperimentConfig(
        policy=args.policy,
        update_trace=args.trace,
        seed=args.seed,
        scale=preset,
        keep_records=True,
        faults=scenario,
        obs=obs,
    )
    report = run_experiment(config)
    print(report.summary())
    assert report.degradation is not None
    print(degradation_table(report.degradation))
    payload = json_sanitize(report.degradation)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote degradation metrics to {args.out}")
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.faults.suite import run_canned_suite

    rendered = run_canned_suite(
        args.scenario,
        scale=args.scale,
        update_trace=args.trace,
        seed=args.seed,
        out_dir=args.out,
    )
    print(rendered)
    if args.out:
        print(f"\nartifacts under {args.out}")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.experiments.config import SCALES
    from repro.faults.scenarios import canned
    from repro.faults.suite import run_suite, render_suite, write_suite_report

    preset = SCALES["smoke"]
    scenario = canned(args.scenario, preset.horizon, preset.n_items)
    results = run_suite(scenario, scale="smoke", seed=args.seed)
    print(render_suite(results, scenario))
    paths = write_suite_report(results, scenario, args.out)
    for path in paths:
        print(f"artifact: {path}")
    missing = [path for path in paths if not path.exists()]
    return 1 if missing else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic fault injection and recovery comparison.",
    )
    add_verbosity_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="canned scenarios and their timelines")
    p.add_argument("--scale", default="smoke", help="scale preset (default: smoke)")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("run", help="one policy under one canned scenario")
    p.add_argument("scenario", help="canned scenario name (see `list`)")
    p.add_argument("--policy", default="unit")
    p.add_argument("--trace", default="med-unif", help="update trace name")
    p.add_argument("--scale", default="smoke", help="scale preset (default: smoke)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", help="write degradation JSON here instead of stdout")
    p.add_argument("--trace-out", help="also record an obs trace to this directory")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("suite", help="UNIT vs IMU/ODU/QMF recovery comparison")
    p.add_argument("scenario", help="canned scenario name (see `list`)")
    p.add_argument("--trace", default="med-unif", help="update trace name")
    p.add_argument("--scale", default="smoke", help="scale preset (default: smoke)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", help="also write JSON + text artifacts here")
    p.set_defaults(func=_cmd_suite)

    p = sub.add_parser("smoke", help="CI smoke: tiny suite + report artifacts")
    p.add_argument("--scenario", default="pile-up")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", required=True, help="artifact output directory")
    p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    configure_logging(verbosity_from_args(args))
    result: int = args.func(args)
    return result


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
