"""Canned fault scenarios for the standard degradation suite.

Each builder is parameterized by the run's ``(horizon, n_items)`` so
the same named scenario scales from the ``smoke`` preset to the paper
scale: faults start after a third of the run (enough pre-fault buckets
for a stable baseline), last a sixth of it, and end with at least half
the horizon left to observe recovery.

The registry is deliberately small — one scenario per injector plus a
combined "pile-up" — so the suite output stays readable; ad-hoc
scenarios are just :class:`~repro.faults.scenario.FaultScenario`
literals.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.faults.scenario import (
    FaultScenario,
    FlashCrowd,
    HotspotShift,
    ServerSlowdown,
    UpdateStorm,
)


def _window(horizon: float) -> tuple:
    """Default fault window: starts at h/3, lasts h/6."""
    start = horizon / 3.0
    return start, start + horizon / 6.0


def flash_crowd(horizon: float, n_items: int) -> FaultScenario:
    """3x arrival-rate surge (the paper's flash-crowd motivation)."""
    start, end = _window(horizon)
    return FaultScenario(
        name="flash-crowd",
        flash_crowds=[FlashCrowd(start=start, end=end, multiplier=3.0)],
    )


def update_storm(horizon: float, n_items: int) -> FaultScenario:
    """Global update periods shrink 4x — a write burst from the source."""
    start, end = _window(horizon)
    return FaultScenario(
        name="update-storm",
        update_storms=[UpdateStorm(start=start, end=end, period_factor=0.25)],
    )


def outage(horizon: float, n_items: int) -> FaultScenario:
    """Update feed silence — data ages with no refreshes at all."""
    start, end = _window(horizon)
    return FaultScenario(
        name="update-outage",
        update_storms=[UpdateStorm(start=start, end=end, period_factor=0.0)],
    )


def hotspot_shift(horizon: float, n_items: int) -> FaultScenario:
    """Query popularity rotates by a quarter of the item space mid-run,
    invalidating any learned hot set."""
    return FaultScenario(
        name="hotspot-shift",
        hotspot_shifts=[HotspotShift(at=horizon / 2.0, rotation=max(1, n_items // 4))],
    )


def slowdown(horizon: float, n_items: int) -> FaultScenario:
    """Server runs at half speed — co-located load or a degraded disk."""
    start, end = _window(horizon)
    return FaultScenario(
        name="server-slowdown",
        slowdowns=[ServerSlowdown(start=start, end=end, rate=0.5)],
    )


def pile_up(horizon: float, n_items: int) -> FaultScenario:
    """Everything at once, staggered: a flash crowd arrives, an update
    storm lands on top of it, the server slows down, and the hot set
    moves — the worst afternoon a web database can have."""
    start, end = _window(horizon)
    width = end - start
    return FaultScenario(
        name="pile-up",
        flash_crowds=[FlashCrowd(start=start, end=end, multiplier=3.0)],
        update_storms=[
            UpdateStorm(
                start=start + width / 2.0,
                end=end + width / 2.0,
                period_factor=0.25,
            )
        ],
        slowdowns=[
            ServerSlowdown(
                start=start + width / 4.0,
                end=end + width / 4.0,
                rate=0.5,
            )
        ],
        hotspot_shifts=[HotspotShift(at=end, rotation=max(1, n_items // 4))],
    )


#: Named scenario builders: ``CANNED[name](horizon, n_items)``.
CANNED: Dict[str, Callable[[float, int], FaultScenario]] = {
    "flash-crowd": flash_crowd,
    "update-storm": update_storm,
    "update-outage": outage,
    "hotspot-shift": hotspot_shift,
    "server-slowdown": slowdown,
    "pile-up": pile_up,
}


def canned(name: str, horizon: float, n_items: int) -> FaultScenario:
    """Build the named canned scenario for a run of this size."""
    if name not in CANNED:
        raise ValueError(f"unknown scenario {name!r}; one of {sorted(CANNED)}")
    return CANNED[name](horizon, n_items)
