"""The canned degradation suite: UNIT vs the baselines under faults.

Runs one fault scenario against each policy in the paper's comparison
set (UNIT, IMU, ODU, QMF) with identical seeds and workloads, computes
the per-window degradation metrics, and renders the comparison as an
ASCII table, dip-depth/recovery bar charts, and a JSON report.  This is
the graceful-degradation counterpart to the steady-state figures: the
paper argues user-centric modulation should *bend* under stress where
update-centric policies break, and these numbers make that claim
checkable.

Not imported by :mod:`repro.faults` eagerly — this module pulls in the
experiments stack, which itself imports the scenario schema.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.report import ascii_table, bar_chart, json_sanitize
from repro.experiments.runner import SimulationReport, run_experiment
from repro.faults.scenario import FaultScenario
from repro.faults.scenarios import canned

#: The paper's comparison set (the elastic baseline is steady-state
#: related work; the degradation story is UNIT vs the Chapter-2 trio).
SUITE_POLICIES = ("unit", "imu", "odu", "qmf")


@dataclasses.dataclass
class SuiteResult:
    """One policy's run + degradation metrics under the scenario."""

    policy: str
    report: SimulationReport

    @property
    def degradation(self) -> Dict[str, object]:
        assert self.report.degradation is not None
        return self.report.degradation

    def window_rows(self) -> List[Dict[str, object]]:
        windows = self.degradation["windows"]
        assert isinstance(windows, list)
        return windows


def run_suite(
    scenario: FaultScenario,
    scale: str = "smoke",
    update_trace: str = "med-unif",
    seed: int = 7,
    policies: Sequence[str] = SUITE_POLICIES,
) -> List[SuiteResult]:
    """Run every policy against the same scenario/seed/workload."""
    results: List[SuiteResult] = []
    for policy in policies:
        config = ExperimentConfig(
            policy=policy,
            update_trace=update_trace,
            seed=seed,
            scale=SCALES[scale],
            keep_records=True,
            faults=scenario,
        )
        results.append(SuiteResult(policy=policy, report=run_experiment(config)))
    return results


def _fmt_opt(value: object) -> object:
    return "-" if value is None else value


def render_suite(results: Sequence[SuiteResult], scenario: FaultScenario) -> str:
    """ASCII table + bar charts comparing recovery across policies."""
    rows: List[List[object]] = []
    for result in results:
        for window in result.window_rows():
            rows.append(
                [
                    result.policy,
                    window["label"],
                    result.report.usm,
                    _fmt_opt(window["baseline_usm"]),
                    _fmt_opt(window["dip_depth"]),
                    window["time_below"],
                    _fmt_opt(window["recovery_time"]),
                ]
            )
    table = ascii_table(
        [
            "policy",
            "window",
            "run USM",
            "baseline",
            "dip depth",
            "below band (s)",
            "recovery (s)",
        ],
        rows,
        title=f"Degradation under scenario '{scenario.name}'",
    )

    dip: Dict[str, float] = {}
    recovery: Dict[str, float] = {}
    for result in results:
        windows = result.window_rows()
        dips = [w["dip_depth"] for w in windows if w["dip_depth"] is not None]
        dip[result.policy] = max(dips) if dips else 0.0  # type: ignore[type-var]
        times = [
            w["recovery_time"] for w in windows if w["recovery_time"] is not None
        ]
        # An unrecovered window dominates: chart it as the full span from
        # the earliest fault end to the horizon so "never" reads worst.
        if len(times) < len(windows):
            horizon = results[0].report.config.scale.horizon
            earliest_end = min(float(w["end"]) for w in windows) if windows else 0.0
            recovery[result.policy] = horizon - earliest_end
        else:
            recovery[result.policy] = max(times) if times else 0.0  # type: ignore[type-var]

    charts = [
        bar_chart(dip, title="Worst USM dip depth (lower is better)"),
        bar_chart(
            recovery,
            title="Worst recovery time, s (lower is better; unrecovered = full tail)",
        ),
    ]
    return "\n\n".join([table] + charts)


def suite_payload(
    results: Sequence[SuiteResult], scenario: FaultScenario
) -> Dict[str, object]:
    """JSON-safe suite report (per policy: summary + degradation)."""
    return {
        "scenario": scenario.describe(),
        "policies": [
            json_sanitize(
                {
                    "policy": result.policy,
                    "usm": result.report.usm,
                    "queries": result.report.queries_submitted,
                    "degradation": result.degradation,
                }
            )
            for result in results
        ],
    }


def write_suite_report(
    results: Sequence[SuiteResult],
    scenario: FaultScenario,
    out_dir: str,
) -> List[Path]:
    """Write the JSON report and the rendered figures; return paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / f"degradation-{scenario.name}.json"
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(suite_payload(results, scenario), fh, indent=2, sort_keys=True)
        fh.write("\n")
    text_path = out / f"degradation-{scenario.name}.txt"
    with open(text_path, "w", encoding="utf-8") as fh:
        fh.write(render_suite(results, scenario))
        fh.write("\n")
    return [json_path, text_path]


def run_canned_suite(
    name: str,
    scale: str = "smoke",
    update_trace: str = "med-unif",
    seed: int = 7,
    out_dir: Optional[str] = None,
) -> str:
    """Build the named canned scenario, run the suite, render it.

    Returns the rendered comparison; writes artifacts when ``out_dir``
    is given.
    """
    preset = SCALES[scale]
    scenario = canned(name, preset.horizon, preset.n_items)
    results = run_suite(
        scenario, scale=scale, update_trace=update_trace, seed=seed
    )
    if out_dir is not None:
        write_suite_report(results, scenario, out_dir)
    return render_suite(results, scenario)
