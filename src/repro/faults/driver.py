"""Runtime side of fault injection.

The :class:`FaultDriver` schedules one simulator event per fault-window
boundary (at ``CONTROL_EVENT_PRIORITY``, so same-instant completions
and arrivals resolve first) and, when a window opens or closes:

* applies / reverts **server slowdowns** by composing the service-rate
  multipliers of every active slowdown window onto the server;
* emits ``fault.start`` / ``fault.end`` trace events so exported traces
  carry the fault timeline alongside the controller's reaction;
* calls :meth:`repro.db.policy_api.ServerPolicy.on_fault`, giving the
  policy a chance to snapshot its controller state at the boundary
  (UNIT emits a ``control.window`` snapshot).

Workload-shaping faults (flash crowds, storms, hotspot shifts) are
already baked into the traces by :mod:`repro.workload.perturb`; for
those the driver only emits the markers and the policy hook.  The
driver itself draws no randomness, so installing it perturbs nothing —
with an empty scenario it schedules no events at all.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional

from repro.db.server import CONTROL_EVENT_PRIORITY, Server
from repro.faults.scenario import FaultScenario, FaultWindow
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sim.engine import Simulator


class FaultDriver:
    """Schedules and applies one scenario's faults on a live server."""

    def __init__(
        self,
        scenario: FaultScenario,
        server: Server,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.scenario = scenario
        self.server = server
        self.obs: Recorder = recorder if recorder is not None else NULL_RECORDER
        self.windows: List[FaultWindow] = scenario.timeline()
        # Open slowdown windows, keyed by object identity (the same
        # FaultWindow instance is bound to both its begin and end
        # events).  The composed rate is recomputed from this set, never
        # from a saved pre-fault snapshot, so overlapping windows that
        # end out of order always restore the correct rate.
        self._active_slowdowns: Dict[int, FaultWindow] = {}
        self.events_scheduled = 0
        self.starts_fired = 0
        self.ends_fired = 0

    def install(self, sim: Simulator) -> int:
        """Schedule every window boundary; returns the event count."""
        for window in self.windows:
            sim.schedule(
                window.start,
                functools.partial(self._begin, window),
                priority=CONTROL_EVENT_PRIORITY,
            )
            self.events_scheduled += 1
            if window.end > window.start:
                sim.schedule(
                    window.end,
                    functools.partial(self._end, window),
                    priority=CONTROL_EVENT_PRIORITY,
                )
                self.events_scheduled += 1
        return self.events_scheduled

    # ------------------------------------------------------------------
    # window boundaries
    # ------------------------------------------------------------------

    def _composed_rate(self) -> float:
        """Product of the active slowdown multipliers.

        A pure function of the active *set*: windows are multiplied in
        canonical ``(start, label, rate)`` order, so the result does not
        depend on the history of how the set was reached.  Float
        multiplication is not associative, so without the sort two
        overlapping windows ending in opposite orders could restore
        different rates.
        """
        rate = 1.0
        ordered = sorted(
            self._active_slowdowns.values(),
            key=lambda w: (w.start, w.label, w.params_dict()["rate"]),
        )
        for window in ordered:
            rate *= window.params_dict()["rate"]
        return rate

    def _begin(self, window: FaultWindow) -> None:
        server = self.server
        self.starts_fired += 1
        if window.kind == "server-slowdown":
            self._active_slowdowns[id(window)] = window
            server.set_service_rate(self._composed_rate())
        obs = self.obs
        if obs.enabled:
            obs.fault_start(server.now, window.label, window.kind, window.params_dict())
        server.policy.on_fault(window.label, True, server)
        if window.end == window.start:
            # Instantaneous fault (hotspot shift): close it in the same
            # call so start/end markers always pair up in the trace.
            self._end(window)

    def _end(self, window: FaultWindow) -> None:
        server = self.server
        self.ends_fired += 1
        if window.kind == "server-slowdown":
            self._active_slowdowns.pop(id(window), None)
            server.set_service_rate(self._composed_rate())
        obs = self.obs
        if obs.enabled:
            obs.fault_end(server.now, window.label, window.kind)
        server.policy.on_fault(window.label, False, server)
