"""Sharded multi-server fleet with a hierarchical load-balancing controller.

A fleet runs N independent single-server substrates (each its own
simulator, ready queue, 2PL-HP lock manager, and update-management
policy — the ``db``/``core`` stack unchanged) over a deterministic item
partition with optional K-way replication.  A pre-simulation router
admits every query to exactly one shard; a global coordinator watches
per-shard epoch summaries and reallocates admission slack (``C_flex``)
and update-modulation pressure across shards each control window.

Determinism contract: a 1-shard fleet is *report-digest-identical* to
the single-server runner for the same :class:`ExperimentConfig` and
seed, and an N-shard fleet is byte-identical across repeats and across
serial-vs-process shard execution.
"""

from repro.fleet.controller import Directive, EpochSummary, GlobalCoordinator
from repro.fleet.partition import Partition, build_partition
from repro.fleet.report import FleetReport, merge_reports
from repro.fleet.router import ROUTER_POLICIES, RoutingPlan, route_queries
from repro.fleet.runner import FleetConfig, run_fleet
from repro.fleet.substrate import ShardRun, ShardSpec, build_shard_specs

__all__ = [
    "Directive",
    "EpochSummary",
    "FleetConfig",
    "FleetReport",
    "GlobalCoordinator",
    "Partition",
    "ROUTER_POLICIES",
    "RoutingPlan",
    "ShardRun",
    "ShardSpec",
    "build_partition",
    "build_shard_specs",
    "merge_reports",
    "route_queries",
    "run_fleet",
]
