"""The fleet router: admit every query to exactly one shard.

Routing happens *before* simulation, in global arrival order — the
router is part of workload preparation, so the per-shard traces (and
therefore the whole fleet trajectory) are a pure function of the
routing plan.  Writes are never routed: an item's update stream always
executes on its primary shard (replicas receive a lag-delayed copy).

Reads are routed by a pluggable policy trading freshness against
latency:

``primary``       always the primary shard of the query's first item
                  (maximally fresh, concentrates load)
``round-robin``   cycle through the candidate host shards
``least-loaded``  the candidate with the smallest routed-work window
``freshness``     candidates whose *estimated* replica freshness meets
                  the query's requirement, then least-loaded among them

A query touching items whose host sets do not intersect is *forced*
onto the primary shard of its first item; the missing items become
forced replicas there (counted in the plan, materialized by the shard
builder).

Replica staleness is estimated from the update schedule alone: a
replica applies each source update ``replica_lag`` seconds after the
primary, so at time t it is missing the updates that arrived in
``(t - replica_lag, t]`` — pending count via binary search over the
item's precomputed arrival times, estimated freshness ``1/(1+pending)``
(the paper's lag metric, Eq. 1).
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.partition import Partition
from repro.obs.trace import Recorder
from repro.workload.queries import QueryTrace
from repro.workload.updates import UpdateTrace

#: Read-routing policies, in documentation order.
ROUTER_POLICIES: Tuple[str, ...] = (
    "primary",
    "round-robin",
    "least-loaded",
    "freshness",
)


@dataclasses.dataclass
class RoutingPlan:
    """Output of :func:`route_queries`.

    Attributes:
        policy: The routing policy that produced the plan.
        assignments: Shard id per query, in trace order.
        forced: Per-query flag — True when the host sets of the query's
            items had an empty intersection and the router fell back to
            the first item's primary shard.
        est_freshness: The router's freshness estimate for each query
            at its chosen shard (1.0 on any primary-complete shard).
        extra_hosts: Forced replicas: shard → sorted global item ids
            the shard must additionally host.
        routed_exec: Total routed query execution time per shard.
        routed_counts: Number of queries per shard.
    """

    policy: str
    assignments: List[int]
    forced: List[bool]
    est_freshness: List[float]
    extra_hosts: Dict[int, List[int]]
    routed_exec: List[float]
    routed_counts: List[int]

    def summary(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "queries": len(self.assignments),
            "forced": sum(self.forced),
            "routed_counts": list(self.routed_counts),
            "routed_exec": [round(x, 6) for x in self.routed_exec],
            "extra_hosts": {
                shard: len(items) for shard, items in sorted(self.extra_hosts.items())
            },
        }


class _LoadTracker:
    """Sliding-window routed work per shard, plus a static update bias.

    The bias charges each shard its steady-state update CPU rate times
    the window length, so ``least-loaded`` sees update demand (which is
    fixed by the partition) as well as the reads it has routed.
    """

    def __init__(self, n_shards: int, window: float, update_bias: Sequence[float]) -> None:
        self.window = window
        self._bias = list(update_bias)
        self._events: List[List[Tuple[float, float]]] = [[] for _ in range(n_shards)]
        self._sums = [0.0] * n_shards
        self._heads = [0] * n_shards

    def load(self, shard: int, now: float) -> float:
        events = self._events[shard]
        head = self._heads[shard]
        cutoff = now - self.window
        total = self._sums[shard]
        while head < len(events) and events[head][0] <= cutoff:
            total -= events[head][1]
            head += 1
        self._heads[shard] = head
        self._sums[shard] = total
        return total + self._bias[shard]

    def add(self, shard: int, now: float, work: float) -> None:
        self._events[shard].append((now, work))
        self._sums[shard] += work


class _StalenessEstimator:
    """Pending-update estimates for lag-delayed replicas."""

    def __init__(self, update_trace: UpdateTrace, replica_lag: float) -> None:
        self.lag = replica_lag
        self._arrivals: List[List[float]] = []
        for item in update_trace.items:
            self._arrivals.append(list(item.arrival_times(update_trace.horizon)))

    def pending(self, item: int, now: float) -> int:
        """Updates applied at the primary but not yet at a replica."""
        arrivals = self._arrivals[item]
        return bisect_right(arrivals, now) - bisect_right(arrivals, now - self.lag)

    def freshness(self, items: Sequence[int], shard: int, primary: Sequence[int], now: float) -> float:
        """Estimated query freshness at ``shard``: min over items of
        the lag metric, 1.0 for every item whose primary is the shard."""
        worst = 1.0
        for item in items:
            if primary[item] == shard:
                continue
            estimate = 1.0 / (1.0 + self.pending(item, now))
            if estimate < worst:
                worst = estimate
        return worst


def route_queries(
    query_trace: QueryTrace,
    update_trace: UpdateTrace,
    partition: Partition,
    policy: str = "primary",
    replica_lag: float = 5.0,
    load_window: float = 30.0,
    recorder: Optional[Recorder] = None,
) -> RoutingPlan:
    """Assign every query of ``query_trace`` to one shard.

    Deterministic by construction: queries are processed in trace
    (arrival) order, every tie breaks toward the lowest shard id, and
    the only state consulted is the plan built so far.
    """
    if policy not in ROUTER_POLICIES:
        raise ValueError(f"unknown router policy {policy!r}; one of {ROUTER_POLICIES}")

    n_shards = partition.n_shards
    primary = partition.primary
    hosts = partition.hosts
    horizon = update_trace.horizon

    update_rate = [0.0] * n_shards
    for item in update_trace.items:
        if horizon > 0:
            demand = item.count * item.exec_time / horizon
            for shard in hosts[item.item_id]:
                update_rate[shard] += demand
    tracker = _LoadTracker(
        n_shards, load_window, [rate * load_window for rate in update_rate]
    )
    estimator = _StalenessEstimator(update_trace, replica_lag)

    assignments: List[int] = []
    forced_flags: List[bool] = []
    est_list: List[float] = []
    extra_hosts: Dict[int, List[int]] = {}
    routed_exec = [0.0] * n_shards
    routed_counts = [0] * n_shards
    rr_cursor = 0
    emit = recorder is not None and recorder.enabled

    for index, query in enumerate(query_trace.queries):
        now = query.arrival
        candidates = sorted(set(hosts[query.items[0]]).intersection(
            *(set(hosts[item]) for item in query.items[1:])
        ))
        forced = not candidates
        if forced:
            shard = primary[query.items[0]]
            candidates = [shard]
            bucket = extra_hosts.setdefault(shard, [])
            for item in query.items:
                if shard not in hosts[item]:
                    pos = bisect_left(bucket, item)
                    if pos == len(bucket) or bucket[pos] != item:
                        insort(bucket, item)
        if len(candidates) == 1:
            shard = candidates[0]
        elif policy == "primary":
            shard = primary[query.items[0]]
        elif policy == "round-robin":
            shard = candidates[rr_cursor % len(candidates)]
            rr_cursor += 1
        elif policy == "least-loaded":
            shard = min(candidates, key=lambda s: (tracker.load(s, now), s))
        else:  # freshness
            fresh_enough = [
                s
                for s in candidates
                if estimator.freshness(query.items, s, primary, now)
                >= query.freshness_req
            ]
            pool = fresh_enough or [primary[query.items[0]]]
            shard = min(pool, key=lambda s: (tracker.load(s, now), s))

        estimate = estimator.freshness(query.items, shard, primary, now)
        tracker.add(shard, now, query.exec_time)
        assignments.append(shard)
        forced_flags.append(forced)
        est_list.append(estimate)
        routed_exec[shard] += query.exec_time
        routed_counts[shard] += 1
        if emit:
            # Fleet-level query number (1..N in global trace order);
            # shards renumber their routed subsequences locally, so this
            # coincides with shard txn ids only on a 1-shard fleet.
            recorder.fleet_route(
                now, index + 1, shard, policy, candidates, estimate, forced
            )

    return RoutingPlan(
        policy=policy,
        assignments=assignments,
        forced=forced_flags,
        est_freshness=est_list,
        extra_hosts=extra_hosts,
        routed_exec=routed_exec,
        routed_counts=routed_counts,
    )
