"""Run a fleet end to end: partition → route → shard runs → merge.

The fleet clock is epoch-synced: every shard advances to the same
simulated time each control window (``sync_period``), the coordinator
reads the epoch summaries, and its directives apply at the start of
the next window.  ``Simulator.run(until=t)`` fires every event with
time <= t and then pins ``now`` to t, and successive slices are
byte-identical to one continuous run — so epoch slicing never perturbs
a shard's trajectory, and a no-op directive stream (the 1-shard case)
reproduces the single-server runner exactly.

Shards execute either serially in-process (``workers=0``, the
reference order) or as one OS process each (:mod:`repro.fleet.procs`);
both paths see identical specs and identical directive sequences, so
their merged reports are byte-identical — a property the test suite
asserts rather than assumes.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SimulationReport
from repro.faults.scenario import FaultScenario
from repro.fleet.controller import Directive, EpochSummary, GlobalCoordinator
from repro.fleet.partition import build_partition
from repro.fleet.report import FleetReport, merge_reports
from repro.fleet.router import route_queries
from repro.fleet.substrate import ShardRun, ShardSpec, build_shard_specs
from repro.obs.trace import TraceRecorder
from repro.workload.cache import get_workload


@dataclasses.dataclass
class FleetConfig:
    """Specification of one fleet run."""

    base: ExperimentConfig
    n_shards: int = 2
    replication: int = 1
    partition_strategy: str = "block"
    router_policy: str = "primary"
    replica_lag: float = 5.0
    load_window: float = 30.0
    sync_period: float = 20.0
    coordinate: bool = True
    eta: float = 0.25
    #: 0 = serial in-process shards; >= 1 = one OS process per shard
    #: (the value is a flag, not a pool size — shard count fixes the
    #: process count).
    workers: int = 0
    shard_faults: Optional[Dict[int, FaultScenario]] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.sync_period <= 0:
            raise ValueError("sync_period must be positive")
        if self.replica_lag < 0:
            raise ValueError("replica_lag must be non-negative")


def run_fleet(fleet: FleetConfig) -> FleetReport:
    """Run one fleet and merge the shard reports."""
    base = fleet.base
    # The fleet shares the single-server workload pipeline (and its
    # cache): trace-shaping fault perturbation happens here, once,
    # before the split — shard-level FaultDrivers handle only
    # server-level faults.
    query_trace, update_trace = get_workload(base)

    partition = build_partition(
        base.scale.n_items,
        fleet.n_shards,
        replication=fleet.replication,
        strategy=fleet.partition_strategy,
    )
    recorder: Optional[TraceRecorder] = None
    if base.obs is not None and base.obs.enabled:
        recorder = TraceRecorder(capacity=base.obs.capacity)
    plan = route_queries(
        query_trace,
        update_trace,
        partition,
        policy=fleet.router_policy,
        replica_lag=fleet.replica_lag,
        load_window=fleet.load_window,
        recorder=recorder,
    )
    specs = build_shard_specs(
        base,
        partition,
        plan,
        query_trace,
        update_trace,
        replica_lag=fleet.replica_lag,
        shard_faults=fleet.shard_faults,
    )

    coordinator = GlobalCoordinator(eta=fleet.eta, recorder=recorder)
    rebalances: List[Dict[str, object]] = []
    horizon = base.scale.horizon
    epochs = max(1, math.ceil(horizon / fleet.sync_period))

    def plan_epoch(raw_summaries: List[Dict[str, object]]) -> Optional[List[Optional[Directive]]]:
        if not fleet.coordinate:
            return None
        summaries = [EpochSummary.from_dict(raw) for raw in raw_summaries]
        planned = coordinator.plan(summaries)
        directives: List[Optional[Directive]] = []
        for directive in planned:
            if directive.is_noop:
                directives.append(None)
            else:
                directives.append(directive)
                rebalances.append(
                    {
                        "time": summaries[directive.shard_id].time,
                        "shard": directive.shard_id,
                        "flex_factor": directive.flex_factor,
                        "modulate": directive.modulate,
                    }
                )
        return directives

    if fleet.workers and fleet.n_shards > 1:
        from repro.fleet.procs import ShardProcessPool

        pool = ShardProcessPool(specs)
        try:
            directives: Optional[List[Optional[Directive]]] = None
            for epoch in range(1, epochs + 1):
                until = min(horizon, epoch * fleet.sync_period)
                raw = pool.run_epoch(until, directives)
                directives = plan_epoch(raw)
            reports = pool.finish()
        finally:
            pool.close()
    else:
        # Wall timing stays in locals here (and in the process worker):
        # the substrate object itself must never hold a wall-clock
        # value, only the sanctioned `wall_seconds` report field does.
        serial_started = time.perf_counter()
        runs = [ShardRun(spec) for spec in specs]
        directives = None
        for epoch in range(1, epochs + 1):
            until = min(horizon, epoch * fleet.sync_period)
            raw = []
            for index, run in enumerate(runs):
                if directives is not None and directives[index] is not None:
                    run.apply_directive(directives[index])  # type: ignore[arg-type]
                run.run_to(until)
                raw.append(run.epoch_summary())
            directives = plan_epoch(raw)
        reports = [
            run.finish(time.perf_counter() - serial_started) for run in runs
        ]

    merged = merge_reports(base, specs, reports)
    obs_summary = recorder.summary() if recorder is not None else None
    return FleetReport(
        n_shards=fleet.n_shards,
        replication=fleet.replication,
        partition_strategy=fleet.partition_strategy,
        router_policy=fleet.router_policy,
        merged=merged,
        shard_reports=list(reports),
        routing=plan.summary(),
        rebalances=rebalances,
        epochs=epochs,
        obs_summary=obs_summary,
    )
