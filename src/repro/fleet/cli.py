"""``python -m repro.fleet`` — run, smoke-test, and sweep fleets.

Subcommands:

``run``     one fleet run; prints the merged summary (optionally JSON)
``smoke``   the CI gate: 1-shard-vs-single-server digest equivalence,
            2-shard repeat determinism, and a paired 2-shard mini-sweep
            whose merged reports land in a JSON artifact
``figure``  the Figure-4-style 1-vs-4-shard sweep: read-routing policy
            trading freshness (DSF) against latency (DMF) across three
            update-load levels
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.db.transactions import Outcome
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.report import ascii_table, stable_report_digest
from repro.experiments.runner import run_experiment
from repro.fleet.report import FleetReport
from repro.fleet.router import ROUTER_POLICIES
from repro.fleet.runner import FleetConfig, run_fleet

#: The figure's load axis: Table 1 update volumes at uniform spatial mix
#: (15% / 75% / 150% update CPU).
FIGURE_TRACES: Tuple[str, ...] = ("low-unif", "med-unif", "high-unif")

#: The figure's fleet variants: the single-server baseline, a 4-shard
#: fleet that always reads fresh primaries, and a 4-shard fleet with
#: 2-way replication routing reads by estimated freshness vs load.
FIGURE_VARIANTS: Tuple[Tuple[str, int, int, str], ...] = (
    ("1-shard", 1, 1, "primary"),
    ("4-shard/primary", 4, 1, "primary"),
    ("4-shard/freshness", 4, 2, "freshness"),
)


def _base_config(args: argparse.Namespace, trace: str) -> ExperimentConfig:
    return ExperimentConfig(
        policy=args.policy,
        update_trace=trace,
        seed=args.seed,
        scale=SCALES[args.scale],
    )


def _fleet_config(args: argparse.Namespace, base: ExperimentConfig) -> FleetConfig:
    return FleetConfig(
        base=base,
        n_shards=args.shards,
        replication=args.replication,
        partition_strategy=args.partition,
        router_policy=args.router,
        replica_lag=args.replica_lag,
        sync_period=args.sync_period,
        workers=1 if args.processes else 0,
    )


def _cell_metrics(report: FleetReport) -> Dict[str, object]:
    merged = report.merged
    return {
        "usm": merged.usm,
        "dmf": merged.ratios[Outcome.DEADLINE_MISS],
        "dsf": merged.ratios[Outcome.DATA_STALE],
        "success": merged.ratios[Outcome.SUCCESS],
        "rejected": merged.ratios[Outcome.REJECTED],
        "digest": report.digest,
        "routing": report.routing,
        "rebalances": len(report.rebalances),
    }


def _cmd_run(args: argparse.Namespace) -> int:
    base = _base_config(args, args.trace)
    report = run_fleet(_fleet_config(args, base))
    print(report.summary())
    print(f"digest: {report.digest}")
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        print(f"wrote {path}")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """The CI gate: equivalence, determinism, and a paired mini-sweep."""
    failures: List[str] = []
    base = _base_config(args, "med-unif")

    single = stable_report_digest(run_experiment(base))
    one_shard = run_fleet(FleetConfig(base=base, n_shards=1))
    if one_shard.digest != single:
        failures.append(
            f"1-shard fleet digest {one_shard.digest[:16]} != "
            f"single-server digest {single[:16]}"
        )
    print(f"1-shard equivalence: {'ok' if one_shard.digest == single else 'FAIL'}")

    artifact: Dict[str, object] = {"scale": args.scale, "seed": args.seed, "cells": {}}
    for trace in ("low-unif", "med-unif"):
        cell_base = _base_config(args, trace)
        fleet = FleetConfig(
            base=cell_base, n_shards=2, replication=2, router_policy="freshness"
        )
        first = run_fleet(fleet)
        second = run_fleet(dataclasses_replace_fleet(fleet))
        repeat_ok = first.digest == second.digest
        if not repeat_ok:
            failures.append(f"2-shard repeat determinism broke on {trace}")
        serial_vs_procs_ok = True
        if args.processes:
            procs = run_fleet(
                FleetConfig(
                    base=cell_base,
                    n_shards=2,
                    replication=2,
                    router_policy="freshness",
                    workers=1,
                )
            )
            serial_vs_procs_ok = procs.digest == first.digest
            if not serial_vs_procs_ok:
                failures.append(f"serial-vs-process fleets diverged on {trace}")
        print(
            f"2-shard {trace}: repeat={'ok' if repeat_ok else 'FAIL'} "
            f"procs={'ok' if serial_vs_procs_ok else 'FAIL'} "
            f"usm={first.merged.usm:+.4f}"
        )
        artifact["cells"][trace] = first.as_dict()  # type: ignore[index]

    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(artifact, indent=2, sort_keys=True))
        print(f"wrote {path}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def dataclasses_replace_fleet(fleet: FleetConfig) -> FleetConfig:
    """A fresh, equal FleetConfig (guards against in-place mutation)."""
    import dataclasses

    return dataclasses.replace(fleet, base=dataclasses.replace(fleet.base))


def _figure_cells(args: argparse.Namespace) -> List[Tuple[Tuple[str, str], FleetConfig]]:
    cells: List[Tuple[Tuple[str, str], FleetConfig]] = []
    for trace in FIGURE_TRACES:
        for label, shards, replication, router in FIGURE_VARIANTS:
            base = _base_config(args, trace)
            cells.append(
                (
                    (trace, label),
                    FleetConfig(
                        base=base,
                        n_shards=shards,
                        replication=replication,
                        router_policy=router,
                        replica_lag=args.replica_lag,
                        sync_period=args.sync_period,
                    ),
                )
            )
    return cells


def _run_figure_cell(
    cell: Tuple[Tuple[str, str], FleetConfig]
) -> Tuple[Tuple[str, str], Dict[str, object]]:
    """Module-level worker for the sweep pool (must be picklable)."""
    key, fleet = cell
    return key, _cell_metrics(run_fleet(fleet))


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import _get_pool
    from repro.workload.cache import CACHE_DIR_ENV, default_cache

    cells = _figure_cells(args)
    results: Dict[Tuple[str, str], Dict[str, object]] = {}
    if args.workers and args.workers > 1:
        # Fleet cells ride the same persistent pool the single-server
        # sweeps use; each cell runs its shards serially in the worker.
        default_cache().warm(fleet.base for _, fleet in cells)
        pool = _get_pool(
            min(args.workers, len(cells)), os.environ.get(CACHE_DIR_ENV, "")
        )
        for key, metrics in pool.imap_unordered(_run_figure_cell, cells):
            results[key] = metrics
    else:
        for cell in cells:
            key, metrics = _run_figure_cell(cell)
            results[key] = metrics
    # Deterministic assembly: grid order, not completion order.
    results = {key: results[key] for key, _ in cells}

    rows = []
    for (trace, label), metrics in results.items():
        rows.append(
            [
                trace,
                label,
                f"{metrics['usm']:+.4f}",
                f"{metrics['dmf']:.4f}",
                f"{metrics['dsf']:.4f}",
                f"{metrics['rejected']:.4f}",
            ]
        )
    print(
        ascii_table(
            ["trace", "fleet", "USM", "DMF", "DSF", "reject"],
            rows,
            title="Fleet read-routing: freshness (DSF) vs latency (DMF)",
        )
    )
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "cells": {f"{trace}|{label}": m for (trace, label), m in results.items()},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {path}")
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--policy", default="unit")
    parser.add_argument("--replica-lag", dest="replica_lag", type=float, default=5.0)
    parser.add_argument("--sync-period", dest="sync_period", type=float, default=20.0)
    parser.add_argument("--out", default=None, help="write a JSON artifact here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one fleet run")
    _add_common(run_p)
    run_p.add_argument("--trace", default="med-unif")
    run_p.add_argument("--shards", type=int, default=2)
    run_p.add_argument("--replication", type=int, default=1)
    run_p.add_argument("--partition", default="block")
    run_p.add_argument("--router", default="primary", choices=ROUTER_POLICIES)
    run_p.add_argument(
        "--processes", action="store_true", help="one OS process per shard"
    )
    run_p.set_defaults(func=_cmd_run)

    smoke_p = sub.add_parser("smoke", help="CI smoke: equivalence + determinism")
    _add_common(smoke_p)
    smoke_p.add_argument(
        "--processes", action="store_true", help="also check process-parallel shards"
    )
    smoke_p.set_defaults(func=_cmd_smoke)

    figure_p = sub.add_parser("figure", help="1-vs-4-shard routing sweep")
    _add_common(figure_p)
    figure_p.add_argument("--workers", type=int, default=0)
    figure_p.set_defaults(func=_cmd_figure)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
