"""One shard = one complete single-server substrate.

A :class:`ShardSpec` is the picklable, self-contained description of a
shard's run: its (remapped) query and update traces, its config, and
its fault scenario.  A :class:`ShardRun` executes a spec exactly the
way :func:`repro.experiments.runner.run_experiment` executes a config —
same stream derivation, same eager txn-id allocation, same arrival
feeder, same drain and finalize — but sliced into epochs via
``Simulator.run(until=...)`` so a fleet controller can intervene at
epoch boundaries.  A 1-shard spec built from an unmodified config
reproduces the single-server run byte for byte.

Item ids are remapped: a shard hosts a subset of the global item space,
and :class:`~repro.db.items.ItemTable` requires dense ids ``0..m-1``,
so each shard carries its sorted global id list (``global_items``) and
every trace it receives is rewritten into local coordinates.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.admission import FLEX_MAX, FLEX_MIN
from repro.core.unit import UnitPolicy
from repro.core.usm import UsmAccumulator
from repro.db.server import Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    SimulationReport,
    _build_recorder,
    _drain_window,
    _export_artifacts,
    _feed_arrivals,
    item_table_from_trace,
    make_policy,
)
from repro.faults.driver import FaultDriver
from repro.faults.metrics import degradation_metrics
from repro.obs.spans import SpanBuildResult, build_spans
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, derive_seed
from repro.workload.queries import QuerySpec, QueryTrace
from repro.workload.updates import ItemUpdateSpec, UpdateTrace

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.faults.scenario import FaultScenario
    from repro.fleet.controller import Directive
    from repro.fleet.partition import Partition
    from repro.fleet.router import RoutingPlan


@dataclasses.dataclass
class ShardSpec:
    """Everything one shard process needs (picklable)."""

    shard_id: int
    n_shards: int
    config: ExperimentConfig
    global_items: Tuple[int, ...]
    query_trace: QueryTrace
    update_trace: UpdateTrace


class ShardRun:
    """A live shard substrate, steppable in epoch slices."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        config = spec.config
        self._streams = RandomStreams(config.seed)
        self._recorder = _build_recorder(config.obs)
        self.sim = Simulator()
        self.items = item_table_from_trace(spec.update_trace)
        self.policy = make_policy(config, self._streams, recorder=self._recorder)
        self.server = Server(
            self.sim,
            self.items,
            self.policy,
            ServerConfig(freshness_metric=config.build_freshness_metric()),
            recorder=self._recorder,
        )
        # Eager txn-id allocation in trace order: ids are EDF
        # tie-breakers, so allocation order is part of the determinism
        # contract (mirrors run_experiment exactly).
        query_txns = [
            QueryTransaction(
                txn_id=self.server.next_txn_id(),
                arrival=q.arrival,
                exec_time=q.exec_time,
                items=q.items,
                relative_deadline=q.relative_deadline,
                freshness_req=q.freshness_req,
            )
            for q in spec.query_trace.queries
        ]
        _feed_arrivals(
            self.sim, self.server, query_txns, list(spec.update_trace.arrival_events())
        )
        if config.faults is not None and not config.faults.is_empty:
            FaultDriver(config.faults, self.server, self._recorder).install(self.sim)
        self._epoch_counts: Dict[Outcome, int] = {o: 0 for o in Outcome}

    # -- epoch stepping -------------------------------------------------

    def run_to(self, until: float) -> None:
        """Fire every event with time <= ``until`` (idempotent past it)."""
        if until > self.sim.now:
            self.sim.run(until=until)

    def epoch_summary(self) -> Dict[str, object]:
        """Outcome deltas since the previous summary, plus knob state."""
        counts = self.server.outcome_counts
        deltas = {
            o.value: counts[o] - self._epoch_counts[o] for o in Outcome
        }
        self._epoch_counts = dict(counts)
        c_flex: Optional[float] = None
        if isinstance(self.policy, UnitPolicy) and self.policy.admission is not None:
            c_flex = self.policy.admission.c_flex
        return {
            "shard": self.spec.shard_id,
            "time": self.sim.now,
            "deltas": deltas,
            "c_flex": c_flex,
        }

    def apply_directive(self, directive: "Directive") -> bool:
        """Apply a coordinator directive; returns True if anything changed.

        Only the UNIT policy exposes the knobs; baseline policies
        silently ignore directives (the coordinator still observes
        their shards, it just cannot steer them).
        """
        policy = self.policy
        if not isinstance(policy, UnitPolicy):
            return False
        changed = False
        if directive.flex_factor != 1.0 and policy.admission is not None:
            admission = policy.admission
            admission.c_flex = min(
                FLEX_MAX, max(FLEX_MIN, admission.c_flex * directive.flex_factor)
            )
            changed = True
        if directive.modulate == "degrade" and policy.modulator is not None:
            policy.modulator.degrade(1)
            changed = True
        elif directive.modulate == "upgrade" and policy.modulator is not None:
            policy.modulator.upgrade_all()
            changed = True
        return changed

    # -- finalize -------------------------------------------------------

    def drain_until(self) -> float:
        horizon = self.spec.config.scale.horizon
        return horizon + _drain_window(self.spec.query_trace, horizon)

    def finish(self, wall_seconds: float = 0.0) -> SimulationReport:
        """Drain the shard and package its report (mirrors the single-
        server finalize path field for field).

        The caller passes the elapsed wall time: holding a wall-clock
        value on this object would taint the whole substrate instance
        (SF002), whereas ``wall_seconds`` on a report constructor is
        the declared wall-metadata sink.
        """
        spec = self.spec
        config = spec.config
        self.run_to(self.drain_until())
        query_trace = spec.query_trace
        unresolved = len(query_trace.queries) - len(self.server.records)
        if unresolved:
            raise RuntimeError(
                f"shard {spec.shard_id}: {unresolved} of "
                f"{len(query_trace.queries)} queries never resolved; "
                "drain window too short?"
            )

        recorder = self._recorder
        obs_summary: Optional[Dict[str, object]] = None
        obs_metrics: Optional[Dict[str, object]] = None
        obs_events: Optional[List[Dict[str, object]]] = None
        obs_artifacts: Optional[Dict[str, str]] = None
        obs_spans: Optional[Dict[str, object]] = None
        if recorder is not None and config.obs is not None:
            obs_summary = recorder.summary()
            if recorder.metrics is not None:
                obs_metrics = recorder.metrics.registry.snapshot()  # type: ignore[attr-defined]
            if config.obs.keep_events:
                obs_events = recorder.event_dicts()
            span_result: Optional[SpanBuildResult] = None
            if config.obs.spans:
                from repro.obs.attrib import attrib_report

                span_result = build_spans(
                    recorder.events(),
                    dropped=recorder.dropped,
                    shard=spec.shard_id if spec.n_shards > 1 else None,
                )
                obs_spans = {"summary": span_result.summary()}
                obs_spans.update(attrib_report(span_result.spans, config.profile))
            obs_artifacts = _export_artifacts(
                recorder, config.obs, config, span_result=span_result
            )

        degradation: Optional[Dict[str, object]] = None
        if (
            config.faults is not None
            and not config.faults.is_empty
            and config.keep_records
        ):
            degradation = degradation_metrics(
                self.server.records, config.profile, config.faults, config.scale.horizon
            )

        accumulator = UsmAccumulator.from_counts(
            config.profile, self.server.outcome_counts
        )
        totals = self.items.totals()
        return SimulationReport(
            config=config,
            policy_name=self.policy.describe(),
            outcome_counts=dict(self.server.outcome_counts),
            queries_submitted=self.server.queries_submitted,
            usm=accumulator.average_usm(),
            total_usm=accumulator.total_usm(),
            ratios=accumulator.ratios(),
            components=accumulator.components(),
            update_arrivals=totals["arrivals"],
            updates_executed=totals["executed"],
            updates_dropped=totals["dropped"],
            query_access_counts=query_trace.access_counts(),
            update_counts_original=spec.update_trace.per_item_counts(),
            update_counts_executed=[item.updates_executed for item in self.items],
            busy_by_class=self.server.busy_time_by_class(),
            wall_seconds=wall_seconds,
            events_fired=self.sim.events_fired,
            records=list(self.server.records) if config.keep_records else None,
            degradation=degradation,
            obs_summary=obs_summary,
            obs_metrics=obs_metrics,
            obs_events=obs_events,
            obs_artifacts=obs_artifacts,
            obs_spans=obs_spans,
        )


def build_shard_specs(
    base: ExperimentConfig,
    partition: "Partition",
    plan: "RoutingPlan",
    query_trace: QueryTrace,
    update_trace: UpdateTrace,
    replica_lag: float = 5.0,
    shard_faults: Optional[Dict[int, "FaultScenario"]] = None,
) -> List[ShardSpec]:
    """Split the global workload into one self-contained spec per shard.

    The 1-shard case is the identity: the spec carries the base config,
    the base seed, and the untouched traces, so its run is
    byte-identical to the single-server runner.  With N > 1 each shard
    gets a derived seed (disjoint policy streams per shard), a scale
    whose ``n_items`` matches its hosted subset, and traces rewritten
    into local item coordinates; replica items receive a copy of the
    primary's update stream delayed by ``replica_lag`` (replication is
    real CPU work, not bookkeeping).
    """
    n_shards = partition.n_shards
    if n_shards == 1:
        return [
            ShardSpec(
                shard_id=0,
                n_shards=1,
                config=base,
                global_items=tuple(range(partition.n_items)),
                query_trace=query_trace,
                update_trace=update_trace,
            )
        ]

    specs: List[ShardSpec] = []
    update_by_id = {item.item_id: item for item in update_trace.items}
    for shard in range(n_shards):
        extra = plan.extra_hosts.get(shard, [])
        hosted = sorted(set(partition.hosted_items(shard)).union(extra))
        local_of = {g: local for local, g in enumerate(hosted)}

        shard_updates: List[ItemUpdateSpec] = []
        for g in hosted:
            item = update_by_id[g]
            if partition.primary[g] == shard:
                shard_updates.append(dataclasses.replace(item, item_id=local_of[g]))
            else:
                # Replica stream: same counts and period, lag-delayed.
                shard_updates.append(
                    dataclasses.replace(
                        item, item_id=local_of[g], phase=item.phase + replica_lag
                    )
                )
        shard_update_trace = UpdateTrace(
            name=update_trace.name,
            horizon=update_trace.horizon,
            items=shard_updates,
            target_utilization=update_trace.target_utilization,
        )

        shard_queries: List[QuerySpec] = [
            dataclasses.replace(
                query, items=tuple(local_of[item] for item in query.items)
            )
            for query, assigned in zip(query_trace.queries, plan.assignments)
            if assigned == shard
        ]
        shard_query_trace = QueryTrace(
            name=query_trace.name,
            horizon=query_trace.horizon,
            n_items=len(hosted),
            queries=shard_queries,
        )

        faults = base.faults
        if shard_faults is not None and shard in shard_faults:
            faults = shard_faults[shard]  # type: ignore[assignment]
        config = dataclasses.replace(
            base,
            seed=derive_seed(base.seed, f"fleet-shard-{shard}"),
            scale=dataclasses.replace(base.scale, n_items=len(hosted)),
            faults=faults,
        )
        specs.append(
            ShardSpec(
                shard_id=shard,
                n_shards=n_shards,
                config=config,
                global_items=tuple(hosted),
                query_trace=shard_query_trace,
                update_trace=shard_update_trace,
            )
        )
    return specs
