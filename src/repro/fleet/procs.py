"""Run shard substrates as separate OS processes.

One long-lived worker process per shard, driven over a
:class:`multiprocessing.Pipe` in lockstep epochs:

    init(spec) -> [apply(directive)? -> run_to(t) -> summary]* -> finish

A shard's trajectory is a pure function of its spec and the directive
sequence it receives, and the coordinator computes directives from the
summaries alone — so the process-parallel fleet is byte-identical to
the serial in-process loop (the equivalence the fleet test suite locks
in).  Workers complement the sweep pool in
:mod:`repro.experiments.sweep`: the pool parallelizes *independent*
fleet cells across a sweep grid, while these processes parallelize the
*coupled* shards inside one fleet run (a stateful epoch protocol the
pool's fire-and-forget tasks cannot express).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import SimulationReport
from repro.fleet.controller import Directive
from repro.fleet.substrate import ShardRun, ShardSpec

_CMD_RUN_TO = "run_to"
_CMD_FINISH = "finish"
_CMD_STOP = "stop"


def _shard_worker(
    conn: "multiprocessing.connection.Connection", spec: ShardSpec
) -> None:
    """Worker loop: build the substrate, then serve epoch commands."""
    try:
        started = time.perf_counter()
        run = ShardRun(spec)
        while True:
            message = conn.recv()
            command = message[0]
            if command == _CMD_RUN_TO:
                _, until, directive = message
                if directive is not None:
                    run.apply_directive(directive)
                run.run_to(until)
                conn.send(("ok", run.epoch_summary()))
            elif command == _CMD_FINISH:
                conn.send(("ok", run.finish(time.perf_counter() - started)))
                break
            elif command == _CMD_STOP:
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown command {command!r}"))
                break
    except Exception as exc:  # pragma: no cover - surfaced to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class ShardProcessPool:
    """One process per shard, stepped in lockstep epochs."""

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        # fork keeps the parent's warm module state (same reasoning as
        # the sweep pool); fall back to the platform default elsewhere.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self._conns: List["multiprocessing.connection.Connection"] = []
        self._procs: List[multiprocessing.process.BaseProcess] = []
        for spec in specs:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, spec),
                name=f"fleet-shard-{spec.shard_id}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def _recv(self, index: int) -> object:
        status, payload = self._conns[index].recv()
        if status != "ok":
            raise RuntimeError(f"shard process {index} failed: {payload}")
        return payload

    def run_epoch(
        self, until: float, directives: Optional[Sequence[Optional[Directive]]] = None
    ) -> List[Dict[str, object]]:
        """Advance every shard to ``until``; returns epoch summaries.

        All shards run concurrently (commands are sent before any reply
        is awaited); replies are collected in shard order so the caller
        sees a deterministic sequence.
        """
        for index, conn in enumerate(self._conns):
            directive = directives[index] if directives is not None else None
            conn.send((_CMD_RUN_TO, until, directive))
        return [self._recv(index) for index in range(len(self._conns))]  # type: ignore[misc]

    def finish(self) -> List[SimulationReport]:
        """Drain every shard and collect the reports (shard order)."""
        for conn in self._conns:
            conn.send((_CMD_FINISH,))
        reports = [self._recv(index) for index in range(len(self._conns))]
        self.close()
        return reports  # type: ignore[return-value]

    def close(self) -> None:
        """Terminate workers and reap the processes (idempotent)."""
        for conn in self._conns:
            try:
                conn.send((_CMD_STOP,))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        self._conns = []
        self._procs = []
