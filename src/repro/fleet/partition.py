"""Deterministic item partitioning with optional K-way replication.

Every item has exactly one *primary* shard (writes always land there)
and, with ``replication = K > 1``, ``K - 1`` replica shards — the next
shards clockwise from the primary — that host lag-delayed copies of the
item's update stream.  All three strategies are pure functions of
``(n_items, n_shards)``: no RNG, no ambient state, so a partition is
reproducible from its parameters alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Tuple

#: Supported placement strategies.
STRATEGIES: Tuple[str, ...] = ("block", "mod", "hash")


@dataclasses.dataclass(frozen=True)
class Partition:
    """An item → shard placement map.

    Attributes:
        n_items: Database size S (global item ids are ``0..S-1``).
        n_shards: Fleet width N (shard ids are ``0..N-1``).
        replication: Host-set size K per item (1 = no replication).
        strategy: One of :data:`STRATEGIES`.
        primary: ``primary[g]`` is the primary shard of global item g.
        hosts: ``hosts[g]`` is g's full host set, primary first, then
            the ``K - 1`` clockwise-successor replica shards.
    """

    n_items: int
    n_shards: int
    replication: int
    strategy: str
    primary: Tuple[int, ...]
    hosts: Tuple[Tuple[int, ...], ...]

    def shard_items(self, shard: int) -> List[int]:
        """Global ids whose primary is ``shard`` (ascending)."""
        return [g for g, p in enumerate(self.primary) if p == shard]

    def hosted_items(self, shard: int) -> List[int]:
        """Global ids hosted on ``shard`` — primary or replica (ascending)."""
        return [g for g, hs in enumerate(self.hosts) if shard in hs]

    def replica_shards(self, item: int) -> Tuple[int, ...]:
        """The non-primary hosts of ``item``."""
        return self.hosts[item][1:]


def _primary_of(item: int, n_items: int, n_shards: int, strategy: str) -> int:
    if strategy == "mod":
        return item % n_shards
    if strategy == "block":
        # Contiguous blocks, the first (n_items % n_shards) blocks one
        # item longer — the exact inverse of dealing items round-robin
        # into sorted per-shard lists.
        base = n_items // n_shards
        extra = n_items % n_shards
        boundary = (base + 1) * extra
        if item < boundary:
            return item // (base + 1)
        return extra + (item - boundary) // base
    if strategy == "hash":
        # SHA-256 keyed placement: stable across runs and platforms
        # (never the builtin ``hash``, which is salted per process).
        digest = hashlib.sha256(f"item-{item}".encode("ascii")).digest()
        return int.from_bytes(digest[:8], "big") % n_shards
    raise ValueError(f"unknown partition strategy {strategy!r}; one of {STRATEGIES}")


def build_partition(
    n_items: int,
    n_shards: int,
    replication: int = 1,
    strategy: str = "block",
) -> Partition:
    """Place ``n_items`` items on ``n_shards`` shards.

    Args:
        n_items: Database size S.
        n_shards: Fleet width; must satisfy ``1 <= n_shards <= n_items``
            (an empty shard would have no item table to build).
        replication: Host-set size per item, clamped implicitly by the
            fleet width (``K`` effective hosts = ``min(K, n_shards)``).
        strategy: ``"block"`` (contiguous ranges — preserves any
            spatial locality of the access histogram), ``"mod"``
            (round-robin striping), or ``"hash"`` (keyed spreading).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_items < n_shards:
        raise ValueError(
            f"n_shards ({n_shards}) cannot exceed n_items ({n_items}): "
            "every shard must host at least one primary item"
        )
    if replication < 1:
        raise ValueError("replication must be >= 1")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown partition strategy {strategy!r}; one of {STRATEGIES}")

    k = min(replication, n_shards)
    primary: List[int] = []
    hosts: List[Tuple[int, ...]] = []
    for item in range(n_items):
        p = _primary_of(item, n_items, n_shards, strategy)
        primary.append(p)
        hosts.append(tuple((p + offset) % n_shards for offset in range(k)))

    # The hash strategy can starve a shard of primaries at small S;
    # repair deterministically by reassigning surplus items from the
    # most-loaded shards (highest item id first) to the empty ones.
    counts: Dict[int, int] = {shard: 0 for shard in range(n_shards)}
    for p in primary:
        counts[p] += 1
    empty = sorted(shard for shard, c in counts.items() if c == 0)
    for shard in empty:
        donor = max(sorted(counts), key=lambda s: counts[s])
        moved = max(g for g, p in enumerate(primary) if p == donor)
        primary[moved] = shard
        hosts[moved] = tuple((shard + offset) % n_shards for offset in range(k))
        counts[donor] -= 1
        counts[shard] += 1

    return Partition(
        n_items=n_items,
        n_shards=n_shards,
        replication=replication,
        strategy=strategy,
        primary=tuple(primary),
        hosts=tuple(hosts),
    )
