"""The global coordinator: per-shard LBCs feed a fleet-level controller.

Each shard already runs its own local load-balancing controller (the
UNIT LBC inside its policy).  The global coordinator sits above them:
at every control window it reads per-shard *epoch summaries* (outcome
deltas since the last window plus the shard's current ``C_flex``) and
plans one :class:`Directive` per shard, reallocating admission slack
and update-modulation pressure from the shards doing well toward the
shards falling behind.

The plan is relative-to-the-mean: a shard missing more deadlines than
the fleet average gets its ``C_flex`` raised (admit less) and, past a
threshold, a Degrade-Update nudge; a shard rejecting more than average
gets slack back.  On a 1-shard fleet every difference from the mean is
exactly ``0.0``, the factor is exactly ``1.0``, and no directive does
anything — which is what keeps the 1-shard fleet byte-identical to the
single-server runner.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.trace import Recorder


@dataclasses.dataclass(frozen=True)
class EpochSummary:
    """One shard's deltas over the last control window (picklable)."""

    shard_id: int
    time: float
    deltas: Dict[str, int]  # outcome value -> count this epoch
    c_flex: Optional[float]  # None for non-UNIT policies

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "EpochSummary":
        return cls(
            shard_id=int(raw["shard"]),  # type: ignore[arg-type]
            time=float(raw["time"]),  # type: ignore[arg-type]
            deltas=dict(raw["deltas"]),  # type: ignore[arg-type]
            c_flex=raw.get("c_flex"),  # type: ignore[arg-type]
        )

    @property
    def total(self) -> int:
        return sum(self.deltas.values())

    @property
    def miss_ratio(self) -> float:
        """(DMF + DSF) / resolved this epoch; 0.0 on an idle epoch."""
        total = self.total
        if total == 0:
            return 0.0
        return (self.deltas.get("dmf", 0) + self.deltas.get("dsf", 0)) / total

    @property
    def reject_ratio(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.deltas.get("rejected", 0) / total


@dataclasses.dataclass(frozen=True)
class Directive:
    """The coordinator's instruction to one shard for the next epoch.

    ``flex_factor`` multiplies the shard's ``C_flex`` (values above 1
    tighten admission; exactly 1.0 is a no-op).  ``modulate`` asks the
    shard's modulator for one Degrade-Update round (``"degrade"``), a
    full Upgrade-Update pass (``"upgrade"``), or nothing (``None``).
    """

    shard_id: int
    flex_factor: float = 1.0
    modulate: Optional[str] = None

    @property
    def is_noop(self) -> bool:
        return self.flex_factor == 1.0 and self.modulate is None


class GlobalCoordinator:
    """Plans per-shard directives from fleet-wide epoch summaries."""

    def __init__(
        self,
        eta: float = 0.25,
        flex_lo: float = 0.5,
        flex_hi: float = 2.0,
        modulate_threshold: float = 0.15,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if eta < 0:
            raise ValueError("eta must be non-negative")
        if not 0 < flex_lo <= 1.0 <= flex_hi:
            raise ValueError("flex bounds must bracket 1.0")
        self.eta = eta
        self.flex_lo = flex_lo
        self.flex_hi = flex_hi
        self.modulate_threshold = modulate_threshold
        self.recorder = recorder
        self.plans = 0

    def plan(self, summaries: Sequence[EpochSummary]) -> List[Directive]:
        """One directive per summary, in shard order.

        Pure arithmetic over the summaries — no RNG, no clock — so the
        plan is a deterministic function of the epoch.  Differences
        from the fleet mean drive the factor; with one shard the
        differences are exactly zero and every directive is a no-op.
        """
        if not summaries:
            return []
        self.plans += 1
        n = len(summaries)
        mean_miss = sum(s.miss_ratio for s in summaries) / n
        mean_reject = sum(s.reject_ratio for s in summaries) / n

        directives: List[Directive] = []
        for summary in sorted(summaries, key=lambda s: s.shard_id):
            miss_excess = summary.miss_ratio - mean_miss
            reject_excess = summary.reject_ratio - mean_reject
            # With one shard both excesses are exactly 0.0, the factor
            # is exactly 1.0, and the clamp (bracketing 1.0) keeps it.
            factor = 1.0 + self.eta * miss_excess - self.eta * reject_excess
            factor = min(self.flex_hi, max(self.flex_lo, factor))
            modulate: Optional[str] = None
            if miss_excess > self.modulate_threshold:
                modulate = "degrade"
            elif miss_excess < -self.modulate_threshold and summary.deltas.get(
                "rejected", 0
            ) == 0:
                modulate = "upgrade"
            directive = Directive(
                shard_id=summary.shard_id, flex_factor=factor, modulate=modulate
            )
            directives.append(directive)
            if (
                self.recorder is not None
                and self.recorder.enabled
                and not directive.is_noop
            ):
                before = summary.c_flex if summary.c_flex is not None else 0.0
                self.recorder.fleet_rebalance(
                    summary.time,
                    summary.shard_id,
                    factor,
                    before,
                    before * factor,
                    modulate,
                )
        return directives
