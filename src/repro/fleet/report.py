"""Merge per-shard reports into one fleet report.

The merge is *exact*: outcome counts are integers, so the fleet USM is
recomputed from the summed counts through the same
:class:`~repro.core.usm.UsmAccumulator` the single-server path uses
(integer tallies, one correctly-rounded division at the end); float
totals (CPU busy time) are summed in the integer fixed-point mirror
(:mod:`repro.core.fixedpoint`) so the merged value is the correctly
rounded true sum regardless of shard order.  Per-item arrays are
mapped from each shard's local ids back to global ids; replicated
items accumulate executed-update counts from every hosting shard
(replication is real CPU work and is reported as such).

For a 1-shard fleet the merged report is field-for-field the shard's
own report, so ``stable_report_digest`` of the merge equals the
single-server digest — the equivalence gate in the fleet test suite.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.fixedpoint import fixed_from_float, float_from_fixed
from repro.core.usm import UsmAccumulator
from repro.db.transactions import Outcome
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import stable_report_digest
from repro.experiments.runner import SimulationReport
from repro.fleet.substrate import ShardSpec


def _sum_exact(values: Sequence[float]) -> float:
    """Correctly-rounded sum via the fixed-point mirror."""
    return float_from_fixed(sum(fixed_from_float(v) for v in values))


def merge_reports(
    base: ExperimentConfig,
    specs: Sequence[ShardSpec],
    reports: Sequence[SimulationReport],
) -> SimulationReport:
    """Fold per-shard reports into one fleet-level report.

    The merged report reuses :class:`SimulationReport` so every
    existing renderer (tables, dashboards, digests) works on fleets
    unchanged.  ``config`` is the *base* config: the fleet presents as
    one logical server over the global item space.
    """
    if not reports:
        raise ValueError("cannot merge zero reports")
    n_items = base.scale.n_items

    counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
    for report in reports:
        for outcome, n in report.outcome_counts.items():
            counts[outcome] += n

    access = [0] * n_items
    original = [0] * n_items
    executed = [0] * n_items
    for spec, report in zip(specs, reports):
        for local, g in enumerate(spec.global_items):
            access[g] += report.query_access_counts[local]
            original[g] += report.update_counts_original[local]
            executed[g] += report.update_counts_executed[local]

    busy: Dict[str, float] = {}
    for key in reports[0].busy_by_class:
        busy[key] = _sum_exact([r.busy_by_class[key] for r in reports])

    accumulator = UsmAccumulator.from_counts(base.profile, counts)
    records = None
    if all(r.records is not None for r in reports):
        records = [record for r in reports for record in r.records or []]

    return SimulationReport(
        config=base,
        policy_name=reports[0].policy_name,
        outcome_counts=counts,
        queries_submitted=sum(r.queries_submitted for r in reports),
        usm=accumulator.average_usm(),
        total_usm=accumulator.total_usm(),
        ratios=accumulator.ratios(),
        components=accumulator.components(),
        update_arrivals=sum(r.update_arrivals for r in reports),
        updates_executed=sum(r.updates_executed for r in reports),
        updates_dropped=sum(r.updates_dropped for r in reports),
        query_access_counts=access,
        update_counts_original=original,
        update_counts_executed=executed,
        busy_by_class=busy,
        wall_seconds=max(r.wall_seconds for r in reports),
        events_fired=sum(r.events_fired for r in reports),
        records=records,
    )


@dataclasses.dataclass
class FleetReport:
    """One fleet run: the merged view plus per-shard detail."""

    n_shards: int
    replication: int
    partition_strategy: str
    router_policy: str
    merged: SimulationReport
    shard_reports: List[SimulationReport]
    routing: Dict[str, object]
    rebalances: List[Dict[str, object]]
    epochs: int
    obs_summary: Optional[Dict[str, object]] = None

    @property
    def digest(self) -> str:
        """Fleet digest = digest of the merged report (the quantity the
        1-shard equivalence and repeat-determinism gates compare)."""
        return stable_report_digest(self.merged)

    def shard_digests(self) -> List[str]:
        return [stable_report_digest(report) for report in self.shard_reports]

    def summary(self) -> str:
        lines = [
            f"fleet: {self.n_shards} shard(s), replication={self.replication}, "
            f"partition={self.partition_strategy}, router={self.router_policy}, "
            f"epochs={self.epochs}, rebalances={len(self.rebalances)}",
            self.merged.summary(),
        ]
        for report in self.shard_reports:
            ratios = report.ratios
            lines.append(
                f"  shard queries={report.queries_submitted} "
                f"usm={report.usm:+.4f} "
                f"dmf={ratios[Outcome.DEADLINE_MISS]:.3f} "
                f"dsf={ratios[Outcome.DATA_STALE]:.3f}"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe payload for artifacts (reporting only — the
        byte-identity contract lives in the merged report's digest)."""
        merged = self.merged
        return {
            "n_shards": self.n_shards,
            "replication": self.replication,
            "partition_strategy": self.partition_strategy,
            "router_policy": self.router_policy,
            "epochs": self.epochs,
            "digest": self.digest,
            "shard_digests": self.shard_digests(),
            "routing": self.routing,
            "rebalances": self.rebalances,
            "merged": {
                "policy": merged.policy_name,
                "queries": merged.queries_submitted,
                "usm": merged.usm,
                "total_usm": merged.total_usm,
                "ratios": {o.value: r for o, r in merged.ratios.items()},
                "updates_executed": merged.updates_executed,
                "updates_dropped": merged.updates_dropped,
                "busy": dict(merged.busy_by_class),
                "events_fired": merged.events_fired,
            },
            "shards": [
                {
                    "queries": report.queries_submitted,
                    "usm": report.usm,
                    "ratios": {o.value: r for o, r in report.ratios.items()},
                    "updates_executed": report.updates_executed,
                    "busy": dict(report.busy_by_class),
                }
                for report in self.shard_reports
            ],
        }
