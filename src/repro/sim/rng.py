"""Deterministic named random streams.

All stochastic components draw from named substreams derived from a
single master seed, so that (a) a whole experiment is reproducible from
one integer, and (b) changing how one component consumes randomness
does not perturb the draws seen by any other component.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit substream seed from ``(master_seed, name)``.

    Uses SHA-256 so distinct names give statistically independent
    streams regardless of how similar the names are.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independently-seeded :class:`random.Random` streams.

    Example::

        streams = RandomStreams(seed=42)
        arrivals = streams.stream("query-arrivals")
        service = streams.stream("query-service")
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a component can hold or re-fetch its stream freely.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self._seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory, for nesting component namespaces."""
        return RandomStreams(derive_seed(self._seed, f"fork:{name}"))
