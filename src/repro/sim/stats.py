"""Small statistics helpers shared by the simulator and the policies.

Everything here is incremental/online so that simulations never retain
per-event history unless the caller explicitly asks for a
:class:`TimeSeries`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple


class OnlineStats:
    """Streaming count/mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Running mean; 0.0 when empty."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance; 0.0 with fewer than two observations."""
        if self._count < 2:
            return 0.0
        return self._m2 / self._count

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation; +inf when empty."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation; -inf when empty."""
        return self._max

    def as_dict(self) -> Dict[str, Optional[float]]:
        """JSON-safe summary: min/max are None (→ ``null``) when empty,
        never the ±inf sentinels the properties expose."""
        empty = not self._count
        return {
            "count": float(self._count),
            "mean": self.mean,
            "stdev": self.stdev,
            "min": None if empty else self._min,
            "max": None if empty else self._max,
        }


class TimeWeightedMean:
    """Mean of a piecewise-constant signal, weighted by holding time.

    Used, e.g., for average ready-queue length: call :meth:`update`
    whenever the signal changes and :meth:`value_at` to read the mean.
    """

    __slots__ = ("_last_time", "_last_value", "_area", "_start")

    def __init__(self, start_time: float = 0.0, initial_value: float = 0.0) -> None:
        self._start = start_time
        self._last_time = start_time
        self._last_value = initial_value
        self._area = 0.0

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._last_value * (time - self._last_time)
        self._last_time = time
        self._last_value = value

    def value_at(self, time: float) -> float:
        """Time-weighted mean over ``[start, time]``; 0.0 on an empty span."""
        if time < self._last_time:
            raise ValueError("time went backwards")
        span = time - self._start
        if span <= 0:
            return self._last_value
        area = self._area + self._last_value * (time - self._last_time)
        return area / span

    @property
    def current(self) -> float:
        """Most recently recorded signal value."""
        return self._last_value


class TimeSeries:
    """An explicit ``(time, value)`` record, for figures and debugging."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError("time went backwards")
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Tuple[float, ...]:
        return tuple(self._times)

    @property
    def values(self) -> Tuple[float, ...]:
        return tuple(self._values)

    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent point, or None when empty."""
        if not self._times:
            return None
        return self._times[-1], self._values[-1]

    def mean(self) -> float:
        """Unweighted mean of recorded values; 0.0 when empty."""
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)


class WindowedCounts:
    """Sliding-window event counters keyed by label.

    The feedback controllers (UNIT's LBC and QMF) react to *recent*
    outcome ratios; this class keeps per-label timestamps and evicts
    entries older than ``window`` on every query.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._events: Deque[Tuple[float, str]] = deque()

    def record(self, time: float, label: str) -> None:
        """Record one event with the given label at ``time``."""
        self._events.append((time, label))

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()

    def counts(self, now: float) -> Dict[str, int]:
        """Per-label counts within ``[now - window, now]``."""
        self._evict(now)
        result: Dict[str, int] = {}
        for _, label in self._events:
            result[label] = result.get(label, 0) + 1
        return result

    def total(self, now: float) -> int:
        """Total events within the window."""
        self._evict(now)
        return len(self._events)

    def ratios(self, now: float) -> Dict[str, float]:
        """Per-label fractions within the window; empty dict if no events."""
        counts = self.counts(now)
        total = sum(counts.values())
        if not total:
            return {}
        return {label: count / total for label, count in counts.items()}
