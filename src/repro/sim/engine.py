"""The discrete-event simulation loop.

:class:`Simulator` owns the virtual clock and a binary-heap event
queue.  Callers schedule callbacks at absolute times or after delays
and receive a :class:`Timer` handle that can cancel the pending event —
the engine uses lazy deletion, so cancellation is O(1).

The heap stores ``(time, priority, seq, event)`` tuples so that sift
operations compare native tuples in C instead of calling
``Event.__lt__``; ``seq`` is unique per event, so the ordering is the
same total order and the :class:`Event` payload is never compared.

The engine is deliberately minimal: it has no notion of processes or
resources.  The preemptive CPU model lives in
:mod:`repro.db.server`, built from plain events and timers.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import Event

_HeapEntry = Tuple[float, int, int, Event]


class SimulationError(RuntimeError):
    """Raised on invalid use of the engine (e.g. scheduling in the past)."""


class Timer:
    """Handle to a scheduled event; supports cancellation and queries."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        event = self._event
        return not (event.cancelled or event.fired)

    def cancel(self) -> None:
        """Cancel the pending event.  Idempotent; a no-op once fired."""
        event = self._event
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._sim._on_cancel()


class Simulator:
    """A single-threaded discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._fired = 0
        self._live = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live events still awaiting their firing time
        (cancelled events are excluded the moment they are cancelled)."""
        return self._live

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def heap_size(self) -> int:
        """Raw heap entry count, cancelled entries included.

        Unlike :attr:`pending` this counts lazily-deleted events still
        occupying heap slots — the quantity that drives push/pop cost,
        which is what observability-of-the-engine cares about.
        """
        return len(self._heap)

    def _on_cancel(self) -> None:
        """Bookkeeping hook for :meth:`Timer.cancel` (lazy deletion)."""
        self._live -= 1

    def schedule(
        self,
        at: float,
        callback: Callable[[], Any],
        priority: int = 0,
    ) -> Timer:
        """Schedule ``callback`` at absolute time ``at``.

        Args:
            at: Absolute simulated time; must not precede the clock.
            callback: Zero-argument callable.
            priority: Tie-break rank for same-instant events (lower first).

        Returns:
            A cancellable :class:`Timer` handle.

        Raises:
            SimulationError: If ``at`` is in the simulated past.
        """
        if at < self._now:
            raise SimulationError(
                f"cannot schedule event at t={at:.6f} before now={self._now:.6f}"
            )
        seq = self._seq + 1
        self._seq = seq
        event = Event(at, priority, seq, callback)
        heapq.heappush(self._heap, (at, priority, seq, event))
        self._live += 1
        return Timer(event, self)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
    ) -> Timer:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, priority=priority)

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or None if the queue is drained."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        time, _, _, event = heapq.heappop(self._heap)
        self._now = time
        self._fired += 1
        self._live -= 1
        event.fired = True
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the loop until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        Events scheduled exactly at ``until`` still fire; the clock is
        then advanced to ``until`` so post-run bookkeeping sees the full
        horizon.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                if max_events is not None and fired >= max_events:
                    break
                head = heap[0]
                event = head[3]
                if event.cancelled:
                    pop(heap)
                    continue
                time = head[0]
                if until is not None and time > until:
                    break
                pop(heap)
                self._now = time
                self._fired += 1
                fired += 1
                self._live -= 1
                event.fired = True
                event.callback()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
