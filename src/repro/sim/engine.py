"""The discrete-event simulation loop.

:class:`Simulator` owns the virtual clock and a binary-heap event
queue.  Callers schedule callbacks at absolute times or after delays
and receive a :class:`Timer` handle that can cancel the pending event —
the engine uses lazy deletion, so cancellation is O(1).

The engine is deliberately minimal: it has no notion of processes or
resources.  The preemptive CPU model lives in
:mod:`repro.db.server`, built from plain events and timers.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised on invalid use of the engine (e.g. scheduling in the past)."""


class Timer:
    """Handle to a scheduled event; supports cancellation and queries."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the pending event.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """A single-threaded discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._fired = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    def schedule(
        self,
        at: float,
        callback: Callable[[], Any],
        priority: int = 0,
    ) -> Timer:
        """Schedule ``callback`` at absolute time ``at``.

        Args:
            at: Absolute simulated time; must not precede the clock.
            callback: Zero-argument callable.
            priority: Tie-break rank for same-instant events (lower first).

        Returns:
            A cancellable :class:`Timer` handle.

        Raises:
            SimulationError: If ``at`` is in the simulated past.
        """
        if at < self._now:
            raise SimulationError(
                f"cannot schedule event at t={at:.6f} before now={self._now:.6f}"
            )
        self._seq += 1
        event = Event(time=at, priority=priority, seq=self._seq, callback=callback)
        heapq.heappush(self._heap, event)
        return Timer(event)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
    ) -> Timer:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, priority=priority)

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or None if the queue is drained."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._fired += 1
        event.fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the loop until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        Events scheduled exactly at ``until`` still fire; the clock is
        then advanced to ``until`` so post-run bookkeeping sees the full
        horizon.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                self._drop_cancelled()
                if not self._heap:
                    break
                if until is not None and self._heap[0].time > until:
                    break
                event = heapq.heappop(self._heap)
                self._now = event.time
                self._fired += 1
                fired += 1
                event.fire()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
