"""The discrete-event simulation loop.

:class:`Simulator` owns the virtual clock and a binary-heap event
queue.  Callers schedule callbacks at absolute times or after delays
and receive a :class:`Timer` handle that can cancel the pending event —
the engine uses lazy deletion, so cancellation is O(1).

Storage is a *slotted event arena*: the heap holds ``(time, priority,
seq, slot)`` tuples (compared natively in C; ``seq`` is unique, so the
``slot`` payload is never compared) while the callback, its optional
argument, and the pending/cancelled flag live in parallel arrays
indexed by ``slot``.  Fired and cancelled slots return to a free list
and are reused, so steady-state event churn allocates nothing beyond
the heap tuple itself; a per-slot generation counter makes stale
handles (a :class:`Timer` or packed token for a slot that has since
been recycled) harmless.

Lazy deletion is bounded: when cancelled entries exceed half the heap
(and a small floor), the heap is rebuilt without them, so workloads
that cancel most of their timers — e.g. every admitted query cancels
its deadline timer on commit — cannot grow the heap without bound.

The engine is deliberately minimal: it has no notion of processes or
resources.  The preemptive CPU model lives in
:mod:`repro.db.server`, built from plain events and timers.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

_HeapEntry = Tuple[float, int, int, int]

#: Sentinel distinguishing "no argument" from "argument is None".
_NO_ARG: Any = object()

#: Token layout: ``(generation << _SLOT_BITS) | slot``.  Slot indices
#: are bounded by the peak number of concurrently pending events, so
#: 2**40 slots is unreachable in any physical run.
_SLOT_BITS = 40
_SLOT_MASK = (1 << _SLOT_BITS) - 1

#: Rebuild the heap when cancelled entries pass this floor *and* make
#: up more than half of it (amortized O(1) per cancellation).
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised on invalid use of the engine (e.g. scheduling in the past)."""


class Timer:
    """Handle to a scheduled event; supports cancellation and queries."""

    __slots__ = ("_sim", "_slot", "_gen", "time")

    def __init__(self, sim: "Simulator", slot: int, gen: int, time: float) -> None:
        self._sim = sim
        self._slot = slot
        self._gen = gen
        #: Scheduled firing time (stable even after the event resolves).
        self.time = time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        sim = self._sim
        slot = self._slot
        return sim._gen[slot] == self._gen and not sim._flag[slot]

    def cancel(self) -> None:
        """Cancel the pending event.  Idempotent; a no-op once fired."""
        self._sim._cancel(self._slot, self._gen)


class Simulator:
    """A single-threaded discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run()

    ``now`` is exposed as a plain attribute (reads are on every hot
    path); treat it as read-only — only the engine advances the clock.
    """

    def __init__(self) -> None:
        #: Current simulated time in seconds.  Read-only for callers.
        self.now = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._fired = 0
        self._live = 0
        self._cancelled = 0
        self._running = False
        # The arena: parallel per-slot storage.
        self._cb: List[Optional[Callable[..., Any]]] = []
        self._arg: List[Any] = []
        self._gen: List[int] = []
        self._flag = bytearray()  # 0 = pending, 1 = cancelled
        self._free: List[int] = []

    @property
    def pending(self) -> int:
        """Number of live events still awaiting their firing time
        (cancelled events are excluded the moment they are cancelled)."""
        return self._live

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def heap_size(self) -> int:
        """Raw heap entry count, cancelled entries included.

        Unlike :attr:`pending` this counts lazily-deleted events still
        occupying heap slots — the quantity that drives push/pop cost,
        which is what observability-of-the-engine cares about.  Bounded
        at roughly twice :attr:`pending` by the cancellation compactor.
        """
        return len(self._heap)

    # ------------------------------------------------------------------
    # slot management
    # ------------------------------------------------------------------

    def _alloc(self, callback: Callable[..., Any], arg: Any) -> int:
        free = self._free
        if free:
            slot = free.pop()
            self._cb[slot] = callback
            self._arg[slot] = arg
            self._flag[slot] = 0
        else:
            slot = len(self._cb)
            self._cb.append(callback)
            self._arg.append(arg)
            self._gen.append(0)
            self._flag.append(0)
        return slot

    def _release(self, slot: int) -> None:
        """Recycle a slot whose heap entry has been popped."""
        self._gen[slot] += 1
        self._cb[slot] = None
        self._arg[slot] = None
        self._flag[slot] = 0
        self._free.append(slot)

    def _cancel(self, slot: int, gen: int) -> None:
        """Lazily cancel the event in ``slot`` (no-op on stale handles)."""
        if self._gen[slot] != gen or self._flag[slot]:
            return
        self._flag[slot] = 1
        self._cb[slot] = None
        self._arg[slot] = None
        self._live -= 1
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled >= _COMPACT_MIN_CANCELLED and cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries, recycling their slots."""
        flag = self._flag
        kept: List[_HeapEntry] = []
        for entry in self._heap:
            slot = entry[3]
            if flag[slot]:
                self._release(slot)
            else:
                kept.append(entry)
        heapq.heapify(kept)
        self._heap = kept
        self._cancelled = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        at: float,
        callback: Callable[[], Any],
        priority: int = 0,
    ) -> Timer:
        """Schedule ``callback`` at absolute time ``at``.

        Args:
            at: Absolute simulated time; must not precede the clock.
            callback: Zero-argument callable.
            priority: Tie-break rank for same-instant events (lower first).

        Returns:
            A cancellable :class:`Timer` handle.

        Raises:
            SimulationError: If ``at`` is in the simulated past.
        """
        if at < self.now:
            raise SimulationError(
                f"cannot schedule event at t={at:.6f} before now={self.now:.6f}"
            )
        slot = self._alloc(callback, _NO_ARG)
        seq = self._seq + 1
        self._seq = seq
        heapq.heappush(self._heap, (at, priority, seq, slot))
        self._live += 1
        return Timer(self, slot, self._gen[slot], at)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
    ) -> Timer:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self.now + delay, callback, priority=priority)

    def schedule_token(
        self,
        at: float,
        callback: Callable[[Any], Any],
        arg: Any,
        priority: int = 0,
    ) -> int:
        """Schedule ``callback(arg)`` and return a packed cancel token.

        The allocation-free flavour of :meth:`schedule` for internal
        hot paths: no :class:`Timer` object, no closure — the argument
        rides in the arena and the returned ``int`` token cancels via
        :meth:`cancel_token`.  Stale tokens (event already fired or
        cancelled) are harmless.
        """
        if at < self.now:
            raise SimulationError(
                f"cannot schedule event at t={at:.6f} before now={self.now:.6f}"
            )
        # _alloc inlined: schedule_token is the engine's hottest entry.
        free = self._free
        if free:
            slot = free.pop()
            self._cb[slot] = callback
            self._arg[slot] = arg
            self._flag[slot] = 0
        else:
            slot = len(self._cb)
            self._cb.append(callback)
            self._arg.append(arg)
            self._gen.append(0)
            self._flag.append(0)
        seq = self._seq + 1
        self._seq = seq
        heapq.heappush(self._heap, (at, priority, seq, slot))
        self._live += 1
        return (self._gen[slot] << _SLOT_BITS) | slot

    def cancel_token(self, token: int) -> None:
        """Cancel the event behind a :meth:`schedule_token` token.
        Idempotent; a no-op once the event fired."""
        self._cancel(token & _SLOT_MASK, token >> _SLOT_BITS)

    def schedule_batch(
        self,
        entries: Sequence[Tuple[float, int, Callable[..., Any], Any]],
    ) -> None:
        """Schedule many ``(at, priority, callback, arg)`` events at once.

        Sequence numbers are assigned in list order (so equal
        ``(at, priority)`` entries fire in list order) and the heap is
        restored with one :func:`heapq.heapify` instead of per-event
        sifts — the cheap way to feed a chunk of trace arrivals.  Every
        batch entry carries an explicit argument (``callback(arg)``).
        """
        now = self.now
        heap = self._heap
        seq = self._seq
        alloc = self._alloc
        for at, priority, callback, arg in entries:
            if at < now:
                raise SimulationError(
                    f"cannot schedule event at t={at:.6f} before now={now:.6f}"
                )
            seq += 1
            heap.append((at, priority, seq, alloc(callback, arg)))
        self._seq = seq
        heapq.heapify(heap)
        self._live += len(entries)

    # ------------------------------------------------------------------
    # inspection / inline advancement
    # ------------------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or None if the queue is drained."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def peek_key(self) -> Optional[Tuple[float, int]]:
        """``(time, priority)`` of the next live event, or None when drained.

        Lets a caller decide whether work it could perform inline (see
        :meth:`fire_inline`) would fire before anything in the queue.
        """
        self._drop_cancelled()
        if not self._heap:
            return None
        head = self._heap[0]
        return (head[0], head[1])

    def fire_inline(self, at: float) -> None:
        """Account one event processed outside the heap at time ``at``.

        Advances the clock and the fired counter exactly as if a
        scheduled event had popped, without ever entering the heap.
        The caller owns the ordering proof: ``at`` must not precede the
        clock, and nothing pending (see :meth:`peek_key`) may be due to
        fire before the inlined event would have.  The server's batched
        update application is the intended user.
        """
        if at < self.now:
            raise SimulationError(
                f"cannot fire inline at t={at:.6f} before now={self.now:.6f}"
            )
        self.now = at
        self._fired += 1

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        time, _, _, slot = heapq.heappop(self._heap)
        self.now = time
        self._fired += 1
        self._live -= 1
        callback = self._cb[slot]
        arg = self._arg[slot]
        self._release(slot)
        assert callback is not None
        if arg is _NO_ARG:
            callback()
        else:
            callback(arg)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the loop until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        Events scheduled exactly at ``until`` still fire; the clock is
        then advanced to ``until`` so post-run bookkeeping sees the full
        horizon.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        limit = math.inf if max_events is None else max_events
        horizon = math.inf if until is None else until
        heap = self._heap
        pop = heapq.heappop
        flag = self._flag
        cbs = self._cb
        args = self._arg
        gens = self._gen
        free_slot = self._free.append
        no_arg = _NO_ARG
        try:
            while heap:
                if fired >= limit:
                    break
                head = heap[0]
                slot = head[3]
                if flag[slot]:
                    pop(heap)
                    self._cancelled -= 1
                    self._release(slot)
                    continue
                time = head[0]
                if time > horizon:
                    break
                pop(heap)
                self.now = time
                self._fired += 1
                fired += 1
                self._live -= 1
                callback = cbs[slot]
                arg = args[slot]
                # _release inlined (the hottest line in the loop); the
                # pending flag is already 0 for a fired event.
                gens[slot] += 1
                cbs[slot] = None
                args[slot] = None
                free_slot(slot)
                if arg is no_arg:
                    callback()  # type: ignore[misc]
                else:
                    callback(arg)  # type: ignore[misc]
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def _drop_cancelled(self) -> None:
        heap = self._heap
        flag = self._flag
        while heap and flag[heap[0][3]]:
            slot = heapq.heappop(heap)[3]
            self._cancelled -= 1
            self._release(slot)
