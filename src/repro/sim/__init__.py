"""Discrete-event simulation substrate.

This subpackage knows nothing about databases or transactions: it
provides an event loop with cancellable timers (:mod:`repro.sim.engine`),
deterministic named random streams (:mod:`repro.sim.rng`), and small
statistics helpers (:mod:`repro.sim.stats`) used throughout the upper
layers.
"""

from repro.sim.engine import Simulator, Timer
from repro.sim.events import Event
from repro.sim.rng import RandomStreams
from repro.sim.stats import OnlineStats, TimeSeries, TimeWeightedMean, WindowedCounts

__all__ = [
    "Event",
    "OnlineStats",
    "RandomStreams",
    "Simulator",
    "TimeSeries",
    "TimeWeightedMean",
    "Timer",
    "WindowedCounts",
]
