"""The standalone event record of the discrete-event layer.

An :class:`Event` couples a firing time with a callback.  Events are
totally ordered by ``(time, priority, seq)``: the sequence number makes
the order deterministic when several events share a firing time, and
``priority`` lets callers force, e.g., arrivals to be processed before
control ticks scheduled at the same instant.

Since the slotted event arena landed, :class:`repro.sim.engine.Simulator`
no longer stores ``Event`` objects: its heap holds bare ``(time,
priority, seq, slot)`` tuples (compared natively in C) with callbacks
in parallel per-slot arrays.  ``Event`` remains the public record for
code that composes event lists *outside* the engine — tests, tooling,
and policies that shape batches before scheduling them — and its
``__lt__`` is the reference definition of the engine's total order:
the arena's tuple comparison and ``Event.__lt__`` must always agree,
which ``tests/test_policy_api_and_events.py`` pins.

``Event`` is a hand-written ``__slots__`` class rather than a
``dataclass(order=True)``: the generated comparison built a pair of
field tuples on every ``<`` and dominated profile time in the heap
operations of long runs.  The explicit ``__lt__`` below keeps the exact
``(time, priority, seq)`` order at a fraction of the cost.
"""

from __future__ import annotations

from typing import Any, Callable


def _noop() -> None:
    """Default callback: do nothing."""


class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``.

    Attributes:
        time: Simulated firing time (seconds).
        priority: Tie-break rank for events at the same instant; lower
            fires first.  Defaults to 0.
        seq: Monotonically increasing tie-breaker assigned by the
            simulator; guarantees a deterministic total order.
        callback: Zero-argument callable invoked when the event fires.
            Not part of the ordering.
        cancelled: Set by :meth:`repro.sim.engine.Timer.cancel`;
            cancelled events are skipped by the loop.
        fired: Set by the engine when the event's callback runs; a fired
            event can no longer be cancelled.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        priority: int = 0,
        seq: int = 0,
        callback: Callable[[], Any] = _noop,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.fired = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, cancelled={self.cancelled!r})"
        )

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback()
