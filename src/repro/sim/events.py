"""Event records for the discrete-event engine.

An :class:`Event` couples a firing time with a callback.  Events are
totally ordered by ``(time, priority, seq)``: the sequence number makes
the order deterministic when several events share a firing time, and
``priority`` lets callers force, e.g., arrivals to be processed before
control ticks scheduled at the same instant.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``.

    Attributes:
        time: Simulated firing time (seconds).
        priority: Tie-break rank for events at the same instant; lower
            fires first.  Defaults to 0.
        seq: Monotonically increasing tie-breaker assigned by the
            simulator; guarantees a deterministic total order.
        callback: Zero-argument callable invoked when the event fires.
            Excluded from ordering comparisons.
        cancelled: Set by :meth:`repro.sim.engine.Timer.cancel`;
            cancelled events are skipped by the loop.
    """

    time: float
    priority: int = 0
    seq: int = 0
    callback: Callable[[], Any] = dataclasses.field(compare=False, default=lambda: None)
    cancelled: bool = dataclasses.field(compare=False, default=False)

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback()
