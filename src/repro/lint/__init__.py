"""simlint: AST-based determinism & USM-accounting checks for this repo.

The reproduction's credibility rests on two conventions that ordinary
tooling cannot see:

* every stochastic draw flows through :class:`repro.sim.rng.RandomStreams`
  named substreams (so a run is a pure function of the master seed), and
* every user query lands in exactly one of the four USM outcomes
  (Success / Rejection / DMF / DSF, paper Eqs. 2-5).

``simlint`` enforces those conventions statically, with a pluggable rule
registry (SL001-SL006), a ``python -m repro.lint`` CLI, and per-line /
per-file suppression via ``# simlint: disable=RULE`` comments.  See
``docs/static-analysis.md`` for the contract each rule protects.
"""

from __future__ import annotations

from repro.lint.base import Rule, Violation, all_rules, get_rule, register
from repro.lint.config import LintConfig
from repro.lint.walker import FileContext, lint_file, lint_paths, lint_source

__all__ = [
    "FileContext",
    "LintConfig",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]

# Importing the rules package registers every built-in rule.
from repro.lint import rules as _rules  # noqa: E402,F401  (registration side effect)
