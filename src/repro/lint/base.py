"""Rule base class, violation record, and the pluggable rule registry.

A rule is a small class with a ``rule_id``, a human summary, a component
scope (which top-level ``repro`` subpackages it patrols), and a
``check`` method that yields :class:`Violation` records for one parsed
file.  Rules self-register via the :func:`register` decorator, so adding
a rule is: write the class, decorate it, import its module from
``repro.lint.rules``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterator, List, Type

#: Components (top-level ``repro`` subpackages) that constitute the
#: deterministic simulation path.  Wall-clock reads and ambient RNG in
#: any of these break seed-reproducibility of the figures.
SIMULATION_COMPONENTS: FrozenSet[str] = frozenset(
    {"sim", "db", "core", "workload", "obs"}
)

#: Components whose scheduling / victim-selection decisions must not
#: depend on hash ordering.
DECISION_COMPONENTS: FrozenSet[str] = frozenset({"core", "db"})


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One finding: where it is, which rule fired, and what to do."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form (path:line:col: RULE message)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (for ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


class Rule:
    """Base class for simlint rules.

    Class attributes:
        rule_id: Stable identifier (``SL001`` ...), used in reports and
            in ``# simlint: disable=`` comments.
        summary: One-line description shown by ``--list-rules``.
        components: Subpackage names this rule patrols; empty means the
            rule applies everywhere.
        exempt_files: Posix path suffixes (e.g. ``sim/rng.py``) where
            the rule is intentionally silent.
    """

    rule_id: str = ""
    summary: str = ""
    components: FrozenSet[str] = frozenset()
    exempt_files: FrozenSet[str] = frozenset()

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        """Yield violations for one parsed file.  Override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover  (marks this as a generator)

    # -- helpers shared by the concrete rules ---------------------------

    def violation(
        self,
        ctx: "FileContext",  # noqa: F821
        node: ast.AST,
        message: str,
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``rule_cls`` to the global registry.

    Re-registering the same ``rule_id`` with a *different* class is an
    error (it would silently shadow a shipped rule); re-importing the
    same class is a no-op so test reloads stay cheap.
    """
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} does not define rule_id")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"duplicate rule id {rule_id!r}: {existing.__name__} vs {rule_cls.__name__}"
        )
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id (raises ``KeyError`` for unknown ids)."""
    return _REGISTRY[rule_id]()


def known_rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    return sorted(_REGISTRY)
