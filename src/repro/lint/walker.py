"""File discovery, suppression comments, and the per-file lint driver.

Suppression grammar (anywhere in a comment)::

    # simlint: disable=SL001            silence SL001 on this line
    # simlint: disable=SL001,SL004      silence several rules on this line
    # simlint: disable                  silence every rule on this line
    # simlint: disable-file=SL004       silence SL004 for the whole file
    # simlint: disable-file             silence the whole file (use sparingly)

Suppressions should carry a justification in the same comment, e.g.
``# simlint: disable=SL002 -- wall-clock is report metadata, not sim state``.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.base import Rule, Violation
from repro.lint.config import DEFAULT_CONFIG, LintConfig

#: Top-level subpackages a file can belong to; used to classify files
#: that live outside an importable ``repro`` tree (test fixtures).
KNOWN_COMPONENTS: FrozenSet[str] = frozenset(
    {"sim", "db", "core", "workload", "experiments", "analysis", "lint", "obs"}
)

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>disable-file|disable)"
    r"\s*(?:=\s*(?P<rules>[A-Za-z0-9_,\s]+?))?\s*(?:--.*)?$"
)

#: Sentinel meaning "every rule" in suppression tables.
_ALL = "*"


class LintError(Exception):
    """A file could not be linted (unreadable, unparsable)."""

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract per-line and file-level suppressions from ``source``.

    Returns ``(line_disables, file_disables)`` where the line table maps
    1-based line numbers to rule-id sets and either set may contain the
    ``"*"`` wildcard.
    """
    line_disables: Dict[int, Set[str]] = {}
    file_disables: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "simlint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        raw = match.group("rules")
        rules = (
            {_ALL}
            if raw is None
            else {part.strip().upper() for part in raw.split(",") if part.strip()}
        )
        if match.group("kind") == "disable-file":
            file_disables |= rules
        else:
            line_disables.setdefault(lineno, set()).update(rules)
    return line_disables, file_disables


#: What a plausible-but-unknown rule id looks like.  Tokens with
#: internal whitespace are prose riding the suppression grammar in a
#: docstring or comment (the examples in this very file), not typos.
_ID_SHAPE_RE = re.compile(r"[A-Z][A-Z0-9_]{1,15}")


def suppression_warnings(
    source: str, display_path: str, known_ids: Set[str]
) -> List[str]:
    """Warnings for suppression comments naming unknown rule ids.

    A typo'd id (``disable=SL09``) silently suppresses nothing, which
    reads as "finding fixed" in review; surface it instead.  ``known_ids``
    is passed in so this stays layer-agnostic — callers union the SL and
    SF catalogs.
    """
    line_disables, file_disables = _parse_suppressions(source)

    def unknown(rules: Set[str]) -> List[str]:
        return sorted(
            r
            for r in rules - known_ids - {_ALL}
            if _ID_SHAPE_RE.fullmatch(r)
        )

    warnings: List[str] = []
    for rule_id in unknown(file_disables):
        warnings.append(
            f"{display_path}:1: suppression names unknown rule {rule_id!r}"
        )
    for lineno in sorted(line_disables):
        for rule_id in unknown(line_disables[lineno]):
            warnings.append(
                f"{display_path}:{lineno}: suppression names unknown rule {rule_id!r}"
            )
    return warnings


def suppression_warnings_for_paths(
    paths: Iterable[Path], known_ids: Set[str]
) -> List[str]:
    """Unknown-rule suppression warnings for every file under ``paths``."""
    warnings: List[str] = []
    for file_path in discover_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError:
            continue
        warnings.extend(suppression_warnings(source, str(file_path), known_ids))
    return warnings


def classify_component(path: Path) -> Optional[str]:
    """Which top-level subpackage ``path`` belongs to, if any.

    Inside an importable tree, the component is the path part right
    after the last ``repro`` directory (``src/repro/db/server.py`` →
    ``db``).  Outside one (fixture trees in tests), the last path part
    that names a known component wins (``tmp/x/sim/engine.py`` → ``sim``).
    """
    parts = path.parts[:-1]  # directories only
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        if idx + 1 < len(parts):
            return parts[idx + 1]
        return None  # file sits directly in repro/
    for part in reversed(parts):
        if part in KNOWN_COMPONENTS:
            return part
    return None


@dataclasses.dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    component: Optional[str]
    line_disables: Dict[int, Set[str]]
    file_disables: Set[str]

    @classmethod
    def from_source(
        cls,
        source: str,
        path: Path,
        display_path: Optional[str] = None,
    ) -> "FileContext":
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(str(path), f"syntax error: {exc.msg} (line {exc.lineno})")
        line_disables, file_disables = _parse_suppressions(source)
        return cls(
            path=path,
            display_path=display_path or str(path),
            source=source,
            tree=tree,
            component=classify_component(path),
            line_disables=line_disables,
            file_disables=file_disables,
        )

    @classmethod
    def from_path(cls, path: Path, display_path: Optional[str] = None) -> "FileContext":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(str(path), f"cannot read: {exc}")
        return cls.from_source(source, path, display_path=display_path)

    def matches_suffix(self, suffixes: Iterable[str]) -> bool:
        """True when this file's posix path ends with any given suffix."""
        posix = self.path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)

    def is_suppressed(self, violation: Violation) -> bool:
        if _ALL in self.file_disables or violation.rule_id in self.file_disables:
            return True
        rules = self.line_disables.get(violation.line)
        return rules is not None and (_ALL in rules or violation.rule_id in rules)


def _rule_applies(rule: Rule, ctx: FileContext) -> bool:
    if rule.components and ctx.component not in rule.components:
        return False
    if rule.exempt_files and ctx.matches_suffix(rule.exempt_files):
        return False
    return True


def lint_context(ctx: FileContext, config: LintConfig = DEFAULT_CONFIG) -> List[Violation]:
    """Run every applicable rule over an already-parsed file."""
    violations: List[Violation] = []
    for rule in config.rules():
        if not _rule_applies(rule, ctx):
            continue
        for violation in rule.check(ctx):
            if not ctx.is_suppressed(violation):
                violations.append(violation)
    violations.sort()
    return violations


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Violation]:
    """Lint a source string (fixture-friendly entry point)."""
    return lint_context(FileContext.from_source(source, Path(path)), config)


def lint_file(path: Path, config: LintConfig = DEFAULT_CONFIG) -> List[Violation]:
    """Lint one file on disk."""
    return lint_context(FileContext.from_path(path), config)


def discover_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order.

    Hidden directories and ``__pycache__`` are skipped.  A path that is
    itself a ``.py`` file is yielded as-is; a missing path raises
    :class:`LintError`.
    """
    for path in paths:
        if not path.exists():
            raise LintError(str(path), "no such file or directory")
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(part.startswith(".") or part == "__pycache__" for part in parts):
                continue
            yield candidate


def lint_paths(
    paths: Iterable[Path],
    config: LintConfig = DEFAULT_CONFIG,
) -> Tuple[List[Violation], int]:
    """Lint every python file under ``paths``.

    Returns ``(violations, files_checked)``; violations are sorted by
    ``(path, line, col, rule)``.
    """
    violations: List[Violation] = []
    files_checked = 0
    for file_path in discover_files(paths):
        files_checked += 1
        violations.extend(lint_file(file_path, config))
    violations.sort()
    return violations, files_checked
