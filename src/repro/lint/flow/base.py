"""Flow-rule base class and registry (SF001-SF004 and beyond).

Flow rules differ from per-file :class:`repro.lint.base.Rule` in one
way: ``check`` receives a :class:`FlowAnalysis` — the whole parsed
program plus its symbol table and call graph — instead of a single
file.  Violations are the same records, anchored at a concrete file and
line, so reporting, suppression, and output formats are shared with the
per-file layer.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Type

from repro.lint.base import Violation
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.loader import ModuleFile, Program
from repro.lint.flow.symbols import SymbolTable


@dataclasses.dataclass
class FlowAnalysis:
    """The shared analysis state every flow rule consumes."""

    program: Program
    symbols: SymbolTable
    callgraph: CallGraph

    @classmethod
    def build(cls, program: Program) -> "FlowAnalysis":
        symbols = SymbolTable(program)
        return cls(program=program, symbols=symbols, callgraph=CallGraph(program, symbols))


class FlowRule:
    """Base class for whole-program rules.

    Class attributes mirror :class:`repro.lint.base.Rule`:
        rule_id: Stable ``SFxxx`` identifier (used in reports and in the
            shared ``# simlint: disable=`` suppression comments).
        summary: One-line description for ``--list-rules``.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, analysis: FlowAnalysis) -> Iterator[Violation]:
        raise NotImplementedError
        yield  # pragma: no cover  (marks this as a generator)

    def violation(self, mod: ModuleFile, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=mod.ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


_FLOW_REGISTRY: Dict[str, Type[FlowRule]] = {}


def register_flow(rule_cls: Type[FlowRule]) -> Type[FlowRule]:
    """Class decorator: add a flow rule to the registry (idempotent per
    class, loud on id collisions — same contract as the per-file layer)."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} does not define rule_id")
    existing = _FLOW_REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"duplicate flow rule id {rule_id!r}: {existing.__name__} vs {rule_cls.__name__}"
        )
    _FLOW_REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_flow_rules() -> List[FlowRule]:
    """Fresh instances of every registered flow rule, sorted by id."""
    return [_FLOW_REGISTRY[rule_id]() for rule_id in sorted(_FLOW_REGISTRY)]


def known_flow_rule_ids() -> List[str]:
    return sorted(_FLOW_REGISTRY)


def get_flow_rule(rule_id: str) -> FlowRule:
    return _FLOW_REGISTRY[rule_id]()


def select_flow_rules(
    select: Optional[List[str]] = None,
    ignore: Optional[List[str]] = None,
) -> List[FlowRule]:
    """The active flow rules under a --select/--ignore pair."""
    active: List[FlowRule] = []
    ignore_set = set(ignore or ())
    for rule in all_flow_rules():
        if select is not None and rule.rule_id not in select:
            continue
        if rule.rule_id in ignore_set:
            continue
        active.append(rule)
    return active
