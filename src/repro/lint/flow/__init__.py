"""simflow: whole-program dataflow analysis on top of simlint.

Where the per-file layer (:mod:`repro.lint.rules`) checks one module's
syntax at a time, this package parses the whole ``src/repro`` tree once
into a symbol table and call graph and runs *interprocedural* rules over
it:

* **SF001** — RNG stream provenance: every ``RandomStreams.stream(...)``
  name must resolve to a literal, and the same name must not be claimed
  by distinct components (stream names are part of the seed contract).
* **SF002** — clock-domain taint: wall-clock reads may never flow into
  sim-time state, ``Event.time``, USM windows, or report fields other
  than the declared wall-metadata sinks.
* **SF003** — cross-process capture: payloads shipped to the sweep pool
  must be picklable module-level callables; no mutation-after-submit or
  worker-side mutation of shared module globals.
* **SF004** — engine-owned escapes: ``Event`` / lock-table references do
  not leave their engine and get mutated under a foreign name.

Entry point::

    python -m repro.lint --flow src/repro

Suppressions reuse the per-file machinery: ``# simlint: disable=SF002``
on the flagged line (or ``disable-file=`` in the module header) with a
``--`` justification.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.lint.base import Violation
from repro.lint.flow import rules as _rules  # noqa: F401  (registers SF rules)
from repro.lint.flow.base import (
    FlowAnalysis,
    FlowRule,
    all_flow_rules,
    known_flow_rule_ids,
    select_flow_rules,
)
from repro.lint.flow.loader import Program, load_program

__all__ = [
    "FlowAnalysis",
    "FlowRule",
    "Program",
    "all_flow_rules",
    "known_flow_rule_ids",
    "load_program",
    "run_flow",
    "select_flow_rules",
]


def run_flow(
    paths: Iterable[Path],
    select: Optional[List[str]] = None,
    ignore: Optional[List[str]] = None,
) -> Tuple[List[Violation], int]:
    """Run every active flow rule over the program rooted at ``paths``.

    Returns ``(violations, files_checked)`` with the same sort order and
    suppression semantics as :func:`repro.lint.walker.lint_paths`.
    """
    program = load_program(paths)
    analysis = FlowAnalysis.build(program)
    contexts = {mod.ctx.display_path: mod.ctx for mod in program.modules.values()}
    violations: List[Violation] = []
    for rule in select_flow_rules(select, ignore):
        for violation in rule.check(analysis):
            ctx = contexts.get(violation.path)
            if ctx is not None and ctx.is_suppressed(violation):
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations, len(program.modules)
