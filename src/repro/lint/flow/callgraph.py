"""Call graph over the loaded program.

Edges connect a function to every *program-resolvable* callee: direct
calls, method calls on receivers whose class the lightweight type
environment knows, and constructor calls (edges to ``__init__`` when it
exists).  Calls into the stdlib or through unresolvable receivers are
recorded as unresolved so rules can choose how pessimistic to be.

Callables that are merely *referenced* (passed as arguments, stored in
variables) also get edges when the reference is a program function —
this is what lets SF003 treat ``pool.imap_unordered(_run_keyed, ...)``
as an entry into ``_run_keyed``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.flow.loader import Program
from repro.lint.flow.symbols import FunctionInfo, SymbolTable


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    caller: str  # qualname of the enclosing function
    callee: str  # qualname of the resolved target
    node: ast.Call


class CallGraph:
    """Resolved call edges plus reverse lookup."""

    def __init__(self, program: Program, symbols: SymbolTable) -> None:
        self.program = program
        self.symbols = symbols
        self.calls: List[CallSite] = []
        self._out: Dict[str, Set[str]] = {}
        self._in: Dict[str, Set[str]] = {}
        #: qualname → call sites targeting it.
        self._sites_by_callee: Dict[str, List[CallSite]] = {}
        #: program functions referenced as values (callbacks) per function.
        self.references: Dict[str, Set[str]] = {}
        self._build()

    def _build(self) -> None:
        for qualname in sorted(self.symbols.functions):
            func = self.symbols.functions[qualname]
            env = self.symbols.local_types(func)
            for node in ast.walk(func.node):
                if isinstance(node, ast.Call):
                    target = self.symbols.resolve_call_target(func.module, node.func, env)
                    if target is None:
                        continue
                    kind, target_qual = target
                    if kind == "class":
                        init = self.symbols.lookup_method(target_qual, "__init__")
                        target_qual = init.qualname if init else f"{target_qual}.__init__"
                    self._add_edge(qualname, target_qual, node)
                elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    resolved = self.symbols.resolve_name(func.module, node.id)
                    if resolved is not None and resolved in self.symbols.functions:
                        self.references.setdefault(qualname, set()).add(resolved)

    def _add_edge(self, caller: str, callee: str, node: ast.Call) -> None:
        site = CallSite(caller=caller, callee=callee, node=node)
        self.calls.append(site)
        self._out.setdefault(caller, set()).add(callee)
        self._in.setdefault(callee, set()).add(caller)
        self._sites_by_callee.setdefault(callee, []).append(site)

    # -- queries --------------------------------------------------------

    def callees_of(self, qualname: str) -> Set[str]:
        return set(self._out.get(qualname, set()))

    def callers_of(self, qualname: str) -> Set[str]:
        return set(self._in.get(qualname, set()))

    def call_sites_of(self, callee: str) -> List[CallSite]:
        """Every call site whose resolved target is ``callee``."""
        return list(self._sites_by_callee.get(callee, []))

    def reachable_from(
        self,
        roots: Set[str],
        follow_references: bool = True,
    ) -> Set[str]:
        """Transitive closure of call (and optionally reference) edges."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.symbols.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            nxt = self._out.get(qual, set())
            if follow_references:
                nxt = nxt | self.references.get(qual, set())
            stack.extend(n for n in nxt if n not in seen)
        return seen

    def functions_in_postorder(self) -> Iterator[FunctionInfo]:
        """Every program function, deterministic order."""
        for qualname in sorted(self.symbols.functions):
            yield self.symbols.functions[qualname]

    def enclosing_function(
        self, module: str, node: ast.AST
    ) -> Optional[Tuple[str, FunctionInfo]]:  # pragma: no cover - helper
        """Find the function whose body contains ``node`` (by position)."""
        best: Optional[FunctionInfo] = None
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return None
        for qualname in sorted(self.symbols.functions):
            func = self.symbols.functions[qualname]
            if func.module != module:
                continue
            end = getattr(func.node, "end_lineno", func.node.lineno)
            if func.node.lineno <= lineno <= (end or lineno):
                if best is None or func.node.lineno >= best.node.lineno:
                    best = func
        if best is None:
            return None
        return best.qualname, best
