"""SF004: engine-owned references do not escape and get mutated.

SL005 catches ``event.time = ...`` by *receiver name*; this rule tracks
actual :class:`repro.sim.events.Event` (and ``db.locks.LockTable``)
references through annotations and constructor provenance, so a heap
record that leaks out of the engine under an innocent name
(``entry = timer._event; entry.time = 5``) is still caught.  Two
findings:

* **foreign construction** — ``Event(...)`` built outside the ``sim``
  component: events must be minted by ``Simulator.schedule`` so they
  carry a valid ``seq`` and live in the heap;
* **foreign mutation** — any attribute written on an Event-typed or
  LockTable-typed value outside its owning component's engine modules;
  ``Timer.cancel()`` is the sanctioned cancellation path and lock-table
  state changes only through the lock manager's own methods.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.lint.base import Violation
from repro.lint.flow.base import FlowAnalysis, FlowRule, register_flow

#: (class name, owning component, modules allowed to mutate instances).
_OWNED_TYPES: Tuple[Tuple[str, str, FrozenSet[str]], ...] = (
    ("Event", "sim", frozenset({"sim.engine", "sim.events"})),
    ("LockTable", "db", frozenset({"db.locks"})),
)


@register_flow
class EngineEscapeRule(FlowRule):
    """SF004: Event/LockTable references stay engine-owned."""

    rule_id = "SF004"
    summary = "Event/LockTable references do not escape their engine and mutate"

    def check(self, analysis: FlowAnalysis) -> Iterator[Violation]:
        owned = self._owned_classes(analysis)
        if not owned:
            return
        for func in analysis.callgraph.functions_in_postorder():
            mod = analysis.symbols.modules[func.module].module
            env = analysis.symbols.local_types(func)
            yield from self._check_construction(analysis, func, mod, owned)
            yield from self._check_mutation(analysis, func, mod, env, owned)

    # -- identification -------------------------------------------------

    def _owned_classes(
        self, analysis: FlowAnalysis
    ) -> Dict[str, Tuple[str, str, FrozenSet[str]]]:
        """class qualname → (name, owning component, mutator modules)."""
        owned: Dict[str, Tuple[str, str, FrozenSet[str]]] = {}
        for qualname, cls in analysis.symbols.classes.items():
            for name, component, mutators in _OWNED_TYPES:
                if cls.name == name and cls.component == component:
                    owned[qualname] = (name, component, mutators)
        return owned

    def _module_is_exempt(self, module: str, mutators: FrozenSet[str]) -> bool:
        return any(module.endswith(suffix) for suffix in mutators)

    # -- foreign construction ------------------------------------------

    def _check_construction(
        self,
        analysis: FlowAnalysis,
        func,
        mod,
        owned: Dict[str, Tuple[str, str, FrozenSet[str]]],
    ) -> Iterator[Violation]:
        env = analysis.symbols.local_types(func)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            target = analysis.symbols.resolve_call_target(func.module, node.func, env)
            if target is None or target[0] != "class":
                continue
            info = owned.get(target[1])
            if info is None:
                continue
            name, component, _mutators = info
            if name != "Event" or mod.component == component:
                continue
            yield self.violation(
                mod,
                node,
                f"direct {name}(...) construction outside the {component} "
                "engine; events must be minted by Simulator.schedule so they "
                "carry a valid heap sequence number",
            )

    # -- foreign mutation ----------------------------------------------

    def _check_mutation(
        self,
        analysis: FlowAnalysis,
        func,
        mod,
        env: Dict[str, str],
        owned: Dict[str, Tuple[str, str, FrozenSet[str]]],
    ) -> Iterator[Violation]:
        for node in ast.walk(func.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                yield from self._flag_target(analysis, func, mod, env, owned, target)

    def _flag_target(
        self,
        analysis: FlowAnalysis,
        func,
        mod,
        env: Dict[str, str],
        owned: Dict[str, Tuple[str, str, FrozenSet[str]]],
        target: ast.expr,
    ) -> Iterator[Violation]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._flag_target(analysis, func, mod, env, owned, elt)
            return
        if not isinstance(target, ast.Attribute):
            return
        receiver_type = analysis.symbols._value_type(func.module, target.value, env)
        if receiver_type is None:
            return
        info = owned.get(receiver_type)
        if info is None:
            return
        name, _component, mutators = info
        if self._module_is_exempt(func.module, mutators):
            return
        remedy = (
            "cancel through Timer.cancel() or schedule a fresh event"
            if name == "Event"
            else "go through the lock manager's own methods"
        )
        yield self.violation(
            mod,
            target,
            f"assignment to {name}.{target.attr} outside the engine modules "
            f"(receiver tracked as {receiver_type}); {name} state is "
            f"engine-owned — {remedy}",
        )
