"""SF001: RNG stream-name provenance.

Seed stability rests on :class:`repro.sim.rng.RandomStreams`: every
substream is seeded from ``(master_seed, name)``, so the *names* are
part of the determinism contract.  Two hazards are invisible per file:

* **collisions** — two different components resolving the same stream
  name share one generator, coupling their draws (changing one
  component's consumption perturbs the other — exactly what named
  streams exist to prevent);
* **unstable names** — a name computed at runtime from something other
  than configuration (a call result, an unresolvable variable) can
  change between runs or refactors, silently re-seeding a component.

The rule constant-propagates ``.stream(...)`` name arguments: literals
resolve directly, f-strings of simple config fields resolve to
templates (``f"update-{spec.name}-exec"`` → ``update-{}-exec``), and
parameter-passed names are chased to their literal origins through the
call graph.  Violations: a name whose literal origins span more than
one component, and any name argument with no resolvable literal shape.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import Violation
from repro.lint.flow.base import FlowAnalysis, FlowRule, register_flow
from repro.lint.flow.symbols import FunctionInfo, SymbolTable

#: How deep a parameter is chased through callers before giving up.
_MAX_CALLER_DEPTH = 4


@dataclasses.dataclass(frozen=True)
class _Origin:
    """Where a resolved stream name's literal was written."""

    module: str
    component: Optional[str]
    line: int


@dataclasses.dataclass
class _StreamSite:
    """One ``streams.stream(...)`` call with its resolution."""

    func: FunctionInfo
    node: ast.Call
    resolved: List[Tuple[str, _Origin]]  # (name-or-template, origin)
    failure: Optional[str]  # why resolution failed, when it did


def _is_streams_class(qualname: Optional[str]) -> bool:
    return qualname is not None and qualname.rsplit(".", 1)[-1] == "RandomStreams"


def _simple_placeholder(expr: ast.expr) -> bool:
    """A placeholder that parameterizes a template deterministically:
    a name, attribute chain, or subscript of those — never a call."""
    if isinstance(expr, ast.Name):
        return True
    if isinstance(expr, ast.Attribute):
        return _simple_placeholder(expr.value)
    if isinstance(expr, ast.Subscript):
        return _simple_placeholder(expr.value)
    if isinstance(expr, ast.FormattedValue):
        return _simple_placeholder(expr.value)
    return False


class _Resolver:
    """Constant-propagates a stream-name expression to literal origins."""

    def __init__(self, analysis: FlowAnalysis) -> None:
        self.analysis = analysis
        self.symbols: SymbolTable = analysis.symbols

    def resolve(
        self,
        func: FunctionInfo,
        expr: ast.expr,
        depth: int = 0,
        stack: Optional[Set[str]] = None,
    ) -> Tuple[List[Tuple[str, _Origin]], Optional[str]]:
        """Resolve ``expr`` (in ``func``) to ``[(name, origin), ...]``.

        Returns ``(resolutions, failure)``; a non-None failure means at
        least one path could not be resolved to a literal shape.
        """
        stack = stack or set()
        mod = self.symbols.modules[func.module].module
        origin = _Origin(
            module=func.module,
            component=mod.component,
            line=getattr(expr, "lineno", func.node.lineno),
        )
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return [(expr.value, origin)], None
        if isinstance(expr, ast.JoinedStr):
            return self._resolve_fstring(func, expr, origin)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left, lf = self.resolve(func, expr.left, depth, stack)
            right, rf = self.resolve(func, expr.right, depth, stack)
            if lf or rf:
                return [], lf or rf
            return (
                [(ln + rn, lo) for ln, lo in left for rn, _ro in right],
                None,
            )
        if isinstance(expr, ast.Name):
            return self._resolve_name(func, expr, origin, depth, stack)
        return [], (
            f"stream name is a {type(expr).__name__} expression, not a literal"
        )

    def _resolve_fstring(
        self,
        func: FunctionInfo,
        expr: ast.JoinedStr,
        origin: _Origin,
    ) -> Tuple[List[Tuple[str, _Origin]], Optional[str]]:
        parts: List[str] = []
        for value in expr.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                if not _simple_placeholder(value.value):
                    return [], (
                        "f-string stream name interpolates a computed value; "
                        "interpolate only config fields (names/attributes)"
                    )
                parts.append("{}")
            else:  # pragma: no cover - grammar guarantees the two above
                return [], "unsupported f-string part in stream name"
        return [("".join(parts), origin)], None

    def _resolve_name(
        self,
        func: FunctionInfo,
        expr: ast.Name,
        origin: _Origin,
        depth: int,
        stack: Set[str],
    ) -> Tuple[List[Tuple[str, _Origin]], Optional[str]]:
        # Local constant assignment?
        local_const = self._local_str_assign(func, expr.id)
        if local_const is not None:
            value, lineno = local_const
            return [
                (value, dataclasses.replace(origin, line=lineno))
            ], None
        # Module-level string constant?
        syms = self.symbols.modules.get(func.module)
        if syms is not None and expr.id in syms.str_constants:
            return [(syms.str_constants[expr.id], origin)], None
        # A parameter: chase every caller's argument.
        if self._is_parameter(func, expr.id):
            return self._resolve_parameter(func, expr.id, depth, stack)
        return [], f"stream name '{expr.id}' has no resolvable literal origin"

    def _local_str_assign(
        self, func: FunctionInfo, name: str
    ) -> Optional[Tuple[str, int]]:
        found: Optional[Tuple[str, int]] = None
        count = 0
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        count += 1
                        if isinstance(node.value, ast.Constant) and isinstance(
                            node.value.value, str
                        ):
                            found = (node.value.value, node.lineno)
                        else:
                            found = None
        # Only trust a single, constant assignment.
        if count == 1:
            return found
        return None

    def _is_parameter(self, func: FunctionInfo, name: str) -> bool:
        args = func.node.args
        return any(
            a.arg == name
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )

    def _resolve_parameter(
        self,
        func: FunctionInfo,
        param: str,
        depth: int,
        stack: Set[str],
    ) -> Tuple[List[Tuple[str, _Origin]], Optional[str]]:
        if depth >= _MAX_CALLER_DEPTH:
            return [], f"stream name parameter '{param}' exceeds caller-chase depth"
        if func.qualname in stack:
            return [], f"stream name parameter '{param}' flows through recursion"
        sites = self.analysis.callgraph.call_sites_of(func.qualname)
        if not sites:
            return [], (
                f"stream name parameter '{param}' has no resolvable call sites"
            )
        resolutions: List[Tuple[str, _Origin]] = []
        for site in sites:
            arg = self._argument_for(func, param, site.node)
            if arg is None:
                return [], (
                    f"stream name parameter '{param}' not traceable at a call "
                    f"site in {site.caller}"
                )
            caller = self.symbols.functions[site.caller]
            resolved, failure = self.resolve(
                caller, arg, depth + 1, stack | {func.qualname}
            )
            if failure is not None:
                return [], failure
            resolutions.extend(resolved)
        return resolutions, None

    def _argument_for(
        self, func: FunctionInfo, param: str, call: ast.Call
    ) -> Optional[ast.expr]:
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
        args = func.node.args
        positional = list(args.posonlyargs) + list(args.args)
        names = [a.arg for a in positional]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        try:
            index = names.index(param)
        except ValueError:
            return None
        if index < len(call.args):
            arg = call.args[index]
            return None if isinstance(arg, ast.Starred) else arg
        # Parameter defaulted at this call site: use its default value.
        defaults = args.defaults
        n_without_default = len(names) - len(defaults)
        if index >= n_without_default:
            return defaults[index - n_without_default]
        return None


@register_flow
class StreamProvenanceRule(FlowRule):
    """SF001: stream names resolve to literals; no cross-component dupes."""

    rule_id = "SF001"
    summary = "RandomStreams names are literal-resolvable and collision-free"

    def check(self, analysis: FlowAnalysis) -> Iterator[Violation]:
        resolver = _Resolver(analysis)
        sites = self._stream_sites(analysis, resolver)
        yield from self._unresolved_violations(analysis, sites)
        yield from self._collision_violations(analysis, sites)

    # -- collection -----------------------------------------------------

    def _stream_sites(
        self, analysis: FlowAnalysis, resolver: _Resolver
    ) -> List[_StreamSite]:
        sites: List[_StreamSite] = []
        for func in analysis.callgraph.functions_in_postorder():
            # The factory itself may mention .stream in docs/helpers.
            if func.module.endswith("sim.rng"):
                continue
            env = analysis.symbols.local_types(func)
            for node in ast.walk(func.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "stream"
                    and node.args
                ):
                    continue
                receiver_type = analysis.symbols._value_type(
                    func.module, node.func.value, env
                )
                if not _is_streams_class(receiver_type):
                    continue
                resolved, failure = resolver.resolve(func, node.args[0])
                sites.append(
                    _StreamSite(func=func, node=node, resolved=resolved, failure=failure)
                )
        return sites

    # -- violations -----------------------------------------------------

    def _unresolved_violations(
        self, analysis: FlowAnalysis, sites: List[_StreamSite]
    ) -> Iterator[Violation]:
        for site in sites:
            if site.failure is None:
                continue
            mod = analysis.symbols.modules[site.func.module].module
            yield self.violation(
                mod,
                site.node,
                f"stream name cannot be resolved to a stable literal "
                f"({site.failure}); substream seeds derive from the name, so "
                "use a string literal or an f-string of config fields",
            )

    def _collision_violations(
        self, analysis: FlowAnalysis, sites: List[_StreamSite]
    ) -> Iterator[Violation]:
        by_name: Dict[str, List[Tuple[_StreamSite, _Origin]]] = {}
        for site in sites:
            for name, origin in site.resolved:
                by_name.setdefault(name, []).append((site, origin))
        for name in sorted(by_name):
            entries = by_name[name]
            components = {
                origin.component for _site, origin in entries if origin.component
            }
            if len(components) <= 1:
                continue
            seen_sites: Set[int] = set()
            for site, origin in entries:
                if id(site.node) in seen_sites:
                    continue
                seen_sites.add(id(site.node))
                others = sorted(
                    {
                        f"{o.module}:{o.line}"
                        for s, o in entries
                        if s is not site or o != origin
                    }
                )
                mod = analysis.symbols.modules[site.func.module].module
                yield self.violation(
                    mod,
                    site.node,
                    f"stream name {name!r} is shared across components "
                    f"(also reached from {', '.join(others)}); shared names "
                    "alias one generator and couple the components' draws — "
                    "give each component a distinct substream name",
                )
