"""SF002: clock-domain taint — wall time never reaches sim time.

SL002 bans wall-clock *reads* inside simulation components, but a value
read legally in ``experiments/`` (``time.perf_counter()`` for report
timing) can still flow back into the simulation: passed into a ``core``
policy, stored on a ``sim`` object, scheduled as an event time, or
booked into a report field that the byte-identity contract covers.
This rule taints every wall-clock read (and every read-back of the
declared wall-metadata report fields) and follows the value through
assignments, arithmetic, containers, and resolved calls — flagging any
flow into the simulation domain.

Declared wall-metadata sinks: the ``wall_seconds`` / ``phase_seconds``
keywords of ``*Report`` constructors.  Those two fields are the *only*
sanctioned resting place for wall-clock values.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.lint.base import Violation
from repro.lint.flow.base import FlowAnalysis, FlowRule, register_flow
from repro.lint.flow.symbols import FunctionInfo
from repro.lint.flow.taint import TaintEngine
from repro.lint.rules.determinism import (
    _DT_CLASSES,
    _WALL_CLOCK_DT_ATTRS,
    _WALL_CLOCK_TIME_ATTRS,
    _from_imports,
    _module_aliases,
)

#: Components whose state is simulation state: a wall value reaching a
#: call or attribute here breaks the pure-function-of-the-seed promise.
SIM_DOMAIN: FrozenSet[str] = frozenset({"sim", "db", "core", "workload", "obs"})

#: Report-constructor keywords sanctioned to carry wall-clock values.
WALL_METADATA_FIELDS: FrozenSet[str] = frozenset({"wall_seconds", "phase_seconds"})

#: Attribute reads that re-introduce wall taint (reading metadata back).
_WALL_METADATA_ATTRS: FrozenSet[str] = WALL_METADATA_FIELDS

_LABEL = "wall-clock"


class _SourceDetector:
    """Per-module wall-clock source detection (same shapes as SL002)."""

    def __init__(self, analysis: FlowAnalysis) -> None:
        self.analysis = analysis
        self._cache: Dict[str, Tuple[Set[str], Set[str], Dict[str, str], Dict[str, str]]] = {}

    def _tables(self, module: str) -> Tuple[Set[str], Set[str], Dict[str, str], Dict[str, str]]:
        cached = self._cache.get(module)
        if cached is not None:
            return cached
        tree = self.analysis.symbols.modules[module].module.ctx.tree
        time_aliases = _module_aliases(tree, "time")
        dt_aliases = _module_aliases(tree, "datetime")
        time_from = {
            name: original for name, (_node, original) in _from_imports(tree, "time").items()
        }
        dt_from = {
            name: original
            for name, (_node, original) in _from_imports(tree, "datetime").items()
        }
        result = (time_aliases, dt_aliases, time_from, dt_from)
        self._cache[module] = result
        return result

    def __call__(self, expr: ast.expr, func: FunctionInfo) -> Optional[str]:
        if isinstance(expr, ast.Attribute):
            # Reading declared wall metadata back off a report object.
            if isinstance(expr.ctx, ast.Load) and expr.attr in _WALL_METADATA_ATTRS:
                return _LABEL
            return None
        if not isinstance(expr, ast.Call):
            return None
        f = expr.func
        time_aliases, dt_aliases, time_from, dt_from = self._tables(func.module)
        if isinstance(f, ast.Name):
            original = time_from.get(f.id)
            if original in _WALL_CLOCK_TIME_ATTRS:
                return _LABEL
            return None
        if not isinstance(f, ast.Attribute):
            return None
        base = f.value
        if isinstance(base, ast.Name):
            if base.id in time_aliases and f.attr in _WALL_CLOCK_TIME_ATTRS:
                return _LABEL
            if dt_from.get(base.id) in _DT_CLASSES and f.attr in _WALL_CLOCK_DT_ATTRS:
                return _LABEL
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in dt_aliases
            and base.attr in _DT_CLASSES
            and f.attr in _WALL_CLOCK_DT_ATTRS
        ):
            return _LABEL
        return None


@register_flow
class ClockDomainRule(FlowRule):
    """SF002: wall-clock values never cross into the simulation domain."""

    rule_id = "SF002"
    summary = "wall-clock taint never reaches sim-time state or report fields"

    def check(self, analysis: FlowAnalysis) -> Iterator[Violation]:
        detector = _SourceDetector(analysis)
        engine = TaintEngine(
            analysis.program, analysis.symbols, analysis.callgraph, detector
        )
        for func in analysis.callgraph.functions_in_postorder():
            env = engine.env_of(func.qualname)
            type_env = analysis.symbols.local_types(func)
            mod = analysis.symbols.modules[func.module].module
            for node in ast.walk(func.node):
                if isinstance(node, ast.Call):
                    yield from self._check_call(
                        analysis, engine, func, mod, node, env, type_env
                    )
                elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    yield from self._check_attr_store(
                        analysis, engine, func, mod, node, env, type_env
                    )

    # -- sinks ----------------------------------------------------------

    def _tainted(self, engine: TaintEngine, func: FunctionInfo, expr: ast.expr, env) -> bool:
        return _LABEL in engine._expr_labels(func, expr, env)

    def _check_call(
        self,
        analysis: FlowAnalysis,
        engine: TaintEngine,
        func: FunctionInfo,
        mod,
        node: ast.Call,
        env,
        type_env,
    ) -> Iterator[Violation]:
        target = analysis.symbols.resolve_call_target(func.module, node.func, type_env)
        if target is None:
            return
        kind, qualname = target
        component: Optional[str]
        class_name: Optional[str] = None
        if kind == "class":
            cls = analysis.symbols.classes.get(qualname)
            component = cls.component if cls is not None else None
            class_name = cls.name if cls is not None else qualname.rsplit(".", 1)[-1]
        else:
            info = analysis.symbols.functions.get(qualname)
            component = info.component if info is not None else None
            if info is not None and info.class_name is not None:
                class_name = info.class_name
        is_report_ctor = (
            kind == "class" and class_name is not None and class_name.endswith("Report")
        )
        for arg in node.args:
            if self._tainted(engine, func, arg, env):
                if is_report_ctor:
                    yield self.violation(
                        mod,
                        arg,
                        "wall-clock value flows into a positional report field; "
                        "only the declared wall-metadata keywords "
                        f"({', '.join(sorted(WALL_METADATA_FIELDS))}) may carry it",
                    )
                elif component in SIM_DOMAIN:
                    yield self.violation(
                        mod,
                        arg,
                        f"wall-clock value flows into {qualname} "
                        f"({component} component); sim-time state must be a pure "
                        "function of the seed — derive times from Simulator.now "
                        "or config instead",
                    )
        for kw in node.keywords:
            if kw.value is None or not self._tainted(engine, func, kw.value, env):
                continue
            if is_report_ctor:
                if kw.arg in WALL_METADATA_FIELDS:
                    continue
                yield self.violation(
                    mod,
                    kw.value,
                    f"wall-clock value flows into report field {kw.arg!r}; only "
                    f"the declared wall-metadata fields "
                    f"({', '.join(sorted(WALL_METADATA_FIELDS))}) may carry it — "
                    "they are excluded from the byte-identity contract",
                )
            elif component in SIM_DOMAIN:
                yield self.violation(
                    mod,
                    kw.value,
                    f"wall-clock value flows into {qualname} argument "
                    f"{kw.arg!r} ({component} component); sim-time state must "
                    "be a pure function of the seed",
                )

    def _check_attr_store(
        self,
        analysis: FlowAnalysis,
        engine: TaintEngine,
        func: FunctionInfo,
        mod,
        node,
        env,
        type_env,
    ) -> Iterator[Violation]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if value is None or not self._tainted(engine, func, value, env):
            return
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            owner_type = analysis.symbols._value_type(func.module, target.value, type_env)
            if owner_type is None:
                continue
            cls = analysis.symbols.classes.get(owner_type)
            if cls is None or cls.component not in SIM_DOMAIN:
                continue
            yield self.violation(
                mod,
                target,
                f"wall-clock value stored on {cls.name}.{target.attr} "
                f"({cls.component} component); sim objects must hold only "
                "seed-derived state",
            )
