"""SF003: cross-process capture discipline for the sweep pool.

Work shipped to the multiprocessing pool (and, next, to sharded
server processes) runs in a *forked copy* of the parent: anything
mutable that crosses the boundary silently forks into per-process
replicas.  Three hazards, none visible per file:

* a **non-module-level callable** (lambda, nested closure, bound
  method) submitted to the pool — unpicklable or, worse, capturing
  parent state by reference;
* **mutation after submit** — the parent mutating an object it already
  shipped, racing the pickling of in-flight tasks;
* **worker-reachable mutation of module globals** — any function
  reachable (via the call graph) from a submitted entry point that
  rebinds or mutates a module-level object: each worker mutates its own
  copy, and the divergence is invisible until results disagree.

Suppressions carry the burden of proof: a kept finding must argue the
mutated state is content-addressed or process-local by design.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.base import Violation
from repro.lint.flow.base import FlowAnalysis, FlowRule, register_flow
from repro.lint.flow.symbols import FunctionInfo

#: Pool/executor methods that ship a callable (first argument).
_SUBMIT_METHODS: FrozenSet[str] = frozenset(
    {
        "apply",
        "apply_async",
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "submit",
    }
)

#: Receiver names that make a ``.map``-style call a pool submission.
_POOLISH_MARKERS: Tuple[str, ...] = ("pool", "executor")

#: Constructors whose ``initializer=`` also enters worker processes.
_POOL_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"Pool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)

#: Method names that mutate their receiver in place.
_MUTATORS: FrozenSet[str] = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "sort",
        "reverse",
        "move_to_end",
    }
)


def _receiver_is_poolish(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        name = expr.id.lower()
    elif isinstance(expr, ast.Attribute):
        name = expr.attr.lower()
    elif isinstance(expr, ast.Call):
        return _callee_name(expr) in _POOL_CONSTRUCTORS or _receiver_is_poolish(expr.func)
    else:
        return False
    return any(marker in name for marker in _POOLISH_MARKERS)


def _callee_name(call: ast.Call) -> Optional[str]:
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def _names_in(expr: ast.expr) -> Set[str]:
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


class _SubmitSite:
    """One call that ships work (callable + payload) to the pool."""

    __slots__ = ("func", "node", "callable_exprs", "payload_names")

    def __init__(self, func: FunctionInfo, node: ast.Call) -> None:
        self.func = func
        self.node = node
        self.callable_exprs: List[ast.expr] = []
        self.payload_names: Set[str] = set()


@register_flow
class CrossProcessCaptureRule(FlowRule):
    """SF003: objects crossing the process-pool boundary stay immutable."""

    rule_id = "SF003"
    summary = "pool-shipped callables are module-level; no mutation across the boundary"

    def check(self, analysis: FlowAnalysis) -> Iterator[Violation]:
        sites = self._submit_sites(analysis)
        entry_points: Set[str] = set()
        for site in sites:
            yield from self._check_callables(analysis, site, entry_points)
            yield from self._check_mutation_after_submit(analysis, site)
        yield from self._check_worker_globals(analysis, entry_points)

    # -- discovery ------------------------------------------------------

    def _submit_sites(self, analysis: FlowAnalysis) -> List[_SubmitSite]:
        sites: List[_SubmitSite] = []
        for func in analysis.callgraph.functions_in_postorder():
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                site: Optional[_SubmitSite] = None
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in _SUBMIT_METHODS
                    and _receiver_is_poolish(f.value)
                ):
                    site = _SubmitSite(func, node)
                    if node.args:
                        site.callable_exprs.append(node.args[0])
                        for payload in node.args[1:]:
                            site.payload_names |= _names_in(payload)
                    for kw in node.keywords:
                        if kw.arg in (None, "chunksize", "timeout", "callback"):
                            continue
                        site.payload_names |= _names_in(kw.value)
                elif _callee_name(node) in _POOL_CONSTRUCTORS:
                    site = _SubmitSite(func, node)
                    for kw in node.keywords:
                        if kw.arg == "initializer":
                            site.callable_exprs.append(kw.value)
                        elif kw.arg == "initargs":
                            site.payload_names |= _names_in(kw.value)
                if site is not None and (site.callable_exprs or site.payload_names):
                    sites.append(site)
        return sites

    # -- SF003a: callable shape ----------------------------------------

    def _check_callables(
        self,
        analysis: FlowAnalysis,
        site: _SubmitSite,
        entry_points: Set[str],
    ) -> Iterator[Violation]:
        mod = analysis.symbols.modules[site.func.module].module
        for expr in site.callable_exprs:
            if isinstance(expr, ast.Lambda):
                yield self.violation(
                    mod,
                    expr,
                    "lambda shipped to the process pool; workers need a "
                    "module-level function (picklable, no captured parent state)",
                )
                continue
            if isinstance(expr, ast.Attribute):
                yield self.violation(
                    mod,
                    expr,
                    "bound method shipped to the process pool; the receiver "
                    "object is pickled with it — ship a module-level function "
                    "and pass data explicitly",
                )
                continue
            if isinstance(expr, ast.Name):
                if self._is_nested_def(site.func, expr.id):
                    yield self.violation(
                        mod,
                        expr,
                        f"closure '{expr.id}' shipped to the process pool; "
                        "nested functions capture enclosing frames — hoist it "
                        "to module level and pass state as arguments",
                    )
                    continue
                resolved = analysis.symbols.resolve_name(site.func.module, expr.id)
                if resolved is not None and resolved in analysis.symbols.functions:
                    info = analysis.symbols.functions[resolved]
                    if info.class_name is None:
                        entry_points.add(resolved)
                    else:
                        yield self.violation(
                            mod,
                            expr,
                            f"method {info.local_name} shipped to the process "
                            "pool; ship a module-level function instead",
                        )

    def _is_nested_def(self, func: FunctionInfo, name: str) -> bool:
        for node in ast.walk(func.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func.node
                and node.name == name
            ):
                return True
        return False

    # -- SF003b: mutation after submit ---------------------------------

    def _check_mutation_after_submit(
        self, analysis: FlowAnalysis, site: _SubmitSite
    ) -> Iterator[Violation]:
        if not site.payload_names:
            return
        mod = analysis.symbols.modules[site.func.module].module
        submit_line = site.node.lineno
        for node in ast.walk(site.func.node):
            lineno = getattr(node, "lineno", None)
            if lineno is None or lineno < submit_line:
                continue
            mutated = self._mutated_name(node)
            if mutated is not None and mutated in site.payload_names:
                yield self.violation(
                    mod,
                    node,
                    f"'{mutated}' is mutated after being shipped to the process "
                    "pool; in-flight tasks pickle lazily, so the workers may "
                    "see either version — finish all mutation before submit",
                )

    def _mutated_name(self, node: ast.AST) -> Optional[str]:
        """The base name a statement/expression mutates in place, if any."""
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, (ast.Subscript, ast.Attribute)):
                    target = t.value
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, (ast.Subscript, ast.Attribute)):
                target = node.target.value
        elif isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr in _MUTATORS:
                target = f.value
        if isinstance(target, ast.Name):
            return target.id
        return None

    # -- SF003c: worker-reachable global mutation -----------------------

    def _check_worker_globals(
        self, analysis: FlowAnalysis, entry_points: Set[str]
    ) -> Iterator[Violation]:
        if not entry_points:
            return
        reachable = analysis.callgraph.reachable_from(entry_points)
        mutates_self = self._self_mutation_summaries(analysis)
        for qualname in sorted(reachable):
            # Constructor edges may point at classes with no explicit
            # __init__ (dataclasses, inherited) — nothing to inspect.
            func = analysis.symbols.functions.get(qualname)
            if func is None:
                continue
            mod = analysis.symbols.modules[func.module].module
            syms = analysis.symbols.modules[func.module]
            global_names = self._declared_globals(func)
            local_names = self._local_bindings(func)
            for node in ast.walk(func.node):
                # Rebinding a module global inside a worker-reachable body.
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in global_names
                        ):
                            yield self.violation(
                                mod,
                                node,
                                f"worker-reachable '{func.local_name}' rebinds "
                                f"module global '{target.id}'; each pool process "
                                "rebinds its own copy and the fleet diverges — "
                                "pass state through arguments or return values",
                            )
                # Mutating a module-global container / instance.
                mutated = self._mutated_name(node)
                if (
                    mutated is not None
                    and mutated not in local_names
                    and mutated in syms.global_assigns
                ):
                    yield self.violation(
                        mod,
                        node,
                        f"worker-reachable '{func.local_name}' mutates module "
                        f"global '{mutated}'; each pool process mutates a "
                        "private copy — make it immutable or content-addressed",
                    )
                # Calling a self-mutating method on a module-global instance.
                if isinstance(node, ast.Call):
                    yield from self._check_global_method_call(
                        analysis, func, mod, syms, node, local_names, mutates_self
                    )

    def _check_global_method_call(
        self,
        analysis: FlowAnalysis,
        func: FunctionInfo,
        mod,
        syms,
        node: ast.Call,
        local_names: Set[str],
        mutates_self: Dict[str, bool],
    ) -> Iterator[Violation]:
        f = node.func
        if not (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id not in local_names
            and f.value.id in syms.global_assigns
        ):
            return
        value = syms.global_assigns[f.value.id]
        owner = analysis.symbols._value_type(func.module, value, {})
        if owner is None:
            return
        method = analysis.symbols.lookup_method(owner, f.attr)
        if method is None or not mutates_self.get(method.qualname, False):
            return
        yield self.violation(
            mod,
            node,
            f"worker-reachable '{func.local_name}' calls "
            f"{f.value.id}.{f.attr}(), which mutates the module-global "
            f"{owner.rsplit('.', 1)[-1]} instance; per-process copies diverge "
            "silently — keep cross-process state immutable or content-addressed",
        )

    def _self_mutation_summaries(self, analysis: FlowAnalysis) -> Dict[str, bool]:
        """qualname → does this method assign/mutate ``self`` state?"""
        summaries: Dict[str, bool] = {}
        for qualname, func in analysis.symbols.functions.items():
            if func.class_name is None:
                summaries[qualname] = False
                continue
            summaries[qualname] = self._mutates_self(func)
        # One level of indirection: a method calling a sibling that
        # mutates self also mutates self.
        for qualname, func in analysis.symbols.functions.items():
            if summaries[qualname] or func.class_name is None:
                continue
            for node in ast.walk(func.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    sibling = analysis.symbols.lookup_method(
                        f"{func.module}.{func.class_name}", node.func.attr
                    )
                    if sibling is not None and summaries.get(sibling.qualname, False):
                        summaries[qualname] = True
                        break
        return summaries

    def _mutates_self(self, func: FunctionInfo) -> bool:
        for node in ast.walk(func.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id == "self"
                        and not isinstance(target, ast.Name)
                    ):
                        return True
            elif isinstance(node, ast.Call):
                f = node.func
                if isinstance(f, ast.Attribute) and f.attr in _MUTATORS:
                    base = f.value
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        base = base.value
                    if isinstance(base, ast.Name) and base.id == "self":
                        return True
        return False

    # -- helpers --------------------------------------------------------

    def _declared_globals(self, func: FunctionInfo) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Global):
                names.update(node.names)
        return names

    def _local_bindings(self, func: FunctionInfo) -> Set[str]:
        """Names bound locally (params + assignments) in ``func``."""
        args = func.node.args
        names: Set[str] = {
            a.arg
            for a in list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        }
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        globals_declared = self._declared_globals(func)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                for sub in ast.walk(node.optional_vars):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func.node:
                    names.add(node.name)
            elif isinstance(node, ast.comprehension):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        return names - globals_declared
