"""Built-in simflow rules (SF001-SF004).

Importing this package registers every flow rule with the registry in
:mod:`repro.lint.flow.base`, mirroring the per-file rules package.
"""

from repro.lint.flow.rules import capture, clock, escape, streams

__all__ = ["capture", "clock", "escape", "streams"]
