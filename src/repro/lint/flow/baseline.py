"""Ratchet baseline for flow findings.

A baseline file records the findings a tree is *known* to carry, so CI
can enforce "no new findings" while the backlog is burned down.  Each
entry is a fingerprint of ``(rule, repro-relative path, message)`` —
deliberately line-number-free, so unrelated edits above a finding do
not churn the file — plus a count, so N identical findings in one file
are ratcheted exactly.

Workflow::

    python -m repro.lint --flow src/repro --write-baseline   # accept today
    python -m repro.lint --flow src/repro                    # fails on NEW findings
    # fix a finding, re-run --write-baseline: the file shrinks (ratchet)

Stale entries (baselined findings that no longer occur) are reported so
the baseline only ever shrinks on purpose, never rots.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.base import Violation

#: Conventional baseline location, repo-root relative.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_FORMAT_VERSION = 1


def normalize_path(path: str) -> str:
    """A stable, invocation-independent form of a violation path.

    Keeps everything from the last ``repro`` path segment on
    (``/abs/src/repro/db/server.py`` → ``repro/db/server.py``), so the
    same finding fingerprints identically from any working directory.
    """
    posix = Path(path).as_posix()
    parts = posix.split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return posix


def fingerprint(violation: Violation) -> str:
    """Stable identity of one finding (line numbers excluded)."""
    payload = f"{violation.rule_id}|{normalize_path(violation.path)}|{violation.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    new: List[Violation]
    suppressed: List[Violation]
    stale: List[Dict[str, object]]  # baseline entries no longer observed


class Baseline:
    """A loaded (or empty) ratchet baseline."""

    def __init__(self, counts: Dict[str, int], entries: List[Dict[str, object]]) -> None:
        self.counts = counts
        self.entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(counts={}, entries=[])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported baseline format")
        entries = data.get("entries", [])
        counts: Dict[str, int] = {}
        for entry in entries:
            fp = str(entry["fingerprint"])
            counts[fp] = counts.get(fp, 0) + int(entry.get("count", 1))
        return cls(counts=counts, entries=list(entries))

    @classmethod
    def from_violations(cls, violations: List[Violation]) -> "Baseline":
        grouped: Dict[str, Tuple[Violation, int]] = {}
        for violation in violations:
            fp = fingerprint(violation)
            if fp in grouped:
                grouped[fp] = (grouped[fp][0], grouped[fp][1] + 1)
            else:
                grouped[fp] = (violation, 1)
        entries = [
            {
                "fingerprint": fp,
                "rule": v.rule_id,
                "path": normalize_path(v.path),
                "message": v.message,
                "count": count,
            }
            for fp, (v, count) in sorted(grouped.items(), key=lambda kv: (
                kv[1][0].rule_id, normalize_path(kv[1][0].path), kv[0]
            ))
        ]
        counts = {fp: count for fp, (_v, count) in grouped.items()}
        return cls(counts=counts, entries=entries)

    def write(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "tool": "simflow",
            "entries": self.entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def filter(self, violations: List[Violation]) -> BaselineResult:
        """Split findings into new-vs-baselined; report stale entries."""
        remaining = dict(self.counts)
        new: List[Violation] = []
        suppressed: List[Violation] = []
        for violation in violations:
            fp = fingerprint(violation)
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                suppressed.append(violation)
            else:
                new.append(violation)
        stale = [
            {**entry, "unmatched": remaining[str(entry["fingerprint"])]}
            for entry in self.entries
            if remaining.get(str(entry["fingerprint"]), 0) > 0
        ]
        return BaselineResult(new=new, suppressed=suppressed, stale=stale)
