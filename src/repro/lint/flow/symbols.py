"""Symbol table and lightweight type resolution for simflow.

Builds, from a loaded :class:`~repro.lint.flow.loader.Program`, the
facts the interprocedural rules need:

* per-module import tables (``from repro.sim.rng import RandomStreams``
  → local name ``RandomStreams`` means ``repro.sim.rng.RandomStreams``),
* every function/method and class with its component,
* a *lightweight* type environment: parameter annotations, locals
  assigned from constructor calls, ``self`` attributes assigned in
  ``__init__`` — enough to resolve method calls like
  ``streams.stream(...)`` to the class that defines them, without
  attempting full inference.

Everything here is deliberately conservative: when a name cannot be
resolved the answer is ``None``, and rules treat unresolved values as
"unknown", not as violations (except where a rule's contract says an
unresolvable value *is* the hazard, e.g. SF001 stream names).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from repro.lint.flow.loader import ModuleFile, Program

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclasses.dataclass
class FunctionInfo:
    """One function or method of the program."""

    qualname: str  # "repro.db.server.Server.submit_query"
    module: str  # "repro.db.server"
    local_name: str  # "Server.submit_query"
    node: FuncDef
    class_name: Optional[str]  # "Server" for methods, None for functions
    component: Optional[str]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclasses.dataclass
class ClassInfo:
    """One class definition, with its methods and inferred attr types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    component: Optional[str]
    methods: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    base_names: List[str] = dataclasses.field(default_factory=list)
    #: ``self.<attr>`` → class qualname, from __init__ assignments and
    #: annotated class-level declarations.
    attr_types: Dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ModuleSymbols:
    """Name bindings visible at one module's top level."""

    module: ModuleFile
    #: local name → fully qualified target ("RandomStreams" →
    #: "repro.sim.rng.RandomStreams"; "np" → "numpy").
    imports: Dict[str, str] = dataclasses.field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    #: module-level ``NAME = <expr>`` assignments (last one wins).
    global_assigns: Dict[str, ast.expr] = dataclasses.field(default_factory=dict)
    #: module-level string constants, for constant propagation.
    str_constants: Dict[str, str] = dataclasses.field(default_factory=dict)


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """The dotted name an annotation refers to, unwrapping Optional/quotes.

    ``Optional[RandomStreams]`` → ``RandomStreams``;
    ``"Simulator"`` → ``Simulator``; unsupported shapes → None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = _annotation_name(node.value)
        if base in ("Optional", "typing.Optional"):
            return _annotation_name(node.slice)
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
            return ".".join(reversed(parts))
    return None


class SymbolTable:
    """Program-wide symbol and type resolution."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.modules: Dict[str, ModuleSymbols] = {}
        #: every FunctionInfo keyed by full qualname.
        self.functions: Dict[str, FunctionInfo] = {}
        #: every ClassInfo keyed by full qualname.
        self.classes: Dict[str, ClassInfo] = {}
        for mod in program.sorted_modules():
            self._index_module(mod)
        for mod_syms in self.modules.values():
            for cls in mod_syms.classes.values():
                self._infer_attr_types(mod_syms, cls)

    # -- indexing -------------------------------------------------------

    def _index_module(self, mod: ModuleFile) -> None:
        syms = ModuleSymbols(module=mod, imports=_collect_imports(mod.ctx.tree))
        for stmt in mod.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{mod.name}.{stmt.name}",
                    module=mod.name,
                    local_name=stmt.name,
                    node=stmt,
                    class_name=None,
                    component=mod.component,
                )
                syms.functions[stmt.name] = info
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{mod.name}.{stmt.name}",
                    module=mod.name,
                    name=stmt.name,
                    node=stmt,
                    component=mod.component,
                    base_names=[
                        name
                        for name in (_annotation_name(base) for base in stmt.bases)
                        if name is not None
                    ],
                )
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            qualname=f"{cls.qualname}.{sub.name}",
                            module=mod.name,
                            local_name=f"{stmt.name}.{sub.name}",
                            node=sub,
                            class_name=stmt.name,
                            component=mod.component,
                        )
                        cls.methods[sub.name] = info
                        self.functions[info.qualname] = info
                syms.classes[stmt.name] = cls
                self.classes[cls.qualname] = cls
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        syms.global_assigns[target.id] = stmt.value
                        if isinstance(stmt.value, ast.Constant) and isinstance(
                            stmt.value.value, str
                        ):
                            syms.str_constants[target.id] = stmt.value.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None:
                    syms.global_assigns[stmt.target.id] = stmt.value
                    if isinstance(stmt.value, ast.Constant) and isinstance(
                        stmt.value.value, str
                    ):
                        syms.str_constants[stmt.target.id] = stmt.value.value
        self.modules[mod.name] = syms

    def _infer_attr_types(self, syms: ModuleSymbols, cls: ClassInfo) -> None:
        """Populate ``cls.attr_types`` from annotations and __init__."""
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                resolved = self.resolve_class_annotation(syms.module.name, stmt.annotation)
                if resolved is not None:
                    cls.attr_types[stmt.target.id] = resolved
        init = cls.methods.get("__init__")
        if init is None:
            return
        param_types = self.parameter_types(init)
        for node in ast.walk(init.node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                resolved: Optional[str] = None
                if isinstance(node, ast.AnnAssign):
                    resolved = self.resolve_class_annotation(
                        syms.module.name, node.annotation
                    )
                if resolved is None and value is not None:
                    resolved = self._value_type(syms.module.name, value, param_types)
                if resolved is not None:
                    cls.attr_types.setdefault(target.attr, resolved)

    # -- resolution -----------------------------------------------------

    def resolve_name(self, module: str, name: str) -> Optional[str]:
        """What fully qualified target a bare name means in ``module``."""
        syms = self.modules.get(module)
        if syms is None:
            return None
        if name in syms.imports:
            return syms.imports[name]
        if name in syms.functions:
            return syms.functions[name].qualname
        if name in syms.classes:
            return syms.classes[name].qualname
        if name in syms.global_assigns:
            return f"{module}.{name}"
        return None

    def resolve_dotted(self, module: str, expr: ast.expr) -> Optional[str]:
        """Resolve an attribute chain (``pkg.mod.attr``) to a dotted path."""
        parts: List[str] = []
        cur = expr
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.resolve_name(module, cur.id)
        if base is None:
            base = cur.id
        return ".".join([base] + list(reversed(parts)))

    def resolve_class_annotation(self, module: str, ann: Optional[ast.expr]) -> Optional[str]:
        """Annotation → qualname of a *program* class, else None."""
        name = _annotation_name(ann)
        if name is None:
            return None
        if "." in name:
            head, rest = name.split(".", 1)
            base = self.resolve_name(module, head)
            candidate = f"{base}.{rest}" if base else name
        else:
            candidate = self.resolve_name(module, name) or name
        return candidate if candidate in self.classes else None

    def lookup_method(self, class_qualname: str, method: str) -> Optional[FunctionInfo]:
        """Find ``method`` on a class or (program-resolvable) bases."""
        seen = set()
        stack = [class_qualname]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.base_names:
                resolved = self.resolve_class_annotation(
                    cls.module, ast.Name(id=base, ctx=ast.Load())
                )
                if resolved is None and "." not in base:
                    maybe = self.resolve_name(cls.module, base)
                    resolved = maybe if maybe in self.classes else None
                if resolved is not None:
                    stack.append(resolved)
        return None

    # -- lightweight typing --------------------------------------------

    def parameter_types(self, func: FunctionInfo) -> Dict[str, str]:
        """Parameter name → class qualname, from annotations (+ self)."""
        types: Dict[str, str] = {}
        args = func.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            resolved = self.resolve_class_annotation(func.module, arg.annotation)
            if resolved is not None:
                types[arg.arg] = resolved
        if func.class_name is not None:
            positional = list(args.posonlyargs) + list(args.args)
            if positional and positional[0].arg in ("self", "cls"):
                types[positional[0].arg] = f"{func.module}.{func.class_name}"
        return types

    def _value_type(
        self,
        module: str,
        value: ast.expr,
        env: Dict[str, str],
    ) -> Optional[str]:
        """Type of an expression under ``env``: constructor calls,
        annotated-return calls, plain name copies, self-attr reads."""
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            owner = env.get(value.value.id)
            if owner is not None:
                cls = self.classes.get(owner)
                if cls is not None and value.attr in cls.attr_types:
                    return cls.attr_types[value.attr]
            return None
        if isinstance(value, ast.Call):
            target = self.resolve_call_target(module, value.func, env)
            if target is None:
                return None
            kind, qualname = target
            if kind == "class":
                return qualname
            func = self.functions.get(qualname)
            if func is not None:
                return self.resolve_class_annotation(func.module, func.node.returns)
        return None

    def local_types(self, func: FunctionInfo) -> Dict[str, str]:
        """Name → class qualname for ``func``'s parameters and locals.

        Iterates assignment propagation to a small fixpoint so chains
        like ``a = RandomStreams(s); b = a`` resolve.
        """
        env = self.parameter_types(func)
        for _ in range(3):  # bounded: local chains are short
            changed = False
            for node in ast.walk(func.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                resolved: Optional[str] = None
                if isinstance(node, ast.AnnAssign):
                    resolved = self.resolve_class_annotation(func.module, node.annotation)
                if resolved is None and value is not None:
                    resolved = self._value_type(func.module, value, env)
                if resolved is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and env.get(target.id) != resolved:
                        env[target.id] = resolved
                        changed = True
            if not changed:
                break
        return env

    def resolve_call_target(
        self,
        module: str,
        func_expr: ast.expr,
        env: Optional[Dict[str, str]] = None,
    ) -> Optional[Tuple[str, str]]:
        """Resolve a call's function expression.

        Returns ``("func", qualname)`` for a program function/method,
        ``("class", qualname)`` for a program class constructor, or
        None for anything outside the program (stdlib, unresolvable).
        """
        env = env or {}
        if isinstance(func_expr, ast.Name):
            target = self.resolve_name(module, func_expr.id)
            if target is None:
                return None
            if target in self.classes:
                return ("class", target)
            if target in self.functions:
                return ("func", target)
            return None
        if isinstance(func_expr, ast.Attribute):
            # obj.method(...) where obj's class is known
            receiver_type = self._value_type(module, func_expr.value, env)
            if receiver_type is None and isinstance(func_expr.value, ast.Name):
                receiver_type = env.get(func_expr.value.id)
            if receiver_type is not None:
                method = self.lookup_method(receiver_type, func_expr.attr)
                if method is not None:
                    return ("func", method.qualname)
                return None
            # pkg.mod.func(...) through an import
            dotted = self.resolve_dotted(module, func_expr)
            if dotted is None:
                return None
            if dotted in self.classes:
                return ("class", dotted)
            if dotted in self.functions:
                return ("func", dotted)
            return None
        return None
