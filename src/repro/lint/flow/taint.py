"""A small interprocedural taint engine for simflow.

Rules declare *sources* (expressions that introduce a labelled taint,
e.g. "wall-clock") and the engine answers, for any expression in any
function, which labels can reach it.  The analysis is:

* **intraprocedural**: flow-insensitive per function — assignments are
  iterated to a fixpoint, so ``a = time.time(); b = a`` taints ``b``
  regardless of statement order subtleties;
* **interprocedural via summaries**: each function gets a summary
  (labels its return value can carry from its own body, and whether
  argument taint can pass through to the return value), propagated over
  the call graph to a global fixpoint.

Taint propagates through arithmetic, subscripts, attribute reads on
tainted objects, container literals, a small allowlist of transparent
builtins (``min``/``max``/...), and resolved program calls.  Unresolved
non-builtin calls do *not* propagate argument taint — the engine
prefers missing a flow to drowning the report in false positives.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Optional, Set

from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.loader import Program
from repro.lint.flow.symbols import FunctionInfo, SymbolTable

#: Builtins whose result carries their arguments' taint.
_TRANSPARENT_BUILTINS: FrozenSet[str] = frozenset(
    {"min", "max", "abs", "round", "float", "int", "sum", "sorted", "list",
     "tuple", "dict", "set", "len", "str"}
)

#: A source detector: labels introduced by a call expression (resolved
#: against the symbol table by the rule), or None.
SourceFn = Callable[[ast.expr, FunctionInfo], Optional[str]]

Labels = Set[str]


class FunctionSummary:
    """What a function's return value can carry."""

    __slots__ = ("return_labels", "propagates_args")

    def __init__(self) -> None:
        self.return_labels: Labels = set()
        #: True when taint on any argument can reach the return value.
        self.propagates_args = False


class TaintEngine:
    """Label propagation over one loaded program."""

    def __init__(
        self,
        program: Program,
        symbols: SymbolTable,
        callgraph: CallGraph,
        source: SourceFn,
    ) -> None:
        self.program = program
        self.symbols = symbols
        self.callgraph = callgraph
        self.source = source
        self.summaries: Dict[str, FunctionSummary] = {
            qual: FunctionSummary() for qual in symbols.functions
        }
        self._envs: Dict[str, Dict[str, Labels]] = {}
        self._type_envs: Dict[str, Dict[str, str]] = {}
        self._solve()

    # -- public API -----------------------------------------------------

    def env_of(self, qualname: str) -> Dict[str, Labels]:
        """Final name → labels environment of one function."""
        return self._envs.get(qualname, {})

    def labels_of(self, func: FunctionInfo, expr: ast.expr) -> Labels:
        """Labels that can reach ``expr`` inside ``func``."""
        return self._expr_labels(func, expr, self.env_of(func.qualname))

    # -- solving --------------------------------------------------------

    def _solve(self) -> None:
        # Pass 1: argument-pass-through summaries (pure structure, no
        # sources): does any parameter's value reach the return?
        for qualname in sorted(self.symbols.functions):
            func = self.symbols.functions[qualname]
            self.summaries[qualname].propagates_args = self._params_reach_return(func)
        # Pass 2..n: propagate source labels through bodies and call
        # edges until summaries stop changing.
        for _ in range(12):  # depth bound; real chains are shallow
            changed = False
            for qualname in sorted(self.symbols.functions):
                func = self.symbols.functions[qualname]
                env = self._analyze_body(func)
                self._envs[qualname] = env
                ret = self._return_labels(func, env)
                summary = self.summaries[qualname]
                if not ret <= summary.return_labels:
                    summary.return_labels |= ret
                    changed = True
            if not changed:
                break

    def _type_env(self, func: FunctionInfo) -> Dict[str, str]:
        env = self._type_envs.get(func.qualname)
        if env is None:
            env = self.symbols.local_types(func)
            self._type_envs[func.qualname] = env
        return env

    def _params_reach_return(self, func: FunctionInfo) -> bool:
        args = func.node.args
        param_names = {
            a.arg
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            if a.arg not in ("self", "cls")
        }
        if not param_names:
            return False
        env: Dict[str, Labels] = {name: {"<arg>"} for name in param_names}
        env = self._propagate_assignments(func, env, with_sources=False)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if "<arg>" in self._expr_labels(func, node.value, env, with_sources=False):
                    return True
        return False

    def _analyze_body(self, func: FunctionInfo) -> Dict[str, Labels]:
        return self._propagate_assignments(func, {}, with_sources=True)

    def _propagate_assignments(
        self,
        func: FunctionInfo,
        env: Dict[str, Labels],
        with_sources: bool,
    ) -> Dict[str, Labels]:
        env = {name: set(labels) for name, labels in env.items()}
        for _ in range(6):  # local chains are short
            changed = False
            for node in ast.walk(func.node):
                targets: list = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = list(node.targets), node.value
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets, value = [node.target], node.value
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    targets, value = [node.target], node.iter
                elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                    targets, value = [node.optional_vars], node.context_expr
                if value is None:
                    continue
                labels = self._expr_labels(func, value, env, with_sources=with_sources)
                if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                    labels = labels | env.get(node.target.id, set())
                if not labels:
                    continue
                for target in targets:
                    changed |= self._taint_target(target, labels, env)
            if not changed:
                break
        return env

    def _taint_target(
        self, target: ast.expr, labels: Labels, env: Dict[str, Labels]
    ) -> bool:
        """Apply ``labels`` to an assignment target; True when env grew."""
        if isinstance(target, ast.Name):
            have = env.setdefault(target.id, set())
            if labels <= have:
                return False
            have |= labels
            return True
        if isinstance(target, (ast.Tuple, ast.List)):
            changed = False
            for elt in target.elts:
                changed |= self._taint_target(elt, labels, env)
            return changed
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            # d[k] = tainted / obj.attr = tainted: the container itself
            # becomes tainted when it is a plain local name.
            base = target.value
            if isinstance(base, ast.Name):
                return self._taint_target(base, labels, env)
        return False

    def _return_labels(self, func: FunctionInfo, env: Dict[str, Labels]) -> Labels:
        labels: Labels = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                labels |= self._expr_labels(func, node.value, env)
        return labels

    # -- expression labelling ------------------------------------------

    def _expr_labels(
        self,
        func: FunctionInfo,
        expr: ast.expr,
        env: Dict[str, Labels],
        with_sources: bool = True,
    ) -> Labels:
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, set()))
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Call):
            labels: Labels = set()
            if with_sources:
                src = self.source(expr, func)
                if src is not None:
                    labels.add(src)
            arg_labels: Labels = set()
            for arg in list(expr.args) + [kw.value for kw in expr.keywords]:
                arg_labels |= self._expr_labels(func, arg, env, with_sources)
            target = self.symbols.resolve_call_target(
                func.module, expr.func, self._type_env(func)
            )
            if target is not None and target[0] == "func":
                summary = self.summaries.get(target[1])
                if summary is not None:
                    labels |= summary.return_labels
                    if summary.propagates_args:
                        labels |= arg_labels
            elif (
                isinstance(expr.func, ast.Name)
                and expr.func.id in _TRANSPARENT_BUILTINS
            ):
                labels |= arg_labels
            # receiver taint flows through method calls on tainted objects
            # (e.g. reading from a tainted dict via .get / .items).
            if isinstance(expr.func, ast.Attribute):
                labels |= self._expr_labels(func, expr.func.value, env, with_sources)
            return labels
        if isinstance(expr, ast.BinOp):
            return self._expr_labels(func, expr.left, env, with_sources) | self._expr_labels(
                func, expr.right, env, with_sources
            )
        if isinstance(expr, ast.UnaryOp):
            return self._expr_labels(func, expr.operand, env, with_sources)
        if isinstance(expr, ast.IfExp):
            return self._expr_labels(func, expr.body, env, with_sources) | self._expr_labels(
                func, expr.orelse, env, with_sources
            )
        if isinstance(expr, ast.Subscript):
            return self._expr_labels(func, expr.value, env, with_sources)
        if isinstance(expr, ast.Attribute):
            base = expr.value
            labels = set()
            if with_sources:
                src = self.source(expr, func)
                if src is not None:
                    labels.add(src)
            labels |= self._expr_labels(func, base, env, with_sources)
            return labels
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            labels = set()
            for elt in expr.elts:
                labels |= self._expr_labels(func, elt, env, with_sources)
            return labels
        if isinstance(expr, ast.Dict):
            labels = set()
            for key in expr.keys:
                if key is not None:
                    labels |= self._expr_labels(func, key, env, with_sources)
            for value in expr.values:
                labels |= self._expr_labels(func, value, env, with_sources)
            return labels
        if isinstance(expr, ast.JoinedStr):
            return set()  # stringified values no longer act as clock values
        if isinstance(expr, ast.Starred):
            return self._expr_labels(func, expr.value, env, with_sources)
        if isinstance(expr, ast.NamedExpr):
            return self._expr_labels(func, expr.value, env, with_sources)
        if isinstance(expr, ast.BoolOp):
            labels = set()
            for value in expr.values:
                labels |= self._expr_labels(func, value, env, with_sources)
            return labels
        return set()
