"""Whole-program loading for simflow.

simlint's per-file rules parse one module at a time; the flow rules
(SF001-SF004) need the *whole* ``repro`` tree in memory at once so they
can follow a value across module boundaries.  :func:`load_program`
walks the same file set as :func:`repro.lint.walker.discover_files`,
parses every module exactly once into the existing
:class:`~repro.lint.walker.FileContext` (so suppression comments and
component classification behave identically in both layers), and
assigns each file its dotted module name.

Module naming: inside an importable tree the name is anchored at the
last ``repro`` directory (``src/repro/db/server.py`` →
``repro.db.server``); fixture trees without a ``repro`` anchor fall
back to the path relative to the scanned root, so tests can lay out
miniature programs in a temp directory.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.lint.walker import FileContext, discover_files


@dataclasses.dataclass
class ModuleFile:
    """One parsed module of the program under analysis."""

    name: str  # dotted module name, e.g. "repro.db.server"
    ctx: FileContext

    @property
    def component(self) -> Optional[str]:
        """Top-level subpackage (``db``, ``sim``, ...) or None."""
        return self.ctx.component

    @property
    def path(self) -> Path:
        return self.ctx.path


@dataclasses.dataclass
class Program:
    """Every module of the analyzed tree, keyed by dotted name."""

    modules: Dict[str, ModuleFile]

    def __iter__(self) -> "Iterable[ModuleFile]":  # pragma: no cover - trivial
        return iter(self.modules.values())

    def sorted_modules(self) -> List[ModuleFile]:
        """Modules in deterministic (name) order."""
        return [self.modules[name] for name in sorted(self.modules)]

    def get(self, name: str) -> Optional[ModuleFile]:
        return self.modules.get(name)


def module_name_for(path: Path, root: Optional[Path] = None) -> str:
    """The dotted module name for ``path``.

    Anchored at the last ``repro`` path part when one exists; otherwise
    relative to ``root`` (or just the file stem as a last resort).
    """
    parts = list(path.parts)
    stem_parts: List[str]
    if "repro" in parts[:-1]:
        idx = len(parts) - 1 - list(reversed(parts)).index("repro")
        stem_parts = parts[idx:]
    elif root is not None:
        try:
            stem_parts = list(path.relative_to(root).parts)
        except ValueError:
            stem_parts = [path.name]
    else:
        stem_parts = [path.name]
    if stem_parts and stem_parts[-1].endswith(".py"):
        stem_parts[-1] = stem_parts[-1][: -len(".py")]
    if stem_parts and stem_parts[-1] == "__init__":
        stem_parts = stem_parts[:-1]
    if not stem_parts:
        return path.stem
    return ".".join(stem_parts)


def load_program(paths: Iterable[Path]) -> Program:
    """Parse every ``.py`` file under ``paths`` into a :class:`Program`.

    Raises :class:`repro.lint.walker.LintError` on unreadable or
    unparsable files, exactly like the per-file walker.
    """
    modules: Dict[str, ModuleFile] = {}
    path_list = [Path(p) for p in paths]
    roots = [p if p.is_dir() else p.parent for p in path_list]
    for file_path in discover_files(path_list):
        root = next((r for r in roots if r in file_path.parents or r == file_path.parent), None)
        ctx = FileContext.from_path(file_path)
        name = module_name_for(file_path, root=root)
        # Two files mapping to one dotted name (e.g. scanning two copies
        # of a tree) keep the first occurrence; discovery order is
        # sorted, so the choice is deterministic.
        if name not in modules:
            modules[name] = ModuleFile(name=name, ctx=ctx)
    return Program(modules=modules)
