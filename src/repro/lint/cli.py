"""The ``python -m repro.lint`` command line.

Exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error
(unknown rule, missing path, unparsable file).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.base import all_rules
from repro.lint.config import LintConfig
from repro.lint.walker import LintError, lint_paths

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _parse_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: AST-based determinism & USM-accounting checks "
            "(rules SL001-SL006; see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            scope = ", ".join(sorted(rule.components)) if rule.components else "all"
            print(f"{rule.rule_id}  [{scope}]  {rule.summary}")
        return EXIT_CLEAN

    select = _parse_rule_list(options.select)
    if options.select is not None and not select:
        # An empty selection would run zero rules and report "clean";
        # treat it as the misconfiguration it almost certainly is.
        print("error: --select given but names no rules", file=sys.stderr)
        return EXIT_ERROR

    try:
        config = LintConfig.from_rule_ids(
            select=select,
            ignore=_parse_rule_list(options.ignore) or (),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    try:
        violations, files_checked = lint_paths(
            [Path(p) for p in options.paths], config
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    counts = Counter(v.rule_id for v in violations)
    if options.format == "json":
        payload = {
            "ok": not violations,
            "files_checked": files_checked,
            "violation_count": len(violations),
            "counts_by_rule": dict(sorted(counts.items())),
            "violations": [v.as_dict() for v in violations],
        }
        print(json.dumps(payload, indent=2))
    else:
        for violation in violations:
            print(violation.render())
        noun = "file" if files_checked == 1 else "files"
        if violations:
            by_rule = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
            print(
                f"simlint: {len(violations)} violation(s) in {files_checked} {noun} "
                f"({by_rule})"
            )
        else:
            print(f"simlint: {files_checked} {noun} checked, no violations")

    return EXIT_VIOLATIONS if violations else EXIT_CLEAN
