"""The ``python -m repro.lint`` command line.

Two layers share this entry point:

* per-file rules (SL001-SL007) — the default;
* whole-program flow rules (SF001-SF004) — ``--flow``.

Exit codes: 0 = clean, 1 = violations found (after baseline filtering,
when one is given), 2 = usage or I/O error (unknown rule, missing path,
unparsable file, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.base import Violation, all_rules, known_rule_ids
from repro.lint.config import LintConfig
from repro.lint.flow import all_flow_rules, known_flow_rule_ids, run_flow
from repro.lint.flow.baseline import Baseline, BaselineResult
from repro.lint.sarif import to_sarif
from repro.lint.walker import LintError, lint_paths, suppression_warnings_for_paths

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _parse_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: AST-based determinism & USM-accounting checks "
            "(per-file rules SL001-SL007; whole-program flow rules "
            "SF001-SF004 via --flow; see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "run the whole-program flow rules (SF001-SF004) instead of "
            "the per-file rules"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "ratchet file of accepted findings: only findings NOT in the "
            "baseline fail the run; stale entries are reported on stderr"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the current findings to PATH as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _list_rules() -> None:
    for rule in all_rules():
        scope = ", ".join(sorted(rule.components)) if rule.components else "all"
        print(f"{rule.rule_id}  [{scope}]  {rule.summary}")
    for flow_rule in all_flow_rules():
        print(f"{flow_rule.rule_id}  [flow]  {flow_rule.summary}")


def _active_rule_catalog(options: argparse.Namespace) -> List:
    if options.flow:
        return [(r.rule_id, r.summary) for r in all_flow_rules()]
    return [(r.rule_id, r.summary) for r in all_rules()]


def _emit(
    options: argparse.Namespace,
    violations: List[Violation],
    files_checked: int,
    baseline_result: Optional[BaselineResult],
) -> None:
    tool = "simflow" if options.flow else "simlint"
    reported = baseline_result.new if baseline_result is not None else violations
    counts = Counter(v.rule_id for v in reported)
    if options.format == "sarif":
        print(json.dumps(to_sarif(reported, _active_rule_catalog(options), tool), indent=2))
    elif options.format == "json":
        payload = {
            "ok": not reported,
            "tool": tool,
            "files_checked": files_checked,
            "violation_count": len(reported),
            "counts_by_rule": dict(sorted(counts.items())),
            "violations": [v.as_dict() for v in reported],
        }
        if baseline_result is not None:
            payload["baselined_count"] = len(baseline_result.suppressed)
            payload["stale_baseline_entries"] = baseline_result.stale
        print(json.dumps(payload, indent=2))
    else:
        for violation in reported:
            print(violation.render())
        noun = "file" if files_checked == 1 else "files"
        suffix = ""
        if baseline_result is not None and baseline_result.suppressed:
            suffix = f" ({len(baseline_result.suppressed)} baselined finding(s) hidden)"
        if reported:
            by_rule = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
            print(
                f"{tool}: {len(reported)} violation(s) in {files_checked} {noun} "
                f"({by_rule}){suffix}"
            )
        else:
            print(f"{tool}: {files_checked} {noun} checked, no violations{suffix}")
    if baseline_result is not None and baseline_result.stale:
        for entry in baseline_result.stale:
            print(
                f"warning: stale baseline entry {entry['fingerprint']} "
                f"({entry['rule']} at {entry['path']}) no longer occurs — "
                "re-run with --write-baseline to shrink the ratchet",
                file=sys.stderr,
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        _list_rules()
        return EXIT_CLEAN

    select = _parse_rule_list(options.select)
    if options.select is not None and not select:
        # An empty selection would run zero rules and report "clean";
        # treat it as the misconfiguration it almost certainly is.
        print("error: --select given but names no rules", file=sys.stderr)
        return EXIT_ERROR
    ignore = _parse_rule_list(options.ignore) or []

    paths = [Path(p) for p in options.paths]
    if options.flow:
        known = set(known_flow_rule_ids())
        unknown = [r for r in (select or []) + ignore if r not in known]
        if unknown:
            print(
                f"error: unknown flow rule(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return EXIT_ERROR
        try:
            violations, files_checked = run_flow(paths, select=select, ignore=ignore)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
    else:
        try:
            config = LintConfig.from_rule_ids(select=select, ignore=ignore)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        try:
            violations, files_checked = lint_paths(paths, config)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR

    # Typo'd suppression ids silently disable nothing — warn, both modes.
    try:
        all_known = set(known_rule_ids()) | set(known_flow_rule_ids())
        for warning in suppression_warnings_for_paths(paths, all_known):
            print(f"warning: {warning}", file=sys.stderr)
    except LintError:
        pass  # unreadable paths already reported by the lint run itself

    if options.write_baseline:
        Baseline.from_violations(violations).write(Path(options.write_baseline))
        print(
            f"wrote baseline with {len(violations)} finding(s) to "
            f"{options.write_baseline}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    baseline_result: Optional[BaselineResult] = None
    if options.baseline:
        baseline_path = Path(options.baseline)
        try:
            baseline = (
                Baseline.load(baseline_path) if baseline_path.exists() else Baseline.empty()
            )
        except (ValueError, OSError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR
        baseline_result = baseline.filter(violations)

    _emit(options, violations, files_checked, baseline_result)
    failing = baseline_result.new if baseline_result is not None else violations
    return EXIT_VIOLATIONS if failing else EXIT_CLEAN
