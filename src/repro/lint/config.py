"""Lint run configuration: rule selection and scope overrides.

The defaults encode this repo's layout (``src/repro/<component>/...``).
A :class:`LintConfig` narrows which rules run (``select`` / ``ignore``)
and can re-scope or re-exempt individual rules — used by the test suite
to point rules at fixture trees, and available to future subpackages
that need a different patrol area.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.lint.base import Rule, all_rules, known_rule_ids


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Which rules run, and where.

    Attributes:
        select: If set, only these rule ids run.
        ignore: Rule ids that never run (applied after ``select``).
        component_overrides: Per-rule replacement of the component scope
            (``{"SL001": frozenset({"sim"})}``); empty frozenset means
            "apply everywhere".
        exempt_overrides: Per-rule replacement of the exempt-file list.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    component_overrides: Dict[str, FrozenSet[str]] = dataclasses.field(
        default_factory=dict
    )
    exempt_overrides: Dict[str, FrozenSet[str]] = dataclasses.field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        known = set(known_rule_ids())
        requested = set(self.select or ()) | set(self.ignore)
        unknown = sorted(requested - known) if known else []
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(unknown)}; known: {', '.join(sorted(known))}"
            )

    def rules(self) -> List[Rule]:
        """Instantiate the active rules, with overrides applied."""
        active: List[Rule] = []
        for rule in all_rules():
            if self.select is not None and rule.rule_id not in self.select:
                continue
            if rule.rule_id in self.ignore:
                continue
            if rule.rule_id in self.component_overrides:
                rule.components = self.component_overrides[rule.rule_id]
            if rule.rule_id in self.exempt_overrides:
                rule.exempt_files = self.exempt_overrides[rule.rule_id]
            active.append(rule)
        return active

    @classmethod
    def from_rule_ids(
        cls,
        select: Optional[Iterable[str]] = None,
        ignore: Iterable[str] = (),
    ) -> "LintConfig":
        """Convenience constructor from iterables of rule ids."""
        return cls(
            select=frozenset(select) if select is not None else None,
            ignore=frozenset(ignore),
        )


DEFAULT_CONFIG = LintConfig()
