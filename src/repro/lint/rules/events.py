"""SL005: Event records are engine-owned.

:class:`repro.sim.events.Event` sits inside the simulator's binary
heap; mutating its ordering fields (``time``, ``priority``, ``seq``)
from outside corrupts the heap invariant silently, and flipping
``cancelled`` / ``callback`` directly bypasses the :class:`Timer`
contract (lazy deletion, idempotent cancel).  Only the engine modules
may touch Event fields; everyone else goes through ``Timer.cancel()``
or schedules a fresh event.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional

from repro.lint.base import Rule, Violation, register

#: Fields whose names are distinctive enough to flag on any receiver.
_EVENT_ONLY_FIELDS: FrozenSet[str] = frozenset({"cancelled", "callback", "seq"})
#: Generic names: flagged only when the receiver looks like an Event.
_AMBIGUOUS_FIELDS: FrozenSet[str] = frozenset({"time", "priority"})
_EVENTISH_NAMES: FrozenSet[str] = frozenset({"event", "evt", "ev", "_event"})


def _receiver_is_eventish(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        return False
    return name in _EVENTISH_NAMES or name.endswith("_event")


@register
class EventMutationRule(Rule):
    """SL005: no mutation of Event fields outside the engine modules."""

    rule_id = "SL005"
    summary = "Event fields are mutated only inside sim/engine.py and sim/events.py"
    exempt_files = frozenset({"sim/engine.py", "sim/events.py"})

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        for node in ast.walk(ctx.tree):
            targets: list
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                message = self._mutation_message(target)
                if message is not None:
                    yield self.violation(ctx, target, message)

    def _mutation_message(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                message = self._mutation_message(elt)
                if message is not None:
                    return message
            return None
        if not isinstance(target, ast.Attribute):
            return None
        attr = target.attr
        if attr in _EVENT_ONLY_FIELDS:
            return (
                f"assignment to .{attr} outside the engine; Event state is "
                "engine-owned — use Timer.cancel() or schedule a new event"
            )
        if attr in _AMBIGUOUS_FIELDS and _receiver_is_eventish(target.value):
            return (
                f"assignment to Event.{attr} outside the engine would corrupt "
                "the heap order; cancel and reschedule instead"
            )
        return None
