"""SL004: USM-accounting completeness.

The User Satisfaction Metric (paper Eqs. 2-5) is a *partition*: every
submitted query lands in exactly one of Success / Rejection / DMF / DSF.
Code that branches over :class:`repro.db.transactions.Outcome` but
handles only some members silently mis-books the rest — the metric
still sums, it is just wrong.  This rule requires any multi-way branch,
``match``, or literal mapping over ``Outcome`` to either name all four
members or end in an explicit catch-all that *raises* (so an unexpected
member is loud, never absorbed).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.base import Rule, Violation, register

#: The four fortunes of a user query (paper Section 2.1).
OUTCOME_MEMBERS: FrozenSet[str] = frozenset(
    {"SUCCESS", "REJECTED", "DEADLINE_MISS", "DATA_STALE"}
)
_ENUM_NAME = "Outcome"


def _outcome_member(node: ast.expr) -> Optional[str]:
    """``Outcome.X`` (or ``mod.Outcome.X``) → ``"X"``, else None."""
    if not isinstance(node, ast.Attribute) or node.attr not in OUTCOME_MEMBERS:
        return None
    base = node.value
    if isinstance(base, ast.Name) and base.id == _ENUM_NAME:
        return node.attr
    if isinstance(base, ast.Attribute) and base.attr == _ENUM_NAME:
        return node.attr
    return None


def _test_members(test: ast.expr) -> Optional[Tuple[str, Set[str]]]:
    """Outcome members a branch condition tests, keyed by its subject.

    Recognizes ``subj is Outcome.X``, ``subj == Outcome.X``,
    ``subj in (Outcome.X, Outcome.Y)``, and ``or``-combinations of
    those; returns ``(subject_key, members)`` or None when the test
    does not compare against Outcome members.
    """
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        subject: Optional[str] = None
        members: Set[str] = set()
        for value in test.values:
            part = _test_members(value)
            if part is None:
                return None
            if subject is None:
                subject = part[0]
            elif subject != part[0]:
                return None
            members |= part[1]
        if subject is None:
            return None
        return subject, members
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    op = test.ops[0]
    comparator = test.comparators[0]
    subject_key = ast.dump(test.left)
    if isinstance(op, (ast.Is, ast.Eq)):
        member = _outcome_member(comparator)
        if member is None:
            return None
        return subject_key, {member}
    if isinstance(op, ast.In) and isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
        members = set()
        for elt in comparator.elts:
            member = _outcome_member(elt)
            if member is None:
                return None
            members.add(member)
        if not members:
            return None
        return subject_key, members
    return None


def _body_raises(body: Sequence[ast.stmt]) -> bool:
    return any(isinstance(stmt, ast.Raise) for stmt in body)


def _pure_unit(stmt: ast.If) -> Optional[Tuple[str, Set[str], int, str]]:
    """Flatten one if/elif chain into an Outcome-classification unit.

    Returns ``(subject_key, members, n_tests, else_kind)`` when *every*
    test in the chain compares the same subject against Outcome members
    (``else_kind`` is ``"none"``, ``"raise"``, or ``"plain"``), else None.
    """
    subject: Optional[str] = None
    members: Set[str] = set()
    n_tests = 0
    node = stmt
    while True:
        part = _test_members(node.test)
        if part is None:
            return None
        if subject is None:
            subject = part[0]
        elif subject != part[0]:
            return None
        members |= part[1]
        n_tests += 1
        orelse = node.orelse
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            node = orelse[0]
            continue
        if not orelse:
            return subject, members, n_tests, "none"
        return subject, members, n_tests, ("raise" if _body_raises(orelse) else "plain")


def _missing(covered: Set[str]) -> str:
    return ", ".join(sorted(OUTCOME_MEMBERS - covered))


@register
class OutcomeExhaustiveRule(Rule):
    """SL004: branches over Outcome must account for all four members."""

    rule_id = "SL004"
    summary = "branches/mappings over Outcome must cover all four members"

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        yield from self._check_if_chains(ctx)
        yield from self._check_matches(ctx)
        yield from self._check_dict_literals(ctx)

    # -- if/elif chains and guard runs ----------------------------------

    def _check_if_chains(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        for body in self._bodies(ctx.tree):
            yield from self._scan_body(ctx, body)

    def _bodies(self, tree: ast.Module) -> Iterator[List[ast.stmt]]:
        """Every statement list in the module (module/class/function/loop
        bodies, else/except/finally suites)."""
        stack: List[ast.AST] = [tree]
        while stack:
            node = stack.pop()
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if not (
                    isinstance(block, list) and block and isinstance(block[0], ast.stmt)
                ):
                    continue
                if (
                    field == "orelse"
                    and isinstance(node, ast.If)
                    and len(block) == 1
                    and isinstance(block[0], ast.If)
                ):
                    continue  # elif continuation — scanned as part of its chain
                yield block
            for child in ast.iter_child_nodes(node):
                stack.append(child)

    def _scan_body(
        self,
        ctx: "FileContext",  # noqa: F821
        body: Sequence[ast.stmt],
    ) -> Iterator[Violation]:
        """Find Outcome classification groups in one statement list.

        A group is either one pure ``if/elif`` chain over a single
        subject, or a *guard run* — consecutive sibling
        ``if subj is Outcome.X: return ...`` statements, as in
        early-return style.  Chains mixing Outcome tests with unrelated
        conditions are ambiguous and left alone.
        """
        index = 0
        while index < len(body):
            stmt = body[index]
            if not isinstance(stmt, ast.If):
                index += 1
                continue
            unit = _pure_unit(stmt)
            if unit is None:
                index += 1
                continue
            head = stmt
            subject, members, n_tests, else_kind = unit
            index += 1
            # Extend the guard run while the units stay pure, same-subject,
            # and else-less.
            while else_kind == "none" and index < len(body) and isinstance(body[index], ast.If):
                nxt = _pure_unit(body[index])
                if nxt is None or nxt[0] != subject:
                    break
                members = members | nxt[1]
                n_tests += nxt[2]
                else_kind = nxt[3]
                index += 1
            # A `raise` right after the run is the loud catch-all, same
            # as an else that raises.
            trailing_raise = (
                else_kind == "none"
                and index < len(body)
                and isinstance(body[index], ast.Raise)
            )
            if n_tests < 2 or members == OUTCOME_MEMBERS:
                continue
            if else_kind == "raise" or trailing_raise:
                continue
            yield self.violation(
                ctx,
                head,
                f"branch over Outcome covers {len(members)} of 4 members "
                f"(missing: {_missing(members)}); handle every outcome "
                "explicitly or end with a raise so new outcomes fail loudly",
            )

    # -- match statements ----------------------------------------------

    def _check_matches(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Match):
                continue
            covered: Set[str] = set()
            outcome_cases = 0
            has_catch_all = False
            catch_all_raises = False
            for case in node.cases:
                members = self._pattern_members(case.pattern)
                if members:
                    covered |= members
                    outcome_cases += 1
                elif self._is_wildcard(case.pattern) and case.guard is None:
                    has_catch_all = True
                    catch_all_raises = _body_raises(case.body)
            if outcome_cases < 2:
                continue
            if covered == OUTCOME_MEMBERS:
                continue
            if has_catch_all and catch_all_raises:
                continue
            yield self.violation(
                ctx,
                node,
                f"match over Outcome covers {len(covered)} of 4 members "
                f"(missing: {_missing(covered)}); add the missing cases or a "
                "'case _:' that raises",
            )

    def _pattern_members(self, pattern: ast.pattern) -> Set[str]:
        if isinstance(pattern, ast.MatchValue):
            member = _outcome_member(pattern.value)
            return {member} if member else set()
        if isinstance(pattern, ast.MatchOr):
            members: Set[str] = set()
            for sub in pattern.patterns:
                members |= self._pattern_members(sub)
            return members
        return set()

    def _is_wildcard(self, pattern: ast.pattern) -> bool:
        return isinstance(pattern, ast.MatchAs) and pattern.pattern is None

    # -- literal mappings ----------------------------------------------

    def _check_dict_literals(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Dict):
                continue
            members: Set[str] = set()
            outcome_keys = 0
            for key in node.keys:
                if key is None:
                    continue
                member = _outcome_member(key)
                if member is not None:
                    members.add(member)
                    outcome_keys += 1
            if outcome_keys < 2 or members == OUTCOME_MEMBERS:
                continue
            yield self.violation(
                ctx,
                node,
                f"Outcome-keyed mapping lists {len(members)} of 4 members "
                f"(missing: {_missing(members)}); a partial table mis-books "
                "the absent outcomes",
            )
