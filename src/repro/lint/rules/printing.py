"""SL007: no bare ``print()`` in library code.

Library modules that print to stdout corrupt piped artifact output
(tables, JSONL traces) and cannot be silenced from a caller.  All
diagnostic output flows through :mod:`repro.obs.logging_setup` — quiet
by default, raised via the CLIs' ``-v``/``-q`` flags, and always on
stderr.  CLI entry points (``__main__.py`` / ``cli.py``) are exempt:
there stdout *is* the artifact and ``print`` is the right tool.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.lint.base import Rule, Violation, register

#: File names whose whole purpose is terminal output.
_CLI_FILE_NAMES: FrozenSet[str] = frozenset({"__main__.py", "cli.py"})


@register
class BarePrintRule(Rule):
    """SL007: route library diagnostics through the obs logger.

    Flags any call to the ``print`` builtin (including
    ``builtins.print``) outside the exempt CLI modules.  A shadowing
    local definition of ``print`` is not flagged — the rule looks for
    the plain name with no local binding in scope, which AST-level
    analysis approximates by checking for module-level ``def print``
    or ``print = ...`` assignments.
    """

    rule_id = "SL007"
    summary = "no bare print() in library code (use repro.obs.logging_setup)"
    components = frozenset()  # everywhere under repro/

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        if ctx.path.name in _CLI_FILE_NAMES:
            return
        # A module that rebinds `print` (test doubles, shims) opted out
        # of the builtin; respect that and stay quiet.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "print":
                return
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "print":
                        return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_print = isinstance(func, ast.Name) and func.id == "print"
            is_builtins_print = (
                isinstance(func, ast.Attribute)
                and func.attr == "print"
                and isinstance(func.value, ast.Name)
                and func.value.id == "builtins"
            )
            if is_print or is_builtins_print:
                yield self.violation(
                    ctx,
                    node,
                    "bare print() in library code writes to stdout uncontrolled; "
                    "log through repro.obs.logging_setup.get_logger(__name__) "
                    "(CLI __main__/cli modules are exempt)",
                )
