"""SL001 / SL002: seed-reproducibility rules.

Every figure in the reproduction must be a pure function of the master
seed (``RandomStreams`` in :mod:`repro.sim.rng`).  Two things silently
break that: drawing from the ambient ``random`` module (whose state is
process-global and perturbed by *any* other consumer) and reading the
wall clock (which differs on every run).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Set, Tuple

from repro.lint.base import SIMULATION_COMPONENTS, Rule, Violation, register


def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound to ``module`` by ``import`` statements."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module)
                elif alias.name.startswith(module + ".") and alias.asname is None:
                    aliases.add(module)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> Dict[str, Tuple[ast.ImportFrom, str]]:
    """Local names bound by ``from <module> import ...``, with their nodes."""
    bound: Dict[str, Tuple[ast.ImportFrom, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module and node.level == 0:
            for alias in node.names:
                bound[alias.asname or alias.name] = (node, alias.name)
    return bound


@register
class AmbientRandomRule(Rule):
    """SL001: no ambient ``random``-module usage in simulation paths.

    Calling ``random.random()`` (or any sibling) consumes process-global
    RNG state, and ``random.Random(seed)`` constructed ad hoc couples a
    component's draws to whoever chose that seed.  Components must take
    an injected ``random.Random`` — normally a named
    ``RandomStreams.stream(...)`` substream — so changing one consumer
    cannot perturb any other's draws.  ``import random`` purely for the
    ``random.Random`` *type annotation* is fine; calls are not.
    """

    rule_id = "SL001"
    summary = "no ambient random-module usage in sim paths (inject a substream)"
    components = SIMULATION_COMPONENTS
    exempt_files = frozenset({"sim/rng.py"})

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        aliases = _module_aliases(ctx.tree, "random")
        from_bound = _from_imports(ctx.tree, "random")
        flagged_imports: Set[int] = set()
        for _name, (node, original) in from_bound.items():
            if id(node) not in flagged_imports:
                flagged_imports.add(id(node))
                yield self.violation(
                    ctx,
                    node,
                    f"'from random import {original}' binds the ambient RNG; "
                    "take an injected random.Random (a RandomStreams substream) instead",
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                if func.attr == "Random":
                    yield self.violation(
                        ctx,
                        node,
                        "direct random.Random(...) construction bypasses RandomStreams; "
                        "accept an injected stream (RandomStreams.stream(name)) so this "
                        "component's draws cannot perturb any other's",
                    )
                else:
                    yield self.violation(
                        ctx,
                        node,
                        f"ambient random.{func.attr}(...) draws from process-global state; "
                        "draw from an injected random.Random substream",
                    )
            elif isinstance(func, ast.Name) and func.id in from_bound:
                yield self.violation(
                    ctx,
                    node,
                    f"call to '{func.id}' imported from the ambient random module; "
                    "draw from an injected random.Random substream",
                )


#: ``time``-module attributes that read the host clock.
_WALL_CLOCK_TIME_ATTRS: FrozenSet[str] = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
        "localtime",
        "gmtime",
        "sleep",
    }
)

#: ``datetime.datetime`` / ``datetime.date`` constructors that read it.
_WALL_CLOCK_DT_ATTRS: FrozenSet[str] = frozenset({"now", "utcnow", "today"})
_DT_CLASSES: FrozenSet[str] = frozenset({"datetime", "date"})


@register
class WallClockRule(Rule):
    """SL002: no wall-clock reads in simulation paths.

    Simulated time lives on ``Simulator.now``; anything derived from the
    host clock (``time.time()``, ``datetime.now()``, ``perf_counter()``)
    differs between two runs of the same seed and so poisons
    reproducibility the moment it touches sim state.  Wall-clock timing
    of *reports* belongs in ``experiments/``, outside this rule's scope.
    """

    rule_id = "SL002"
    summary = "no wall-clock reads in sim paths (use Simulator.now)"
    components = SIMULATION_COMPONENTS

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        time_aliases = _module_aliases(ctx.tree, "time")
        dt_aliases = _module_aliases(ctx.tree, "datetime")
        time_from = _from_imports(ctx.tree, "time")
        dt_from = _from_imports(ctx.tree, "datetime")
        flagged_imports: Set[int] = set()

        for _name, (node, original) in time_from.items():
            if original in _WALL_CLOCK_TIME_ATTRS and id(node) not in flagged_imports:
                flagged_imports.add(id(node))
                yield self.violation(
                    ctx,
                    node,
                    f"'from time import {original}' pulls the wall clock into a "
                    "simulation path; use the virtual clock (Simulator.now)",
                )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # time.<attr>()
            if isinstance(base, ast.Name) and base.id in time_aliases:
                if func.attr in _WALL_CLOCK_TIME_ATTRS:
                    yield self.violation(
                        ctx,
                        node,
                        f"wall-clock read time.{func.attr}(...) in a simulation path; "
                        "use the virtual clock (Simulator.now)",
                    )
            # datetime.datetime.now() / datetime.date.today()
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in dt_aliases
                and base.attr in _DT_CLASSES
                and func.attr in _WALL_CLOCK_DT_ATTRS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read datetime.{base.attr}.{func.attr}(...) in a "
                    "simulation path; use the virtual clock (Simulator.now)",
                )
            # datetime.now() / date.today() via from-import
            elif (
                isinstance(base, ast.Name)
                and base.id in dt_from
                and dt_from[base.id][1] in _DT_CLASSES
                and func.attr in _WALL_CLOCK_DT_ATTRS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {base.id}.{func.attr}(...) in a simulation path; "
                    "use the virtual clock (Simulator.now)",
                )
