"""SL003: no hash-ordered iteration in scheduling/decision code.

Set iteration order depends on element hashes, and string hashing is
salted per process (``PYTHONHASHSEED``): two identical runs can visit a
set's members in different orders.  In ``core/`` and ``db/`` — where a
loop may pick a victim, grant a lock, or admit a query — that is enough
to flip a decision and fork the whole simulation.  Iterate ``sorted(...)``
or an explicitly ordered container instead.  (``dict`` preserves
insertion order, but bare ``.keys()`` of a dict *built from* unordered
input inherits the hazard, so the rule flags it and asks the author to
make the ordering intent explicit.)
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from repro.lint.base import DECISION_COMPONENTS, Rule, Violation, register

_SET_BUILTINS = frozenset({"set", "frozenset"})
#: Wrappers that preserve their argument's iteration order — descend.
_TRANSPARENT_WRAPPERS = frozenset({"enumerate", "list", "tuple", "reversed", "iter"})
#: Wrappers that impose a total order — iteration through them is safe.
_ORDERING_WRAPPERS = frozenset({"sorted", "min", "max", "sum", "len", "any", "all"})

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _set_typed_names(func: _FuncDef) -> Set[str]:
    """Names assigned a set within ``func`` (literal, call, or annotation)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            if _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value)
            ):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_BUILTINS
    return False


def _is_set_annotation(node: ast.expr) -> bool:
    base: Optional[ast.expr] = node
    if isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Name):
        return base.id in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}
    if isinstance(base, ast.Attribute):
        return base.attr in {"Set", "FrozenSet", "AbstractSet"}
    return False


@register
class UnorderedIterationRule(Rule):
    """SL003: flag iteration whose order the hash seed can change."""

    rule_id = "SL003"
    summary = "no hash-ordered set/dict.keys() iteration in decision code"
    components = DECISION_COMPONENTS

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        yield from self._walk(ctx, ctx.tree, set_names=set())

    def _walk(
        self,
        ctx: "FileContext",  # noqa: F821
        node: ast.AST,
        set_names: Set[str],
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            set_names = set_names | _set_typed_names(node)
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for iter_expr in iters:
            reason = self._hazard(iter_expr, set_names)
            if reason is not None:
                yield self.violation(
                    ctx,
                    iter_expr,
                    f"iteration over {reason} has hash-dependent order in decision "
                    "code; iterate sorted(...) or an explicitly ordered container",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, set_names)

    def _hazard(self, node: ast.expr, set_names: Set[str]) -> Optional[str]:
        """Why iterating ``node`` is hash-ordered, or None if it is safe."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Name) and node.id in set_names:
            return f"set-typed local '{node.id}'"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _SET_BUILTINS:
                    return f"{func.id}(...)"
                if func.id in _ORDERING_WRAPPERS:
                    return None
                if func.id in _TRANSPARENT_WRAPPERS and node.args:
                    return self._hazard(node.args[0], set_names)
                return None
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                # ``d.keys()`` of a dict literal has literal-declared order;
                # any other receiver makes the reader (and the hash seed)
                # guess, so ask for explicit ordering intent.
                if isinstance(func.value, ast.Dict):
                    return None
                return ".keys() of a non-literal receiver"
        return None
