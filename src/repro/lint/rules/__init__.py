"""Built-in simlint rules.

Importing this package registers every rule with the registry in
:mod:`repro.lint.base`.  Add new rules by dropping a module here and
importing it below.
"""

from repro.lint.rules import determinism, events, ordering, printing, typing, usm

__all__ = ["determinism", "events", "ordering", "printing", "typing", "usm"]
