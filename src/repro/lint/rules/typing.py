"""SL006: public functions in decision components are fully annotated.

``core/`` and ``db/`` form the policy API surface every future backend
and scaling PR builds against; unannotated signatures there rot into
implicit ``Any`` and mypy's strict mode (see ``pyproject.toml``) cannot
vouch for them.  Every public function and method must annotate every
parameter (``self``/``cls`` excepted) and its return type.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.lint.base import DECISION_COMPONENTS, Rule, Violation, register

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public(name: str) -> bool:
    """Public API name: not ``_private``, but dunders count as public."""
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _missing_annotations(func: _FuncDef, is_method: bool) -> List[str]:
    """Names of parameters lacking annotations, plus ``"return"``."""
    missing: List[str] = []
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if func.returns is None:
        missing.append("return")
    return missing


@register
class PublicAnnotationRule(Rule):
    """SL006: full type annotations on public functions in core/ and db/."""

    rule_id = "SL006"
    summary = "public functions in core/ and db/ are fully type-annotated"
    components = DECISION_COMPONENTS

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # noqa: F821
        yield from self._scan(ctx, ctx.tree, in_class=False)

    def _scan(
        self,
        ctx: "FileContext",  # noqa: F821
        node: ast.AST,
        in_class: bool,
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(child.name):
                    missing = _missing_annotations(child, is_method=in_class)
                    if missing:
                        kind = "method" if in_class else "function"
                        yield self.violation(
                            ctx,
                            child,
                            f"public {kind} '{child.name}' is missing annotations "
                            f"for: {', '.join(missing)}",
                        )
                # Nested defs are implementation detail — do not recurse
                # into function bodies.
            elif isinstance(child, ast.ClassDef):
                yield from self._scan(ctx, child, in_class=True)
            else:
                yield from self._scan(ctx, child, in_class=in_class)
