"""SARIF 2.1.0 export shared by the per-file and flow layers.

Emits the minimal valid subset consumed by code-scanning UIs: one run,
``tool.driver`` with the active rule catalog, and one ``result`` per
violation with a physical location.  Paths are emitted as given (CI runs
from the repo root, so they arrive repo-relative).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.lint.base import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: (rule_id, summary) pairs describing the rules that were active.
RuleCatalog = Sequence[Tuple[str, str]]


def _rule_descriptor(rule_id: str, summary: str) -> Dict[str, object]:
    return {
        "id": rule_id,
        "shortDescription": {"text": summary},
        "helpUri": "https://example.invalid/docs/static-analysis.md",
    }


def _result(violation: Violation) -> Dict[str, object]:
    return {
        "ruleId": violation.rule_id,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col,
                    },
                }
            }
        ],
    }


def to_sarif(
    violations: List[Violation],
    rules: RuleCatalog,
    tool_name: str = "simlint",
) -> Dict[str, object]:
    """A SARIF 2.1.0 log document for one lint run."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/docs/static-analysis.md",
                        "rules": [
                            _rule_descriptor(rule_id, summary)
                            for rule_id, summary in sorted(rules)
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(v) for v in violations],
            }
        ],
    }
