"""Reproduction of *UNIT: User-centric Transaction Management in
Web-Database Systems* (Qu, Labrinidis, Mossé — ICDE 2006).

The package is organized in four layers:

``repro.sim``
    A general-purpose discrete-event simulation substrate: event loop,
    cancellable timers, seeded random streams, and statistics helpers.

``repro.db``
    The simulated web-database server: data items with lag-based
    freshness, query/update transactions, a 2PL-HP lock manager, a
    dual-priority EDF ready queue, and a preemptive single-CPU server.

``repro.workload``
    Workload generation: a synthetic ``cello99a``-like read trace,
    query traces with firm deadlines and freshness requirements, and
    the paper's nine update traces (three volumes times three spatial
    correlations).

``repro.core``
    The paper's contribution and its competitors: the User Satisfaction
    Metric, the UNIT feedback framework (admission control + update
    frequency modulation + load balancing controller), and the IMU,
    ODU, and QMF baseline policies.

``repro.experiments``
    A harness that regenerates every table and figure of the paper's
    evaluation section.

Quickstart::

    from repro import build_experiment, run_experiment

    config = build_experiment(policy="unit", update_trace="med-unif", seed=7)
    report = run_experiment(config)
    print(report.summary())
"""

from repro.core.usm import PenaltyProfile, UsmAccumulator
from repro.db.transactions import Outcome
from repro.experiments.config import ExperimentConfig, build_experiment
from repro.experiments.runner import SimulationReport, run_experiment

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "Outcome",
    "PenaltyProfile",
    "SimulationReport",
    "UsmAccumulator",
    "build_experiment",
    "run_experiment",
    "__version__",
]
