"""Run one configured experiment end to end.

The runner generates the workload, assembles the server with the chosen
policy, schedules every trace event on the simulator, runs until the
horizon plus a drain window (so every admitted query resolves through
its firm deadline), and packages the outcome statistics into a
:class:`SimulationReport`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

from repro.core.baselines import ImuPolicy, OduPolicy
from repro.core.elastic import ElasticPolicy
from repro.core.qmf import QmfPolicy
from repro.core.unit import UnitPolicy
from repro.core.usm import UsmAccumulator
from repro.db.items import DataItem, ItemTable
from repro.db.policy_api import ServerPolicy
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryRecord, QueryTransaction
from repro.experiments.config import ExperimentConfig
from repro.faults.driver import FaultDriver
from repro.faults.metrics import degradation_metrics
from repro.obs.config import ObsConfig
from repro.obs.export import (
    write_chrome_trace,
    write_controller_csv,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.metrics import RunMetrics
from repro.obs.spans import SpanBuildResult, build_spans, write_spans_jsonl
from repro.obs.trace import Recorder, TraceRecorder
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.cache import get_workload
from repro.workload.cello import CelloConfig, generate_cello_trace
from repro.workload.perturb import perturb_query_trace, perturb_update_trace
from repro.workload.queries import QueryTrace, build_query_trace
from repro.workload.updates import (
    STANDARD_UPDATE_TRACES,
    UpdateTrace,
    build_update_trace,
)


@dataclasses.dataclass
class SimulationReport:
    """Everything the tables/figures need from one run."""

    config: ExperimentConfig
    policy_name: str
    outcome_counts: Dict[Outcome, int]
    queries_submitted: int
    usm: float
    total_usm: float
    ratios: Dict[Outcome, float]
    components: Dict[str, float]
    update_arrivals: int
    updates_executed: int
    updates_dropped: int
    query_access_counts: List[int]
    update_counts_original: List[int]
    update_counts_executed: List[int]
    busy_by_class: Dict[str, float]
    wall_seconds: float
    events_fired: int
    records: Optional[List[QueryRecord]] = None
    # Degradation metrics (None unless a fault scenario was configured
    # AND ``keep_records`` was set — the metrics need per-query finish
    # times).  Reporting-only: excluded from the byte-identity contract
    # the same way the obs fields below are.
    degradation: Optional[Dict[str, object]] = None
    # Observability (all None when ``config.obs`` is unset/disabled —
    # the byte-identity contract of tests/test_determinism_regression
    # deliberately excludes every field below plus wall timings).
    phase_seconds: Optional[Dict[str, float]] = None
    obs_summary: Optional[Dict[str, object]] = None
    obs_metrics: Optional[Dict[str, object]] = None
    obs_events: Optional[List[Dict[str, object]]] = None
    obs_artifacts: Optional[Dict[str, str]] = None
    # Query-lifecycle span attribution (repro.obs.spans/attrib): the
    # span-set summary plus wait breakdown, latency/slack percentiles,
    # and the USM-loss ledger.  None unless ``config.obs.spans``.
    obs_spans: Optional[Dict[str, object]] = None

    @property
    def success_ratio(self) -> float:
        if not self.queries_submitted:
            return 0.0
        return self.outcome_counts[Outcome.SUCCESS] / self.queries_submitted

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"policy={self.policy_name} trace={self.config.update_trace} "
            f"profile={self.config.profile.describe()}",
            f"  queries={self.queries_submitted}  USM={self.usm:+.4f}  "
            f"success={self.ratios[Outcome.SUCCESS]:.3f}  "
            f"reject={self.ratios[Outcome.REJECTED]:.3f}  "
            f"dmf={self.ratios[Outcome.DEADLINE_MISS]:.3f}  "
            f"dsf={self.ratios[Outcome.DATA_STALE]:.3f}",
            f"  updates: arrived={self.update_arrivals} "
            f"executed={self.updates_executed} dropped={self.updates_dropped}",
            f"  cpu busy: query={self.busy_by_class['query']:.1f}s "
            f"update={self.busy_by_class['update']:.1f}s "
            f"(horizon {self.config.scale.horizon:.0f}s)",
        ]
        return "\n".join(lines)


def make_policy(
    config: ExperimentConfig,
    streams: RandomStreams,
    recorder: Optional[Recorder] = None,
) -> ServerPolicy:
    """Instantiate the configured policy.

    ``recorder`` reaches only the UNIT policy (the control modules are
    the instrumented ones); baseline policies are still traced at the
    server and lock-manager level.
    """
    if config.policy == "unit":
        return UnitPolicy(
            config.unit_config(), streams.stream("unit-lottery"), recorder=recorder
        )
    if config.policy == "imu":
        return ImuPolicy()
    if config.policy == "odu":
        return OduPolicy()
    if config.policy == "qmf":
        return QmfPolicy(config.qmf_config())
    if config.policy == "elastic":
        return ElasticPolicy(config.elastic_config())
    raise ValueError(f"unknown policy {config.policy!r}")


def build_workload(config: ExperimentConfig, streams: RandomStreams):
    """Generate the query trace and the update trace for a config."""
    scale = config.scale
    cello = CelloConfig(
        horizon=scale.horizon,
        n_items=scale.n_items,
        query_utilization=scale.query_utilization,
        mean_service=scale.mean_query_service,
        service_cv=config.service_cv,
        zipf_skew=config.zipf_skew,
        burst_factor=config.burst_factor,
        normal_dwell=config.normal_dwell,
        burst_dwell=config.burst_dwell,
    )
    records = generate_cello_trace(cello, streams)
    query_trace = build_query_trace(
        records,
        n_items=scale.n_items,
        streams=streams,
        horizon=scale.horizon,
        freshness_req=config.freshness_req,
        items_per_query=config.items_per_query,
        deadline_high_factor=config.deadline_high_factor,
        deadline_high_base=config.deadline_high_base,
    )
    update_trace = build_update_trace(
        STANDARD_UPDATE_TRACES[config.update_trace],
        query_trace.access_counts(),
        horizon=scale.horizon,
        streams=streams,
        mean_exec=scale.mean_update_exec,
        exec_cv=config.update_exec_cv,
    )
    # Fault scenarios perturb *after* base generation: the update trace
    # is correlated against the unperturbed access histogram, and the
    # fault-* substreams are disjoint from every stream drawn above, so
    # an unconfigured run is byte-identical to pre-fault builds.
    faults = config.faults
    if faults is not None and faults.shapes_workload():
        query_trace = perturb_query_trace(query_trace, faults, streams)
        update_trace = perturb_update_trace(update_trace, faults, streams)
    return query_trace, update_trace


def item_table_from_trace(update_trace: UpdateTrace) -> ItemTable:
    """Build the server's item table from an update trace."""
    return ItemTable(
        [
            DataItem(
                item_id=item.item_id,
                ideal_period=item.period,
                update_exec_time=item.exec_time,
            )
            for item in update_trace.items
        ]
    )


def _drain_window(query_trace: QueryTrace, horizon: float) -> float:
    """Time past the horizon needed for every admitted query to resolve
    (the latest firm deadline still pending at the horizon).

    The latest absolute deadline is ``max(arrival + relative_deadline)``
    — not ``horizon + max(relative_deadline)``, which over-extends the
    run whenever the longest-deadline query arrived well before the
    horizon.  Clamped at zero for deadlines that all land inside the
    horizon; the extra second absorbs completions scheduled exactly at
    the last deadline.
    """
    if not query_trace.queries:
        return 1.0
    last_deadline = max(
        query.arrival + query.relative_deadline for query in query_trace.queries
    )
    return max(0.0, last_deadline - horizon) + 1.0


#: Arrival-feed chunk size: heap entries scheduled per pump (an update
#: run counts as one entry however many arrivals it carries).
_ARRIVAL_CHUNK = 256


def _feed_arrivals(
    sim: Simulator,
    server: Server,
    queries: List[QueryTransaction],
    update_events: List,
) -> None:
    """Schedule trace arrivals in batched chunks of heap entries.

    Eagerly scheduling every arrival puts thousands of far-future events
    in the heap, inflating every push/pop for the whole run.  Instead the
    two (time-sorted) streams are merged — queries before updates on
    exact ties, matching the former scheduling order — into *segments*:
    individual query arrivals, and runs of consecutive update arrivals
    between them.  Each run is a single heap entry however long it is
    (:meth:`Server.source_update_run` applies its arrivals inline); the
    segments are scheduled a chunk at a time through the engine's batch
    heapify, and the last entry of each chunk pumps the next chunk when
    it fires (before its own payload, like the former chained feeder).

    Event *firing* order is unchanged: arrivals are the only events at
    their priority, chunk entries carry stream-ordered sequence numbers,
    and a run yields to any other pending event type due mid-run — so
    runs are byte-identical (``events_fired`` included) to the
    one-event-per-arrival scheme.
    """
    # Pre-merge the streams into segments.  A run collects updates
    # strictly before the next query arrival: an update tying a query's
    # arrival time sorts after it, matching the former per-event order.
    segments: List[object] = []
    qi = 0
    ui = 0
    n_queries = len(queries)
    n_updates = len(update_events)
    while qi < n_queries or ui < n_updates:
        if qi < n_queries and (
            ui >= n_updates or queries[qi].arrival <= update_events[ui][0]
        ):
            segments.append(queries[qi])
            qi += 1
            continue
        start = ui
        if qi < n_queries:
            bound = queries[qi].arrival
            while ui < n_updates and update_events[ui][0] < bound:
                ui += 1
        else:
            ui = n_updates
        segments.append(update_events[start:ui])

    submit = server.submit_query
    run_entry = server.source_update_run
    schedule_batch = sim.schedule_batch
    n_segments = len(segments)
    position = 0

    def submit_and_pump(txn: QueryTransaction) -> None:
        pump()  # chain first: the next chunk is scheduled, not fired
        submit(txn)

    def pump() -> None:
        nonlocal position
        if position >= n_segments:
            return
        end = min(position + _ARRIVAL_CHUNK, n_segments)
        last = end - 1
        batch = []
        for index in range(position, end):
            segment = segments[index]
            if type(segment) is list:  # an update run
                callback = run_entry
                at = segment[0][0]
                arg: object = (segment, 0, pump if index == last else None)
            else:
                callback = submit_and_pump if index == last else submit
                at = segment.arrival  # type: ignore[attr-defined]
                arg = segment
            batch.append((at, ARRIVAL_EVENT_PRIORITY, callback, arg))
        position = end
        schedule_batch(batch)

    pump()


def _build_recorder(obs_config: Optional[ObsConfig]) -> Optional[TraceRecorder]:
    """A live recorder when observability is requested, else None."""
    if obs_config is None or not obs_config.enabled:
        return None
    metrics = RunMetrics() if obs_config.metrics else None
    return TraceRecorder(capacity=obs_config.capacity, metrics=metrics)


def _export_artifacts(
    recorder: TraceRecorder,
    obs_config: ObsConfig,
    config: ExperimentConfig,
    span_result: Optional["SpanBuildResult"] = None,
) -> Dict[str, str]:
    """Write the configured trace/metrics artifacts for one cell.

    Paths are derived per cell (label + seed) so parallel sweep workers
    never collide.  Returns ``{artifact_kind: written_path}``.
    """
    paths = obs_config.export_paths(config.label(), config.seed)
    written: Dict[str, str] = {}
    if "trace_jsonl" in paths:
        write_trace_jsonl(recorder, paths["trace_jsonl"])
        written["trace_jsonl"] = str(paths["trace_jsonl"])
    if "chrome_json" in paths:
        write_chrome_trace(recorder, paths["chrome_json"])
        written["chrome_json"] = str(paths["chrome_json"])
    if "controller_csv" in paths:
        write_controller_csv(recorder, paths["controller_csv"])
        written["controller_csv"] = str(paths["controller_csv"])
    if "prometheus_txt" in paths and recorder.metrics is not None:
        write_prometheus(recorder.metrics, paths["prometheus_txt"])  # type: ignore[arg-type]
        written["prometheus_txt"] = str(paths["prometheus_txt"])
    if "spans_jsonl" in paths and span_result is not None:
        write_spans_jsonl(span_result, paths["spans_jsonl"])
        written["spans_jsonl"] = str(paths["spans_jsonl"])
    return written


def run_experiment(config: ExperimentConfig) -> SimulationReport:
    """Run one simulation and collect its report."""
    started = time.perf_counter()
    phase_seconds: Dict[str, float] = {}
    streams = RandomStreams(config.seed)
    # Workload generation is memoized: traces draw only from named
    # substreams disjoint from the policy streams, so a cache hit is
    # byte-identical to regeneration.
    query_trace, update_trace = get_workload(config)
    phase_seconds["workload"] = time.perf_counter() - started

    setup_started = time.perf_counter()
    recorder = _build_recorder(config.obs)
    sim = Simulator()
    items = item_table_from_trace(update_trace)
    policy = make_policy(config, streams, recorder=recorder)
    server = Server(
        sim,
        items,
        policy,
        ServerConfig(freshness_metric=config.build_freshness_metric()),
        recorder=recorder,
    )

    # Transaction ids are allocated eagerly in trace order (queries get
    # ids 1..N) — ids are EDF tie-breakers, so allocation order is part
    # of the determinism contract.  Only the event *scheduling* is lazy.
    query_txns = [
        QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=query_spec.arrival,
            exec_time=query_spec.exec_time,
            items=query_spec.items,
            relative_deadline=query_spec.relative_deadline,
            freshness_req=query_spec.freshness_req,
        )
        for query_spec in query_trace.queries
    ]
    _feed_arrivals(sim, server, query_txns, list(update_trace.arrival_events()))
    if config.faults is not None and not config.faults.is_empty:
        FaultDriver(config.faults, server, recorder).install(sim)
    phase_seconds["setup"] = time.perf_counter() - setup_started

    simulate_started = time.perf_counter()
    horizon = config.scale.horizon
    sim.run(until=horizon + _drain_window(query_trace, horizon))
    phase_seconds["simulate"] = time.perf_counter() - simulate_started

    finalize_started = time.perf_counter()
    unresolved = query_trace_size = len(query_trace.queries)
    unresolved -= len(server.records)
    if unresolved:
        raise RuntimeError(
            f"{unresolved} of {query_trace_size} queries never resolved; "
            "drain window too short?"
        )

    obs_summary: Optional[Dict[str, object]] = None
    obs_metrics: Optional[Dict[str, object]] = None
    obs_events: Optional[List[Dict[str, object]]] = None
    obs_artifacts: Optional[Dict[str, str]] = None
    obs_spans: Optional[Dict[str, object]] = None
    if recorder is not None and config.obs is not None:
        obs_summary = recorder.summary()
        if recorder.metrics is not None:
            obs_metrics = recorder.metrics.registry.snapshot()  # type: ignore[attr-defined]
        if config.obs.keep_events:
            obs_events = recorder.event_dicts()
        span_result: Optional[SpanBuildResult] = None
        if config.obs.spans:
            # Imported lazily above; attrib pulls the USM layer.
            from repro.obs.attrib import attrib_report

            span_result = build_spans(
                recorder.events(), dropped=recorder.dropped
            )
            obs_spans = {"summary": span_result.summary()}
            obs_spans.update(attrib_report(span_result.spans, config.profile))
        obs_artifacts = _export_artifacts(
            recorder, config.obs, config, span_result=span_result
        )

    degradation: Optional[Dict[str, object]] = None
    if (
        config.faults is not None
        and not config.faults.is_empty
        and config.keep_records
    ):
        degradation = degradation_metrics(
            server.records, config.profile, config.faults, config.scale.horizon
        )

    accumulator = UsmAccumulator.from_counts(config.profile, server.outcome_counts)
    totals = items.totals()
    phase_seconds["finalize"] = time.perf_counter() - finalize_started
    report = SimulationReport(
        config=config,
        policy_name=policy.describe(),
        outcome_counts=dict(server.outcome_counts),
        queries_submitted=server.queries_submitted,
        usm=accumulator.average_usm(),
        total_usm=accumulator.total_usm(),
        ratios=accumulator.ratios(),
        components=accumulator.components(),
        update_arrivals=totals["arrivals"],
        updates_executed=totals["executed"],
        updates_dropped=totals["dropped"],
        query_access_counts=query_trace.access_counts(),
        update_counts_original=update_trace.per_item_counts(),
        update_counts_executed=[item.updates_executed for item in items],
        busy_by_class=server.busy_time_by_class(),
        wall_seconds=time.perf_counter() - started,
        events_fired=sim.events_fired,
        records=list(server.records) if config.keep_records else None,
        degradation=degradation,
        phase_seconds=phase_seconds,
        obs_summary=obs_summary,
        obs_metrics=obs_metrics,
        obs_events=obs_events,
        obs_artifacts=obs_artifacts,
        obs_spans=obs_spans,
    )
    return report
