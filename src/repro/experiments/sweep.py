"""Parameter sweeps over policies × traces × penalty profiles.

:func:`run_grid` executes serially; :func:`run_grid_parallel` fans the
same grid over a process pool (every run is an independent, seeded
simulation, so the results are bit-identical to the serial ones).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.usm import PenaltyProfile
from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.experiments.runner import SimulationReport, run_experiment

SweepKey = Tuple[str, str, str]  # (policy, trace, profile-name)


def run_grid(
    policies: Iterable[str],
    traces: Iterable[str],
    profiles: Iterable[PenaltyProfile],
    scale: ExperimentScale,
    seed: int = 7,
    base: Optional[ExperimentConfig] = None,
    progress: bool = False,
) -> Dict[SweepKey, SimulationReport]:
    """Run every combination and return reports keyed by
    ``(policy, trace, profile.name)``.

    All runs share the same seed, so every policy sees the *identical*
    workload — the paired-comparison discipline the paper's bar charts
    imply.
    """
    results: Dict[SweepKey, SimulationReport] = {}
    for profile in profiles:
        for trace in traces:
            for policy in policies:
                if base is not None:
                    config = dataclasses.replace(
                        base,
                        policy=policy,
                        update_trace=trace,
                        profile=profile,
                        scale=scale,
                        seed=seed,
                    )
                else:
                    config = ExperimentConfig(
                        policy=policy,
                        update_trace=trace,
                        profile=profile,
                        seed=seed,
                        scale=scale,
                    )
                report = run_experiment(config)
                results[(policy, trace, profile.name or "naive")] = report
                if progress:
                    print(
                        f"[sweep] {policy:<5} {trace:<9} "
                        f"{profile.name or 'naive':<15} "
                        f"USM={report.usm:+.4f} ({report.wall_seconds:.1f}s)"
                    )
    return results


def _grid_configs(
    policies: Iterable[str],
    traces: Iterable[str],
    profiles: Iterable[PenaltyProfile],
    scale: ExperimentScale,
    seed: int,
    base: Optional[ExperimentConfig],
) -> List[Tuple[SweepKey, ExperimentConfig]]:
    configs: List[Tuple[SweepKey, ExperimentConfig]] = []
    for profile in profiles:
        for trace in traces:
            for policy in policies:
                if base is not None:
                    config = dataclasses.replace(
                        base,
                        policy=policy,
                        update_trace=trace,
                        profile=profile,
                        scale=scale,
                        seed=seed,
                    )
                else:
                    config = ExperimentConfig(
                        policy=policy,
                        update_trace=trace,
                        profile=profile,
                        seed=seed,
                        scale=scale,
                    )
                configs.append(
                    ((policy, trace, profile.name or "naive"), config)
                )
    return configs


def _run_keyed(item: Tuple[SweepKey, ExperimentConfig]):
    key, config = item
    return key, run_experiment(config)


def run_grid_parallel(
    policies: Iterable[str],
    traces: Iterable[str],
    profiles: Iterable[PenaltyProfile],
    scale: ExperimentScale,
    seed: int = 7,
    base: Optional[ExperimentConfig] = None,
    workers: Optional[int] = None,
) -> Dict[SweepKey, SimulationReport]:
    """The :func:`run_grid` grid over a process pool.

    Each cell is an independent seeded simulation, so parallel results
    are identical to serial ones.  ``workers`` defaults to the CPU
    count, capped by the number of cells.
    """
    configs = _grid_configs(policies, traces, profiles, scale, seed, base)
    if not configs:
        return {}
    workers = min(workers or multiprocessing.cpu_count(), len(configs))
    if workers <= 1:
        return dict(_run_keyed(item) for item in configs)
    with multiprocessing.Pool(workers) as pool:
        return dict(pool.map(_run_keyed, configs))
