"""Parameter sweeps over policies × traces × penalty profiles.

:func:`run_grid` executes serially; :func:`run_grid_parallel` fans the
same grid over a persistent process pool (every run is an independent,
seeded simulation, so the results are bit-identical to the serial
ones).  Setting the ``REPRO_SWEEP_WORKERS`` environment variable to an
integer > 1 makes :func:`run_grid` route through the pool too, so every
caller — figures, benchmarks, calibration — picks up parallelism
without a signature change.

The executor is deliberately deterministic where it matters: cells are
dispatched with ``imap_unordered`` (best wall-clock: no head-of-line
blocking) but results are re-assembled in grid order by key, so the
returned dict is identical, entry order included, to the serial path.
Workload generation is shared through :mod:`repro.workload.cache`: the
parent warms its in-memory cache before dispatch (fork-start children
inherit it for free) and each worker's initializer points the on-disk
tier at the same directory when one is configured.

Fault scenarios sweep transparently: pass a ``base`` config carrying
``faults`` and every grid cell inherits the scenario via
``dataclasses.replace``.  Trace-shaping scenarios fold into
``workload_key()``, so the cache warm-up covers the perturbed traces
too, and parallel results stay byte-identical to serial ones (see
tests/test_faults_integration.py).
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing
import multiprocessing.pool
import os
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.usm import PenaltyProfile
from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.experiments.runner import SimulationReport, run_experiment
from repro.obs.logging_setup import get_logger
from repro.workload.cache import CACHE_DIR_ENV, default_cache

_log = get_logger(__name__)

SweepKey = Tuple[str, str, str]  # (policy, trace, profile-name)

#: Called after each finished cell with (key, report, done, total).
#: Under the parallel executor, calls arrive in *completion* order.
ProgressCallback = Callable[[SweepKey, SimulationReport, int, int], None]


def _chain_dashboard(
    dashboard: Optional[object],
    progress_callback: Optional[ProgressCallback],
) -> Optional[ProgressCallback]:
    """Fold a dashboard's ``on_progress`` in front of a progress callback.

    ``dashboard`` is duck-typed (anything with
    ``on_progress(key, report, done, total)`` — normally a
    :class:`repro.obs.dash.DashboardState`), so the sweep layer has no
    import edge into the dashboard stack.
    """
    if dashboard is None:
        return progress_callback
    feed = dashboard.on_progress  # type: ignore[attr-defined]
    if progress_callback is None:
        return feed

    inner = progress_callback

    def chained(
        key: SweepKey, report: SimulationReport, done: int, total: int
    ) -> None:
        feed(key, report, done, total)
        inner(key, report, done, total)

    return chained

#: Environment override for the worker count (int; > 1 enables the pool
#: from :func:`run_grid` as well).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def _env_workers() -> Optional[int]:
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None  # malformed override: fall back to the default
    return max(1, value)


def _log_progress(
    key: SweepKey, report: SimulationReport, done: int, total: int
) -> None:
    policy, trace, profile_name = key
    _log.info(
        "[sweep] %d/%d %-5s %-9s %-15s USM=%+.4f (%.1fs)",
        done,
        total,
        policy,
        trace,
        profile_name,
        report.usm,
        report.wall_seconds,
    )


def _grid_configs(
    policies: Iterable[str],
    traces: Iterable[str],
    profiles: Iterable[PenaltyProfile],
    scale: ExperimentScale,
    seed: int,
    base: Optional[ExperimentConfig],
) -> List[Tuple[SweepKey, ExperimentConfig]]:
    """The grid cells in canonical (profile, trace, policy) order."""
    configs: List[Tuple[SweepKey, ExperimentConfig]] = []
    for profile in profiles:
        for trace in traces:
            for policy in policies:
                if base is not None:
                    config = dataclasses.replace(
                        base,
                        policy=policy,
                        update_trace=trace,
                        profile=profile,
                        scale=scale,
                        seed=seed,
                    )
                else:
                    config = ExperimentConfig(
                        policy=policy,
                        update_trace=trace,
                        profile=profile,
                        seed=seed,
                        scale=scale,
                    )
                configs.append(((policy, trace, profile.name or "naive"), config))
    return configs


def _run_keyed(
    item: Tuple[SweepKey, ExperimentConfig],
) -> Tuple[SweepKey, SimulationReport]:
    key, config = item
    return key, run_experiment(config)


def run_grid(
    policies: Iterable[str],
    traces: Iterable[str],
    profiles: Iterable[PenaltyProfile],
    scale: ExperimentScale,
    seed: int = 7,
    base: Optional[ExperimentConfig] = None,
    progress: bool = False,
    progress_callback: Optional[ProgressCallback] = None,
    dashboard: Optional[object] = None,
) -> Dict[SweepKey, SimulationReport]:
    """Run every combination and return reports keyed by
    ``(policy, trace, profile.name)``.

    All runs share the same seed, so every policy sees the *identical*
    workload — the paired-comparison discipline the paper's bar charts
    imply.  The shared workload is generated once per (trace, seed) via
    the workload cache, not once per cell.

    ``dashboard`` is an optional live-progress sink (duck-typed:
    ``on_progress(key, report, done, total)``, e.g. a
    :class:`repro.obs.dash.DashboardState`); it is fed before the
    ``progress_callback`` after every finished cell.

    With ``REPRO_SWEEP_WORKERS`` set above 1 the grid is delegated to
    :func:`run_grid_parallel`; results are identical either way.
    """
    if progress and progress_callback is None:
        progress_callback = _log_progress
    progress_callback = _chain_dashboard(dashboard, progress_callback)
    env_workers = _env_workers()
    if env_workers is not None and env_workers > 1:
        return run_grid_parallel(
            policies,
            traces,
            profiles,
            scale,
            seed=seed,
            base=base,
            workers=env_workers,
            progress_callback=progress_callback,
        )
    configs = _grid_configs(policies, traces, profiles, scale, seed, base)
    results: Dict[SweepKey, SimulationReport] = {}
    total = len(configs)
    for done, (key, config) in enumerate(configs, start=1):
        report = run_experiment(config)
        results[key] = report
        if progress_callback is not None:
            progress_callback(key, report, done, total)
    return results


# ----------------------------------------------------------------------
# persistent process pool
# ----------------------------------------------------------------------

_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_STATE: Optional[Tuple[int, str]] = None  # (workers, cache dir)


def _worker_init(cache_env: str) -> None:
    """Worker initializer: point the workload cache's disk tier at the
    parent's directory so every process shares one store."""
    if cache_env:
        os.environ[CACHE_DIR_ENV] = cache_env


def shutdown_pool() -> None:
    """Terminate the persistent sweep pool (idempotent)."""
    global _POOL, _POOL_STATE
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_STATE = None


atexit.register(shutdown_pool)


def _get_pool(workers: int, cache_env: str) -> multiprocessing.pool.Pool:
    """The persistent pool, recreated only when its shape changes."""
    global _POOL, _POOL_STATE
    state = (workers, cache_env)
    if _POOL is None or _POOL_STATE != state:
        shutdown_pool()
        _POOL = multiprocessing.Pool(
            workers, initializer=_worker_init, initargs=(cache_env,)
        )
        _POOL_STATE = state
    return _POOL


def run_grid_parallel(
    policies: Iterable[str],
    traces: Iterable[str],
    profiles: Iterable[PenaltyProfile],
    scale: ExperimentScale,
    seed: int = 7,
    base: Optional[ExperimentConfig] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    progress_callback: Optional[ProgressCallback] = None,
    cache_dir: Optional[str] = None,
    dashboard: Optional[object] = None,
) -> Dict[SweepKey, SimulationReport]:
    """The :func:`run_grid` grid over a persistent process pool.

    Each cell is an independent seeded simulation, so parallel results
    are identical to serial ones — and the returned dict preserves the
    serial entry order regardless of completion order.

    Args:
        workers: Pool size; defaults to ``REPRO_SWEEP_WORKERS``, then
            the CPU count, capped by the number of cells.
        chunksize: Cells per dispatch batch; defaults to roughly four
            batches per worker, floored at 1.
        progress_callback: Invoked with ``(key, report, done, total)``
            after each finished cell, in completion order.
        cache_dir: Directory for the on-disk workload store; when given,
            ``REPRO_WORKLOAD_CACHE`` is exported for this process and
            its workers (existing environment settings are used
            otherwise).
        dashboard: Optional live-progress sink (duck-typed
            ``on_progress``; see :func:`run_grid`), fed in completion
            order from the parent process.
    """
    progress_callback = _chain_dashboard(dashboard, progress_callback)
    configs = _grid_configs(policies, traces, profiles, scale, seed, base)
    if not configs:
        return {}
    if cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = str(cache_dir)
    requested = workers if workers is not None else _env_workers()
    if requested is None:
        requested = multiprocessing.cpu_count()
    n_workers = min(requested, len(configs))
    total = len(configs)

    # Generate each distinct workload once, up front: fork-started
    # workers inherit the warm in-memory cache, and when a disk tier is
    # configured the warm run also populates it for spawn-started ones.
    default_cache().warm(config for _, config in configs)

    if n_workers <= 1:
        results_serial: Dict[SweepKey, SimulationReport] = {}
        for done, (key, config) in enumerate(configs, start=1):
            report = run_experiment(config)
            results_serial[key] = report
            if progress_callback is not None:
                progress_callback(key, report, done, total)
        return results_serial

    if chunksize is None:
        chunksize = max(1, total // (n_workers * 4))
    pool = _get_pool(n_workers, os.environ.get(CACHE_DIR_ENV, ""))
    collected: Dict[SweepKey, SimulationReport] = {}
    for done, (key, report) in enumerate(
        pool.imap_unordered(_run_keyed, configs, chunksize=chunksize), start=1
    ):
        collected[key] = report
        if progress_callback is not None:
            progress_callback(key, report, done, total)
    # Deterministic assembly: serial grid order, not completion order.
    return {key: collected[key] for key, _ in configs}
