"""Command-line entry point: regenerate any table or figure, or run a
single policy and print a full dossier.

Usage::

    python -m repro.experiments table1 --scale small
    python -m repro.experiments fig4 --scale paper --seed 7
    python -m repro.experiments all --scale small
    python -m repro.experiments run --policy unit --trace med-unif
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.experiments.config import POLICIES, SCALES
from repro.obs.logging_setup import (
    add_verbosity_flags,
    configure_logging,
    verbosity_from_args,
)
from repro.experiments.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
)
from repro.experiments.tables import render_table1, render_table2, table1
from repro.workload.updates import STANDARD_UPDATE_TRACES

TARGETS = ("table1", "table2", "fig3", "fig4", "fig5", "fig6", "all", "run")


def _run_dossier(args, scale) -> None:
    """Run one policy and print outcomes, latency, and a timeline."""
    from repro.analysis.latency import latency_summary
    from repro.analysis.timeline import TimelineProbe
    from repro.db.transactions import Outcome, QueryTransaction
    from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.report import ascii_table
    from repro.experiments.runner import (
        build_workload,
        item_table_from_trace,
        make_policy,
    )
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams

    config = ExperimentConfig(
        policy=args.policy, update_trace=args.trace, seed=args.seed, scale=scale
    )
    streams = RandomStreams(config.seed)
    query_trace, update_trace = build_workload(config, streams)
    sim = Simulator()
    items = item_table_from_trace(update_trace)
    policy = make_policy(config, streams)
    server = Server(sim, items, policy, ServerConfig())
    for spec in query_trace.queries:
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=spec.arrival,
            exec_time=spec.exec_time,
            items=spec.items,
            relative_deadline=spec.relative_deadline,
            freshness_req=spec.freshness_req,
        )
        sim.schedule(
            spec.arrival, lambda q=txn: server.submit_query(q),
            priority=ARRIVAL_EVENT_PRIORITY,
        )
    for arrival, item_id in update_trace.arrival_events():
        sim.schedule(
            arrival, lambda i=item_id: server.source_update_arrival(i),
            priority=ARRIVAL_EVENT_PRIORITY,
        )
    probe = TimelineProbe(
        server, interval=scale.horizon / 10.0, horizon=scale.horizon
    )
    probe.start()
    sim.run(until=scale.horizon * 1.2 + 10.0)

    total = server.queries_submitted
    counts = server.outcome_counts
    print(
        f"{policy.describe()} on {args.trace} ({args.scale} scale, seed {args.seed}): "
        f"{total} queries"
    )
    print(
        ascii_table(
            ["outcome", "count", "ratio"],
            [[o.value, counts[o], f"{counts[o] / total:.3f}"] for o in Outcome],
            title="Outcomes",
        )
    )
    summaries = latency_summary(server.records)
    rows = []
    for key, summary in summaries.items():
        rows.append(
            [
                key.value if key is not None else "(all finished)",
                summary.count,
                f"{summary.mean * 1000:.1f}",
                f"{summary.p50 * 1000:.1f}",
                f"{summary.p90 * 1000:.1f}",
                f"{summary.p99 * 1000:.1f}",
            ]
        )
    print()
    print(
        ascii_table(
            ["class", "n", "mean ms", "p50 ms", "p90 ms", "p99 ms"],
            rows,
            title="Response times",
        )
    )
    print()
    timeline_rows = [
        [
            f"{s.time:.0f}",
            s.ready_queries,
            s.ready_updates,
            f"{s.utilization_so_far:.2f}",
            s.outcomes.get(Outcome.SUCCESS, 0),
            "" if s.c_flex is None else f"{s.c_flex:.3f}",
            "" if s.degraded_items is None else s.degraded_items,
        ]
        for s in probe.timeline.samples
    ]
    print(
        ascii_table(
            ["t(s)", "q-queue", "u-queue", "util", "ok", "C_flex", "degraded"],
            timeline_rows,
            title="Timeline",
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    add_verbosity_flags(parser)
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="workload scale preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--replications",
        type=int,
        default=1,
        help="average fig4 over this many seeds",
    )
    parser.add_argument(
        "--progress", action="store_true", help="print per-run progress lines"
    )
    parser.add_argument(
        "--policy", choices=POLICIES, default="unit", help="for `run`"
    )
    parser.add_argument(
        "--trace",
        choices=sorted(STANDARD_UPDATE_TRACES),
        default="med-unif",
        help="for `run`",
    )
    args = parser.parse_args(argv)
    configure_logging(verbosity_from_args(args))
    if args.progress:
        # --progress means "show the per-run lines" regardless of -v:
        # raise just the experiments subtree to INFO (stderr), keeping
        # stdout clean for the rendered tables.
        logging.getLogger("repro.experiments").setLevel(logging.INFO)
    scale = SCALES[args.scale]

    if args.target == "run":
        _run_dossier(args, scale)
        return 0

    targets = TARGETS[:-2] if args.target == "all" else (args.target,)
    for target in targets:
        if target == "table1":
            print(render_table1(table1(scale, seed=args.seed)))
        elif target == "table2":
            print(render_table2())
        elif target == "fig3":
            print(render_figure3(figure3(scale, seed=args.seed)))
        elif target == "fig4":
            print(
                render_figure4(
                    figure4(
                        scale,
                        seed=args.seed,
                        progress=args.progress,
                        replications=args.replications,
                    )
                )
            )
        elif target == "fig5":
            print(render_figure5(figure5(scale, seed=args.seed, progress=args.progress)))
        elif target == "fig6":
            print(render_figure6(figure6(scale, seed=args.seed, progress=args.progress)))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
