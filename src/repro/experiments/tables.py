"""Table 1 (the nine update traces) and Table 2 (the USM weights)."""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.usm import TABLE2_PROFILES, PenaltyProfile
from repro.experiments.config import ExperimentScale
from repro.experiments.report import ascii_table
from repro.sim.rng import RandomStreams
from repro.workload.cello import CelloConfig, generate_cello_trace
from repro.workload.correlation import pearson
from repro.workload.queries import build_query_trace
from repro.workload.updates import (
    STANDARD_UPDATE_TRACES,
    UpdateTrace,
    build_update_trace,
)


@dataclasses.dataclass
class Table1Row:
    """One update trace, with paper-scale and our-scale statistics."""

    name: str
    distribution: str
    target_utilization: float
    actual_utilization: float
    total_updates: int
    paper_total_updates: int
    correlation_with_queries: float


def table1(scale: ExperimentScale, seed: int = 7) -> List[Table1Row]:
    """Regenerate Table 1 at the given scale.

    Builds the query trace once (all update traces correlate against
    the same query histogram, as in the paper) and the nine update
    traces, reporting achieved utilization and spatial correlation.
    """
    streams = RandomStreams(seed)
    cello = CelloConfig(
        horizon=scale.horizon,
        n_items=scale.n_items,
        query_utilization=scale.query_utilization,
        mean_service=scale.mean_query_service,
    )
    records = generate_cello_trace(cello, streams)
    query_trace = build_query_trace(
        records, n_items=scale.n_items, streams=streams, horizon=scale.horizon
    )
    access_counts = query_trace.access_counts()

    rows: List[Table1Row] = []
    for name in sorted(
        STANDARD_UPDATE_TRACES,
        key=lambda n: (
            ["low", "med", "high"].index(STANDARD_UPDATE_TRACES[n].volume),
            ["unif", "pos", "neg"].index(STANDARD_UPDATE_TRACES[n].correlation),
        ),
    ):
        spec = STANDARD_UPDATE_TRACES[name]
        trace = build_update_trace(
            spec,
            access_counts,
            horizon=scale.horizon,
            streams=streams,
            mean_exec=scale.mean_update_exec,
        )
        rows.append(
            Table1Row(
                name=spec.name,
                distribution={
                    "unif": "uniform",
                    "pos": "positive correlation",
                    "neg": "negative correlation",
                }[spec.correlation],
                target_utilization=spec.utilization,
                actual_utilization=trace.utilization(),
                total_updates=trace.total_updates(),
                paper_total_updates=spec.paper_total_updates,
                correlation_with_queries=pearson(
                    [float(c) for c in trace.per_item_counts()],
                    [float(c) for c in access_counts],
                ),
            )
        )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    return ascii_table(
        headers=[
            "trace",
            "distribution",
            "target util",
            "actual util",
            "updates (ours)",
            "updates (paper)",
            "corr w/ queries",
        ],
        rows=[
            [
                row.name,
                row.distribution,
                f"{row.target_utilization:.0%}",
                f"{row.actual_utilization:.1%}",
                row.total_updates,
                row.paper_total_updates,
                f"{row.correlation_with_queries:+.3f}",
            ]
            for row in rows
        ],
        title="Table 1 — update traces (volumes x spatial distributions)",
    )


def table2() -> Dict[str, PenaltyProfile]:
    """The six Fig. 5 weight settings, keyed as in
    :data:`repro.core.usm.TABLE2_PROFILES`."""
    return dict(TABLE2_PROFILES)


def render_table2() -> str:
    rows = []
    for key, profile in TABLE2_PROFILES.items():
        rows.append(
            [key, profile.name, profile.gain, profile.c_r, profile.c_fm, profile.c_fs]
        )
    return ascii_table(
        headers=["key", "setting", "C_s", "C_r", "C_fm", "C_fs"],
        rows=rows,
        title="Table 2 — USM weights for Figure 5",
    )


def validate_update_trace(trace: UpdateTrace, tolerance: float = 0.10) -> bool:
    """True when the trace's CPU demand is within ``tolerance`` of its
    target utilization (used by tests and the Table 1 bench)."""
    target = trace.target_utilization
    if target <= 0:
        return trace.utilization() == 0
    return abs(trace.utilization() - target) <= tolerance * target
