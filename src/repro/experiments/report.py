"""ASCII rendering of tables and bar series, plus JSON-safe helpers.

The harness prints the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and readable in a
terminal or a log file.  :func:`json_sanitize` and :func:`stats_dict`
guard the JSON-report path: ``json.dumps`` happily emits the bare
tokens ``Infinity``/``NaN`` (invalid JSON to strict parsers), which is
exactly what an empty :class:`~repro.sim.stats.OnlineStats` leaks
through its ``minimum``/``maximum`` sentinels.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional, Sequence

from repro.sim.stats import OnlineStats


def stable_report_bytes(report: object) -> bytes:
    """Canonical serialization of everything a figure could read.

    The byte-identity contract of the determinism regression suite (and
    the fleet 1-shard-equivalence gate): two reports serialize equal
    iff every *result* field matches bit-for-bit.  Host-timing fields
    (``wall_seconds``, ``phase_seconds``) and the observability payload
    are deliberately excluded — they are reporting metadata, never an
    input to results.  Floats are rendered with ``float.hex()`` (exact
    bits, not a rounding).
    """
    by_name = lambda kv: kv[0].value  # noqa: E731
    payload = {
        "policy": report.policy_name,  # type: ignore[attr-defined]
        "counts": {
            o.value: n
            for o, n in sorted(report.outcome_counts.items(), key=by_name)  # type: ignore[attr-defined]
        },
        "submitted": report.queries_submitted,  # type: ignore[attr-defined]
        "usm": report.usm.hex(),  # type: ignore[attr-defined]
        "total_usm": report.total_usm.hex(),  # type: ignore[attr-defined]
        "ratios": {
            o.value: r.hex()
            for o, r in sorted(report.ratios.items(), key=by_name)  # type: ignore[attr-defined]
        },
        "components": {
            k: v.hex() for k, v in sorted(report.components.items())  # type: ignore[attr-defined]
        },
        "update_arrivals": report.update_arrivals,  # type: ignore[attr-defined]
        "updates_executed": report.updates_executed,  # type: ignore[attr-defined]
        "updates_dropped": report.updates_dropped,  # type: ignore[attr-defined]
        "query_access_counts": report.query_access_counts,  # type: ignore[attr-defined]
        "update_counts_original": report.update_counts_original,  # type: ignore[attr-defined]
        "update_counts_executed": report.update_counts_executed,  # type: ignore[attr-defined]
        "busy": {
            k: v.hex() for k, v in sorted(report.busy_by_class.items())  # type: ignore[attr-defined]
        },
        "events_fired": report.events_fired,  # type: ignore[attr-defined]
        "summary": report.summary(),  # type: ignore[attr-defined]
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def stable_report_digest(report: object) -> str:
    """SHA-256 hex digest of :func:`stable_report_bytes`."""
    return hashlib.sha256(stable_report_bytes(report)).hexdigest()


def json_sanitize(value: object) -> object:
    """Recursively replace non-finite floats with ``None`` (→ ``null``).

    Dicts and lists/tuples are rebuilt; every other value passes
    through untouched.  Run over any payload headed for ``json.dump``
    so empty-stream ±inf sentinels and NaNs never reach a report file.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_sanitize(item) for item in value]
    return value


def stats_dict(stats: OnlineStats) -> Dict[str, Optional[float]]:
    """JSON-safe summary of an :class:`OnlineStats`: min/max are
    ``None`` when the stream is empty, never ±inf."""
    return stats.as_dict()


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def bar_chart(
    series: Dict[str, float],
    title: Optional[str] = None,
    width: int = 40,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render a horizontal bar chart of labeled values.

    Values may be negative (USM can be); bars grow from the axis at the
    minimum of 0 and ``lo``.
    """
    if not series:
        return title or ""
    values = list(series.values())
    low = min(0.0, min(values) if lo is None else lo)
    high = max(values) if hi is None else hi
    span = max(high - low, 1e-9)
    label_width = max(len(label) for label in series)

    out: List[str] = []
    if title:
        out.append(title)
    for label, value in series.items():
        filled = int(round((value - low) / span * width))
        bar = "#" * filled
        out.append(f"{label.ljust(label_width)}  {value:+.4f}  |{bar}")
    return "\n".join(out)


def degradation_table(degradation: Dict[str, object]) -> str:
    """Render one run's fault-degradation metrics as an ASCII table.

    Takes the dict produced by
    :func:`repro.faults.metrics.degradation_metrics` (also carried on
    ``SimulationReport.degradation``): one row per fault window with
    the pre-fault baseline, dip depth, time below band, and recovery
    time ("-" when the series never re-entered the band).
    """
    windows = degradation.get("windows")
    rows: List[List[object]] = []
    if isinstance(windows, list):
        for window in windows:
            rows.append(
                [
                    window["label"],
                    window["kind"],
                    window["start"],
                    window["end"],
                    "-" if window["baseline_usm"] is None else window["baseline_usm"],
                    "-" if window["dip_depth"] is None else window["dip_depth"],
                    window["time_below"],
                    "-" if window["recovery_time"] is None else window["recovery_time"],
                ]
            )
    return ascii_table(
        [
            "window",
            "kind",
            "start",
            "end",
            "baseline",
            "dip depth",
            "below band (s)",
            "recovery (s)",
        ],
        rows,
        title=f"Degradation: scenario '{degradation.get('scenario', '?')}'"
        f" (band ±{float(degradation.get('band', 0.0)):.4f})",  # type: ignore[arg-type]
    )


def decile_histogram(counts: Sequence[int], buckets: int = 10) -> List[int]:
    """Aggregate a per-item histogram into ``buckets`` contiguous id
    ranges (Fig. 3 is too wide to print item by item)."""
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    n = len(counts)
    if n == 0:
        return [0] * buckets
    result = [0] * buckets
    for index, value in enumerate(counts):
        bucket = min(buckets - 1, index * buckets // n)
        result[bucket] += value
    return result
