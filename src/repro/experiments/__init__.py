"""Experiment harness: regenerates every table and figure of the
paper's evaluation (Section 4).

* :mod:`repro.experiments.config` — experiment configuration and scales.
* :mod:`repro.experiments.runner` — run one configured simulation.
* :mod:`repro.experiments.sweep` — grids over traces × policies × profiles.
* :mod:`repro.experiments.tables` — Table 1 and Table 2.
* :mod:`repro.experiments.figures` — Figures 3, 4, 5, and 6.
* :mod:`repro.experiments.report` — ASCII rendering helpers.
"""

from repro.experiments.config import (
    SCALES,
    ExperimentConfig,
    ExperimentScale,
    build_experiment,
)
from repro.experiments.runner import SimulationReport, run_experiment
from repro.experiments.sweep import run_grid

__all__ = [
    "SCALES",
    "ExperimentConfig",
    "ExperimentScale",
    "SimulationReport",
    "build_experiment",
    "run_experiment",
    "run_grid",
]
