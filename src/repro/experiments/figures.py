"""Reproduction of Figures 3–6 (paper Section 4).

Every function returns structured data plus a ``render_*`` companion
that prints the same rows/series the paper's figure reports.  Absolute
numbers differ from the paper (our substrate is a simulator at a
different scale); the assertions of shape — who wins, by roughly what
factor, where the crossovers fall — live in the test suite and in
EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.usm import TABLE2_PROFILES, PenaltyProfile
from repro.db.transactions import Outcome
from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.experiments.report import ascii_table, bar_chart, decile_histogram
from repro.experiments.runner import SimulationReport, run_experiment
from repro.experiments.sweep import run_grid
from repro.obs.logging_setup import get_logger
from repro.workload.correlation import pearson

_log = get_logger(__name__)

ALL_POLICIES = ("imu", "odu", "qmf", "unit")
VOLUMES = ("low", "med", "high")
CORRELATIONS = ("unif", "pos", "neg")


# ----------------------------------------------------------------------
# Figure 3 — access/update distributions, original vs UNIT-degraded
# ----------------------------------------------------------------------


@dataclasses.dataclass
class Figure3Case:
    """One Fig. 3 case study (med-unif or med-neg)."""

    trace: str
    query_access_counts: List[int]
    update_counts_original: List[int]
    update_counts_executed: List[int]

    @property
    def drop_fraction(self) -> float:
        original = sum(self.update_counts_original)
        if not original:
            return 0.0
        return 1.0 - sum(self.update_counts_executed) / original

    @property
    def corr_original_vs_queries(self) -> float:
        return pearson(
            [float(c) for c in self.update_counts_original],
            [float(c) for c in self.query_access_counts],
        )

    @property
    def corr_executed_vs_queries(self) -> float:
        return pearson(
            [float(c) for c in self.update_counts_executed],
            [float(c) for c in self.query_access_counts],
        )


def figure3(scale: ExperimentScale, seed: int = 7) -> Dict[str, Figure3Case]:
    """Run UNIT on med-unif and med-neg and collect the distributions.

    The paper's claims: under med-unif, the *kept* updates follow the
    query distribution (Fig. 3(b)); under med-neg, more than 95 % of
    updates are dropped, concentrated on hot-updated/cold-queried items
    (Fig. 3(c)).
    """
    cases: Dict[str, Figure3Case] = {}
    for trace in ("med-unif", "med-neg"):
        config = ExperimentConfig(
            policy="unit", update_trace=trace, seed=seed, scale=scale
        )
        report = run_experiment(config)
        cases[trace] = Figure3Case(
            trace=trace,
            query_access_counts=report.query_access_counts,
            update_counts_original=report.update_counts_original,
            update_counts_executed=report.update_counts_executed,
        )
    return cases


def render_figure3(cases: Dict[str, Figure3Case], buckets: int = 10) -> str:
    blocks: List[str] = ["Figure 3 — distributions over data (UNIT degradation)"]
    reference = next(iter(cases.values()))
    blocks.append(
        ascii_table(
            headers=["id-range bucket"] + [str(i) for i in range(buckets)],
            rows=[
                ["queries (Fig 3a)"]
                + decile_histogram(reference.query_access_counts, buckets)
            ],
        )
    )
    for case in cases.values():
        blocks.append(
            ascii_table(
                headers=["series"] + [str(i) for i in range(buckets)],
                rows=[
                    ["updates original"]
                    + decile_histogram(case.update_counts_original, buckets),
                    ["updates executed"]
                    + decile_histogram(case.update_counts_executed, buckets),
                ],
                title=(
                    f"{case.trace}: dropped {case.drop_fraction:.1%}; "
                    f"corr(updates, queries) original "
                    f"{case.corr_original_vs_queries:+.3f} -> executed "
                    f"{case.corr_executed_vs_queries:+.3f}"
                ),
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Figure 4 — naive USM (success ratio) across the nine traces
# ----------------------------------------------------------------------


def figure4(
    scale: ExperimentScale,
    seed: int = 7,
    progress: bool = False,
    replications: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Naive USM for every (trace, policy): the Fig. 4 bar matrix.

    Returns ``{trace: {policy: usm}}`` with all weights zero, so USM is
    the plain success ratio.  With ``replications > 1`` each cell is
    the mean over seeds ``seed .. seed + replications - 1`` (each seed
    is a fresh workload; every policy still sees the identical one).
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    traces = [f"{volume}-{corr}" for corr in CORRELATIONS for volume in VOLUMES]
    result: Dict[str, Dict[str, float]] = {
        trace: {policy: 0.0 for policy in ALL_POLICIES} for trace in traces
    }
    for replication in range(replications):
        reports = run_grid(
            ALL_POLICIES,
            traces,
            [PenaltyProfile.naive()],
            scale,
            seed=seed + replication,
            progress=progress,
        )
        for (policy, trace, _), report in reports.items():
            result[trace][policy] += report.usm / replications
    return result


def render_figure4(data: Dict[str, Dict[str, float]]) -> str:
    blocks: List[str] = []
    panels = {"unif": "(a) Uniform", "pos": "(b) Positive corr.", "neg": "(c) Negative corr."}
    for corr, panel_title in panels.items():
        rows = []
        for volume in VOLUMES:
            trace = f"{volume}-{corr}"
            if trace not in data:
                continue
            rows.append(
                [trace] + [data[trace].get(policy, float("nan")) for policy in ALL_POLICIES]
            )
        blocks.append(
            ascii_table(
                headers=["trace"] + [policy.upper() for policy in ALL_POLICIES],
                rows=rows,
                title=f"Figure 4 {panel_title} — naive USM (success ratio)",
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Figure 5 — USM under non-zero penalties (Table 2 weights)
# ----------------------------------------------------------------------


def figure5(
    scale: ExperimentScale,
    seed: int = 7,
    trace: str = "med-unif",
    progress: bool = False,
) -> Dict[str, Dict[str, float]]:
    """USM per (profile-key, policy) on ``trace`` — the Fig. 5 panels.

    Profile keys are the Table 2 entries: ``lt1-*`` for panel (a)
    (penalties < 1), ``gt1-*`` for panel (b) (penalties > 1).
    """
    profiles = list(TABLE2_PROFILES.values())
    reports = run_grid(
        ALL_POLICIES, [trace], profiles, scale, seed=seed, progress=progress
    )
    result: Dict[str, Dict[str, float]] = {}
    key_by_name = {profile.name: key for key, profile in TABLE2_PROFILES.items()}
    for (policy, _, profile_name), report in reports.items():
        key = key_by_name[profile_name]
        result.setdefault(key, {})[policy] = report.usm
    return result


def render_figure5(data: Dict[str, Dict[str, float]]) -> str:
    blocks: List[str] = []
    panels = {
        "lt1": "(a) penalties < 1",
        "gt1": "(b) penalties > 1",
    }
    for prefix, panel_title in panels.items():
        rows = []
        for key in sorted(key for key in data if key.startswith(prefix)):
            rows.append(
                [TABLE2_PROFILES[key].name]
                + [data[key].get(policy, float("nan")) for policy in ALL_POLICIES]
            )
        if rows:
            blocks.append(
                ascii_table(
                    headers=["setting"] + [policy.upper() for policy in ALL_POLICIES],
                    rows=rows,
                    title=f"Figure 5 {panel_title} — USM on med-unif",
                )
            )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Figure 6 — outcome-ratio decomposition
# ----------------------------------------------------------------------


@dataclasses.dataclass
class RatioBar:
    """One stacked bar of Fig. 6."""

    label: str
    success: float
    rejection: float
    dmf: float
    dsf: float

    @classmethod
    def from_report(cls, label: str, report: SimulationReport) -> "RatioBar":
        ratios = report.ratios
        return cls(
            label=label,
            success=ratios[Outcome.SUCCESS],
            rejection=ratios[Outcome.REJECTED],
            dmf=ratios[Outcome.DEADLINE_MISS],
            dsf=ratios[Outcome.DATA_STALE],
        )


def figure6(
    scale: ExperimentScale,
    seed: int = 7,
    trace: str = "med-unif",
    progress: bool = False,
) -> Dict[str, List[RatioBar]]:
    """Outcome ratios: panel (a) the weight-insensitive baselines,
    panel (b) UNIT under the three penalties-<1 profiles of Fig. 5(a).
    """
    naive = PenaltyProfile.naive()
    panel_a: List[RatioBar] = []
    for policy in ("imu", "odu", "qmf"):
        report = run_experiment(
            ExperimentConfig(
                policy=policy, update_trace=trace, profile=naive, seed=seed, scale=scale
            )
        )
        panel_a.append(RatioBar.from_report(policy.upper(), report))
        if progress:
            _log.info("[fig6] %s done (%.1fs)", policy, report.wall_seconds)

    panel_b: List[RatioBar] = []
    for key in ("lt1-high-cr", "lt1-high-cfm", "lt1-high-cfs"):
        profile = TABLE2_PROFILES[key]
        report = run_experiment(
            ExperimentConfig(
                policy="unit",
                update_trace=trace,
                profile=profile,
                seed=seed,
                scale=scale,
            )
        )
        panel_b.append(RatioBar.from_report(f"UNIT {profile.name}", report))
        if progress:
            _log.info("[fig6] unit/%s done (%.1fs)", key, report.wall_seconds)
    return {"baselines": panel_a, "unit": panel_b}


def render_figure6(data: Dict[str, List[RatioBar]]) -> str:
    def table(bars: List[RatioBar], title: str) -> str:
        return ascii_table(
            headers=["policy", "R_s", "R_r", "R_fm", "R_fs"],
            rows=[
                [bar.label, bar.success, bar.rejection, bar.dmf, bar.dsf]
                for bar in bars
            ],
            title=title,
        )

    return "\n\n".join(
        [
            table(data["baselines"], "Figure 6(a) — baselines (weight-insensitive)"),
            table(data["unit"], "Figure 6(b) — UNIT under Fig. 5(a) weight setups"),
        ]
    )


# ----------------------------------------------------------------------
# misc renderers
# ----------------------------------------------------------------------


def usm_bars(data: Dict[str, float], title: str) -> str:
    """Bar-chart view of a {policy: usm} series."""
    return bar_chart(data, title=title)
