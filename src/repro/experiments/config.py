"""Experiment configuration.

An :class:`ExperimentConfig` pins down everything a run needs: the
workload scale, the update trace, the policy and its knobs, the penalty
profile, and the master seed.  :data:`SCALES` provides three presets —
``smoke`` for unit tests, ``small`` for benchmarks, and ``paper`` for
full reproduction runs (1024 items, as in the paper).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Optional

from repro.core.elastic import ElasticConfig
from repro.core.qmf import QmfConfig
from repro.core.unit import UnitConfig
from repro.core.usm import PenaltyProfile
from repro.faults.scenario import FaultScenario
from repro.obs.config import ObsConfig
from repro.workload.updates import STANDARD_UPDATE_TRACES

# "elastic" is the related-work baseline (Buttazzo-style uniform period
# stretching); the paper's own comparison set is the first four.
POLICIES = ("unit", "imu", "odu", "qmf", "elastic")


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """Workload size preset.

    Attributes:
        name: Preset label.
        horizon: Trace length (seconds).
        n_items: Database size S (paper: 1024).
        query_utilization: Long-run CPU demand of the query stream.
        mean_query_service: Mean query execution time (seconds).
        mean_update_exec: Mean update execution time (seconds).
    """

    name: str
    horizon: float
    n_items: int
    query_utilization: float = 0.65
    mean_query_service: float = 0.05
    # Updates are disk *writes* — substantially slower than reads (the
    # paper's 30k med-volume updates carry 75% CPU).  3x the mean read
    # service reproduces the queries-outnumber-updates regime.
    mean_update_exec: float = 0.15


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(name="smoke", horizon=120.0, n_items=64),
    "small": ExperimentScale(name="small", horizon=400.0, n_items=128),
    "paper": ExperimentScale(name="paper", horizon=3000.0, n_items=1024),
}


@dataclasses.dataclass
class ExperimentConfig:
    """Full specification of one simulation run."""

    policy: str = "unit"
    update_trace: str = "med-unif"
    profile: PenaltyProfile = dataclasses.field(default_factory=PenaltyProfile.naive)
    seed: int = 7
    scale: ExperimentScale = dataclasses.field(default_factory=lambda: SCALES["small"])

    # Query-trace shape (beyond the scale preset).  The defaults are the
    # calibration DESIGN.md documents: Zipf 1.3 access skew, deadlines
    # drawn from [mean response, 3 x mean response] (the tight-deadline
    # regime of the paper's latency-guarantee motivation), 4x flash
    # crowds.
    service_cv: float = 1.0
    zipf_skew: float = 1.3
    burst_factor: float = 4.0
    normal_dwell: float = 120.0
    burst_dwell: float = 20.0
    freshness_req: float = 0.9
    items_per_query: int = 1
    deadline_high_factor: float = 3.0
    deadline_high_base: str = "mean"  # "max" (paper literal) or "mean" (tight)

    # Update-trace shape.
    update_exec_cv: float = 0.5

    # Freshness metric: "lag" (the paper's Eq. 1, default), "time"
    # (exponential decay with ``freshness_half_life``), "divergence"
    # (linear drift of ``freshness_drift`` per pending update), or
    # "value" (actual random-walk value distance, scaled by
    # ``freshness_value_scale``; walk step sigma ``freshness_value_sigma``).
    freshness_metric: str = "lag"
    freshness_half_life: float = 30.0
    freshness_drift: float = 0.1
    freshness_value_scale: float = 5.0
    freshness_value_sigma: float = 1.0

    # Policy knobs (None = defaults derived from the profile/scale).
    unit: Optional[UnitConfig] = None
    qmf: Optional[QmfConfig] = None
    elastic: Optional[ElasticConfig] = None

    # Bookkeeping.
    keep_records: bool = False

    # Observability (None = disabled: the server runs with the shared
    # NULL_RECORDER and pays only a guard per would-be event).  The
    # workload key deliberately excludes this field — tracing does not
    # shape the traces.
    obs: Optional[ObsConfig] = None

    # Fault injection (None = no faults; runs are byte-identical to a
    # config without the field).  Trace-shaping injectors fold into
    # ``workload_key()`` via the scenario's fingerprint; a slowdown-only
    # scenario leaves the key unchanged so paired runs share the cached
    # workload.
    faults: Optional[FaultScenario] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; one of {POLICIES}")
        if self.update_trace not in STANDARD_UPDATE_TRACES:
            raise ValueError(
                f"unknown update trace {self.update_trace!r}; "
                f"one of {sorted(STANDARD_UPDATE_TRACES)}"
            )
        if self.items_per_query < 1:
            raise ValueError("items_per_query must be >= 1")
        if self.freshness_metric not in ("lag", "time", "divergence", "value"):
            raise ValueError(
                f"unknown freshness metric {self.freshness_metric!r}; "
                "one of 'lag', 'time', 'divergence', 'value'"
            )

    def build_freshness_metric(self):
        """Instantiate the configured per-item freshness measure.

        The "value" metric carries its own deterministic value table
        (seeded from this config's seed).
        """
        from repro.db.freshness import (
            DivergenceFreshness,
            LagFreshness,
            TimeFreshness,
        )

        if self.freshness_metric == "time":
            return TimeFreshness(half_life=self.freshness_half_life)
        if self.freshness_metric == "divergence":
            return DivergenceFreshness(drift_per_update=self.freshness_drift)
        if self.freshness_metric == "value":
            from repro.db.values import ValueDivergenceFreshness, ValueTable
            from repro.sim.rng import derive_seed

            table = ValueTable(
                n_items=self.scale.n_items,
                seed=derive_seed(self.seed, "value-table"),
                step_sigma=self.freshness_value_sigma,
            )
            return ValueDivergenceFreshness(table, scale=self.freshness_value_scale)
        return LagFreshness()

    def workload_key(self) -> str:
        """Content-address of the workload this config generates.

        Two configs with equal keys produce byte-identical query and
        update traces: the key covers exactly the fields
        :func:`repro.experiments.runner.build_workload` reads (plus the
        seed) and nothing else — policy, penalty profile, and freshness
        metric do not shape the traces, so paired runs share one entry.
        Floats are canonicalized with ``float.hex()`` (exact bits).
        """
        scale = self.scale
        parts = (
            "workload-v1",  # bump when trace generation changes shape
            str(self.seed),
            self.update_trace,
            scale.horizon.hex(),
            str(scale.n_items),
            scale.query_utilization.hex(),
            scale.mean_query_service.hex(),
            scale.mean_update_exec.hex(),
            self.service_cv.hex(),
            self.zipf_skew.hex(),
            self.burst_factor.hex(),
            self.normal_dwell.hex(),
            self.burst_dwell.hex(),
            self.freshness_req.hex(),
            str(self.items_per_query),
            self.deadline_high_factor.hex(),
            self.deadline_high_base,
            self.update_exec_cv.hex(),
        )
        if self.faults is not None:
            fingerprint = self.faults.workload_fingerprint()
            if fingerprint:
                parts = parts + (fingerprint,)
        return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()

    def unit_config(self) -> UnitConfig:
        """The UNIT knobs for this run (default: paper constants with
        the run's penalty profile)."""
        if self.unit is not None:
            return self.unit
        return UnitConfig(profile=self.profile)

    def qmf_config(self) -> QmfConfig:
        """The QMF knobs for this run."""
        if self.qmf is not None:
            return self.qmf
        return QmfConfig()

    def elastic_config(self) -> ElasticConfig:
        """The elastic-baseline knobs for this run."""
        if self.elastic is not None:
            return self.elastic
        return ElasticConfig()

    def label(self) -> str:
        return f"{self.policy}/{self.update_trace}/{self.profile.name or 'naive'}"


def build_experiment(
    policy: str = "unit",
    update_trace: str = "med-unif",
    profile: Optional[PenaltyProfile] = None,
    seed: int = 7,
    scale: str = "small",
    **overrides,
) -> ExperimentConfig:
    """Convenience constructor used by the quickstart and examples.

    Args:
        policy: One of ``unit``, ``imu``, ``odu``, ``qmf``.
        update_trace: One of the nine Table 1 traces (e.g. ``med-unif``).
        profile: Penalty profile; the naive (success-ratio) profile by
            default.
        seed: Master seed for all random streams.
        scale: A :data:`SCALES` preset name.
        **overrides: Any other :class:`ExperimentConfig` field.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; one of {sorted(SCALES)}")
    return ExperimentConfig(
        policy=policy,
        update_trace=update_trace,
        profile=profile or PenaltyProfile.naive(),
        seed=seed,
        scale=SCALES[scale],
        **overrides,
    )
