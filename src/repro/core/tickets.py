"""Ticket-value maintenance for Update Frequency Modulation
(paper Section 3.4.1).

Each data item carries a ticket value ``T_j``; the larger the ticket,
the more likely the item's updates get degraded.  Two event types move
tickets, both through the forgetting recurrence of Eq. 8:

* a **query access** to ``d_j`` *decreases* the ticket by
  ``DT_j = qe_i / qt_i`` (Eq. 6) — items needed by CPU-hungry queries
  are protected;
* an **update** of ``d_j`` *increases* the ticket by the sigmoid
  ``IT_j = 1 / (1 + e^(ue_avg - ue_j))`` (Eq. 7 as disambiguated in
  DESIGN.md) — expensive update streams are preferred victims.

Lottery sampling needs non-negative weights.  The paper shifts all
tickets by the minimum (``T'_j = T_j - T_min``); we instead clamp at
zero (``T'_j = max(0, T_j)``).  This is a deliberate deviation (see
DESIGN.md): under the min-shift, a heavily-queried item's victim
probability is proportional to its distance from the *most* protected
item — small, but over the hundreds of thousands of lottery picks a
scaled-down simulation needs, the hottest item is still drawn a
handful of times, and a single dropped update on it stales an entire
update period's worth of reads.  Clamping at zero keeps probability
proportional to tickets for update-dominated items (positive tickets)
and gives query-dominated items (negative tickets) exactly zero
probability, which is the selection behaviour the paper's Fig. 3
depicts.  It also makes every ticket mutation a plain O(log N) Fenwick
update with no offset rebuilds.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.core.lottery import LotteryScheduler
from repro.sim.stats import OnlineStats

DEFAULT_FORGETTING = 0.9  # C_forget (paper follows the literature)


def sigmoid_increase(update_exec_time: float, average_exec_time: float) -> float:
    """Eq. 7: map the exec-time gap to ``(0, 1)`` via the sigmoid."""
    gap = average_exec_time - update_exec_time
    # Guard the exponential for extreme gaps.
    if gap > 60.0:
        return 0.0
    if gap < -60.0:
        return 1.0
    return 1.0 / (1.0 + math.exp(gap))


class TicketBook:
    """Per-item ticket values with forgetting and lottery sampling."""

    def __init__(
        self,
        n_items: int,
        forgetting: float = DEFAULT_FORGETTING,
    ) -> None:
        if n_items <= 0:
            raise ValueError("n_items must be positive")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting factor must be in (0, 1]")
        self.forgetting = forgetting
        self._tickets: List[float] = [0.0] * n_items
        self._lottery = LotteryScheduler(n_items)
        self._threshold = 0.0  # tau: lottery weight = max(0, T - tau)
        self.update_exec_stats = OnlineStats()

    def __len__(self) -> int:
        return len(self._tickets)

    def ticket(self, item_id: int) -> float:
        """Raw (unshifted) ticket value of an item."""
        return self._tickets[item_id]

    def tickets(self) -> List[float]:
        return list(self._tickets)

    @property
    def average_update_exec_time(self) -> float:
        """Running mean of observed update execution times (``ue_avg``)."""
        return self.update_exec_stats.mean

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------

    def on_query_access(self, item_id: int, cpu_utilization: float) -> None:
        """Query touching ``item_id``: Eq. 8 with decrement Eq. 6.

        Args:
            cpu_utilization: ``qe_i / qt_i`` of the accessing query.
        """
        if cpu_utilization < 0:
            raise ValueError("cpu utilization cannot be negative")
        new_value = self._tickets[item_id] * self.forgetting - cpu_utilization
        self._set_ticket(item_id, new_value)

    def on_update(self, item_id: int, update_exec_time: float) -> None:
        """Update on ``item_id``: Eq. 8 with increment Eq. 7.

        Also folds the execution time into the running ``ue_avg``.
        """
        self.update_exec_stats.add(update_exec_time)
        increase = sigmoid_increase(update_exec_time, self.average_update_exec_time)
        new_value = self._tickets[item_id] * self.forgetting + increase
        self._set_ticket(item_id, new_value)

    def _set_ticket(self, item_id: int, value: float) -> None:
        self._tickets[item_id] = value
        # Branch instead of ``max(0.0, ...)``: this runs on every query
        # access and every applied update, and the builtin call costs
        # more than the compare (``<= 0.0`` also normalizes -0.0 away,
        # exactly as ``max`` did by returning its first argument).
        weight = value - self._threshold
        if weight <= 0.0:
            weight = 0.0
        self._lottery.set_weight(item_id, weight)

    # ------------------------------------------------------------------
    # adaptive threshold (escalating degradation pressure)
    # ------------------------------------------------------------------

    @property
    def threshold(self) -> float:
        """Current shift ``tau``: items with ``T_j <= tau`` have zero
        victim probability.  ``tau = 0`` protects every query-dominated
        item; lowering it (never below the minimum ticket) walks the
        degradation frontier into progressively more protected items —
        the modulator does this when overload persists after all
        update-dominated items are fully degraded."""
        return self._threshold

    def lower_threshold(self, step: float) -> float:
        """Lower ``tau`` by ``step`` (floored at the minimum ticket, at
        which point the behaviour equals the paper's min-shift).
        Rebuilds the lottery in O(n).  Returns the new threshold."""
        if step <= 0:
            raise ValueError("step must be positive")
        floor = min(self._tickets)
        self._threshold = max(floor, self._threshold - step)
        self._rebuild_weights()
        return self._threshold

    def raise_threshold(self, step: float) -> float:
        """Raise ``tau`` back toward 0 (its ceiling) by ``step``."""
        if step <= 0:
            raise ValueError("step must be positive")
        self._threshold = min(0.0, self._threshold + step)
        self._rebuild_weights()
        return self._threshold

    def _rebuild_weights(self) -> None:
        self._lottery.rebuild(
            [max(0.0, t - self._threshold) for t in self._tickets]
        )

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample_victim(self, rng: random.Random) -> Optional[int]:
        """Lottery pick: item id drawn ∝ shifted ticket value.

        Returns None when all shifted tickets are zero (e.g. before any
        event moved a ticket).
        """
        return self._lottery.sample(rng)

    def shifted_weights(self) -> List[float]:
        """The current lottery weights (shifted tickets), for tests."""
        return self._lottery.weights()
