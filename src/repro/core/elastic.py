"""Elastic update scheduling — a related-work baseline.

The paper's Section 5 contrasts UNIT's update-frequency modulation with
Buttazzo, Lipari, Caccamo & Abeni's *elastic scheduling* (IEEE ToC
2002), where "periodic tasks are treated as springs, so the period (and
also the workload) can be adjusted by changing the elastic
coefficients" — a general overload-management technique that stretches
*every* task's period proportionally, with no notion of which data the
users actually read.

This policy is that idea applied to the update streams: a feedback loop
measures the update class's CPU share each period and compresses or
relaxes one global stretch factor so the share tracks a target.  All
items stretch together (uniform elasticity), which makes ElasticPolicy
the natural ablation partner for UNIT — same knob (periods), none of
the ticket/lottery selectivity.  Queries are admitted with the same
feasibility check UNIT's deadline check reduces to at its loosest
setting, so the comparison isolates the update side.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Optional

from repro.db.items import DataItem
from repro.db.policy_api import ServerPolicy
from repro.db.server import CONTROL_EVENT_PRIORITY
from repro.db.transactions import QueryTransaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.server import Server


@dataclasses.dataclass
class ElasticConfig:
    """Tunables of the elastic update scheduler.

    Attributes:
        target_update_share: CPU fraction the update class may consume;
            the spring compresses (periods stretch) when the measured
            share exceeds it.
        control_period: Feedback interval in seconds.
        step: Multiplicative stretch/relax factor per control decision.
        max_stretch: Upper bound on the global period stretch.
        feasibility_check: Reject queries whose execution cannot fit
            before their deadline given the current backlog (True keeps
            the query side comparable to UNIT's loosest admission).
    """

    target_update_share: float = 0.30
    control_period: float = 1.0
    step: float = 0.10
    max_stretch: float = 100.0
    feasibility_check: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.target_update_share < 1:
            raise ValueError("target_update_share must be in (0, 1)")
        if self.control_period <= 0:
            raise ValueError("control_period must be positive")
        if not 0 < self.step < 1:
            raise ValueError("step must be in (0, 1)")
        if self.max_stretch <= 1:
            raise ValueError("max_stretch must exceed 1")


class ElasticPolicy(ServerPolicy):
    """Uniform, utilization-driven period stretching for all items."""

    def __init__(self, config: Optional[ElasticConfig] = None) -> None:
        self.config = config or ElasticConfig()
        self.stretch = 1.0
        self._server: Optional["Server"] = None
        self._last_busy_update = 0.0
        self._last_apply: Dict[int, float] = {}
        self.compressions = 0
        self.relaxations = 0

    # ------------------------------------------------------------------
    # ServerPolicy interface
    # ------------------------------------------------------------------

    def bind(self, server: "Server") -> None:
        self._server = server
        server.sim.schedule_after(
            self.config.control_period,
            self._control_tick,
            priority=CONTROL_EVENT_PRIORITY,
        )

    def admit_query(self, query: QueryTransaction, server: "Server") -> bool:
        if not self.config.feasibility_check:
            return True
        backlog = (
            server.running_remaining()
            + server.ready.update_backlog()
            + server.ready.query_backlog_before(query.deadline)
        )
        return backlog + query.exec_time < query.relative_deadline

    def should_apply_update(self, item: DataItem, server: "Server") -> bool:
        # Identical gating to UNIT's, but against the *global* stretched
        # period rather than a per-item modulated one.
        effective_period = item.ideal_period * self.stretch
        now = server.now
        last = self._last_apply.get(item.item_id)
        if last is None or now - last >= effective_period * (1.0 - 1e-9):
            self._last_apply[item.item_id] = now
            return True
        return False

    def describe(self) -> str:
        return "Elastic"

    # ------------------------------------------------------------------
    # the spring
    # ------------------------------------------------------------------

    def _control_tick(self) -> None:
        assert self._server is not None
        server = self._server
        busy_update = server.busy_time_by_class()["update"]
        share = (busy_update - self._last_busy_update) / self.config.control_period
        self._last_busy_update = busy_update

        if share > self.config.target_update_share:
            self.stretch = min(
                self.config.max_stretch, self.stretch * (1.0 + self.config.step)
            )
            self.compressions += 1
        elif self.stretch > 1.0:
            self.stretch = max(1.0, self.stretch * (1.0 - self.config.step))
            self.relaxations += 1

        server.sim.schedule_after(
            self.config.control_period,
            self._control_tick,
            priority=CONTROL_EVENT_PRIORITY,
        )
