"""Query Admission Control (paper Section 3.3).

Two gates per arriving query, both backed by the ready queue's
incrementally-maintained backlog aggregates (O(buckets) reads instead
of full scans; the endangered-queries walk touches only the candidates
dispatched after the newcomer, already in EDF order):

1. **Transaction deadline check** — keep only *promising* queries:
   ``C_flex * EST_i + qe_i < qt_i`` where ``EST_i`` is the earliest
   possible start time (the backlog that must drain before ``q_i`` can
   run under the dual-priority EDF discipline) and ``C_flex`` is the
   lag ratio the LBC tunes: Tighten/Loosen Admission Control signals
   move it ±10 % (larger ``C_flex`` = tighter admission).

2. **System USM check** — even a promising query is rejected when the
   DMF penalty of the already-admitted queries it would endanger
   exceeds the rejection penalty of turning it away.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List

from repro.core.usm import PenaltyProfile
from repro.db.transactions import QueryTransaction
from repro.obs.trace import NULL_RECORDER, Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.server import Server

FLEX_STEP = 0.10  # TAC/LAC move C_flex by 10% (Section 3.3)
FLEX_MIN = 0.01
# Cap how far TAC can tighten: beyond a few multiples of the EST the
# controller is rejecting queries that would comfortably make their
# deadlines, and the LAC path takes many periods to walk back.
FLEX_MAX = 4.0


@dataclasses.dataclass
class AdmissionDecision:
    """A structured admission verdict (useful for tests and tracing)."""

    admitted: bool
    reason: str
    est: float = 0.0
    endangered: int = 0


class AdmissionController:
    """The AC module: deadline check plus system-USM check."""

    def __init__(
        self,
        profile: PenaltyProfile,
        c_flex: float = 1.0,
        use_usm_check: bool = True,
    ) -> None:
        if c_flex <= 0:
            raise ValueError("c_flex must be positive")
        self.profile = profile
        self.c_flex = c_flex
        self.use_usm_check = use_usm_check
        self.tighten_signals = 0
        self.loosen_signals = 0
        # Fraction of the CPU the update class has been consuming
        # recently (refreshed by the policy's control tick).  Under the
        # dual-priority discipline queued queries drain at rate
        # (1 - update load); we stretch the EST by a *bounded* factor,
        # because an unbounded stretch would reject every query under
        # update overload and thereby starve the R->LAC / F_m->DU
        # feedback the LBC relies on to shed that very load.
        self.update_load = 0.0
        self.max_drain_stretch = 2.0
        # Trace recorder; the owning policy swaps in a live one at bind
        # time when observability is enabled.
        self.recorder: Recorder = NULL_RECORDER

    # ------------------------------------------------------------------
    # LBC control signals
    # ------------------------------------------------------------------

    def tighten(self) -> None:
        """TAC: raise ``C_flex`` by 10 % (admit less)."""
        self.c_flex = min(FLEX_MAX, self.c_flex * (1.0 + FLEX_STEP))
        self.tighten_signals += 1

    def loosen(self) -> None:
        """LAC: lower ``C_flex`` by 10 % (admit more)."""
        self.c_flex = max(FLEX_MIN, self.c_flex * (1.0 - FLEX_STEP))
        self.loosen_signals += 1

    # ------------------------------------------------------------------
    # the admission decision
    # ------------------------------------------------------------------

    def earliest_start(self, query: QueryTransaction, server: "Server") -> float:
        """EST relative to now: backlog ahead of ``query`` under
        dual-priority EDF — the running transaction's remainder, all
        queued updates, and queued queries with earlier deadlines —
        stretched by the measured update load (future update arrivals
        preempt the whole query class)."""
        ready = server.ready
        if not ready and server.running_transaction() is None:
            # Idle server: every backlog term is exactly 0.0, and
            # 0.0 * stretch == 0.0 for any stretch.
            return 0.0
        backlog = server.running_remaining() + ready.backlog_ahead_of(query)
        return backlog * self._drain_stretch()

    def _drain_stretch(self) -> float:
        """Bounded EDF-drain correction for the measured update load."""
        # Branches instead of min/max builtins: this runs per admission
        # decision and the builtin calls dominate the arithmetic.
        drain = 1.0 - self.update_load
        if drain < 0.05:
            drain = 0.05
        stretch = 1.0 / drain
        if stretch > self.max_drain_stretch:
            stretch = self.max_drain_stretch
        return stretch

    def endangered_queries(
        self,
        query: QueryTransaction,
        server: "Server",
    ) -> List[QueryTransaction]:
        """Admitted ready queries that would newly miss their deadline
        if ``query`` (which runs before them under EDF) is admitted.

        A ready query ``r`` dispatched after the newcomer sees its start
        pushed back by ``qe_i``; it is endangered when its slack was
        non-negative but smaller than ``qe_i``.  "After" is the full
        EDF tie-break order (``priority_key``), so an equal-deadline
        ready query is classified exactly once: ahead of the newcomer
        (in the base backlog) when its txn id is smaller, behind it
        (endangered candidate) otherwise — never both, never neither.
        """
        endangered: List[QueryTransaction] = []
        prefix = 0.0
        base = -1.0
        now = server.now
        exec_time = query.exec_time
        for other in server.ready.queries_after(query):
            if base < 0.0:
                # First candidate: pay for the base backlog only when
                # the walk is non-empty (backlogs are never negative).
                base = server.running_remaining()
                base += server.ready.backlog_ahead_of(query)
            # Work ahead of `other` excluding the newcomer: base backlog
            # plus earlier-deadline ready queries between the newcomer
            # and `other`.
            start = base + prefix
            finish = now + start + other.remaining
            slack = other.deadline - finish
            if 0.0 <= slack < exec_time:
                endangered.append(other)
            prefix += other.remaining
        return endangered

    def decide(self, query: QueryTransaction, server: "Server") -> AdmissionDecision:
        """Run both admission gates for an arriving query."""
        decision = self._decide(query, server)
        rec = self.recorder
        if rec.enabled:
            rec.admission_decision(
                server.now,
                query.txn_id,
                decision.admitted,
                decision.reason,
                decision.est,
                decision.endangered,
                self.c_flex,
            )
        return decision

    def _decide(self, query: QueryTransaction, server: "Server") -> AdmissionDecision:
        # Paper Section 3.3: reject unless C_flex * EST + qe < qt.  The
        # drain stretch is folded into the EST (the backlog drains
        # slower under update load); the query's own execution time is
        # deliberately left unscaled so that driving C_flex down can
        # always take the rejection rate to (only) the truly-impossible
        # queries (qe >= qt).
        #
        # Preference-aware twist: a failed deadline check predicts a
        # miss, so by Eq. 3 economics rejection is only the cheaper
        # outcome when C_r < C_fm.  A profile that prices rejection
        # *above* a miss (C_r > C_fm) would rather take the gamble —
        # admit.  Under the naive all-zero weights the clause never
        # fires and the paper's literal check applies.
        est = self.earliest_start(query, server)
        if self.c_flex * est + query.exec_time >= query.relative_deadline:
            own = query.profile or self.profile
            if not own.c_r > own.c_fm:
                return AdmissionDecision(
                    admitted=False, reason="deadline-check", est=est
                )

        # Multi-preference extension: a query carrying its own profile
        # is priced by it; everyone else uses the system-wide profile.
        own_profile = query.profile or self.profile
        if self.use_usm_check and not (own_profile.is_naive and self.profile.is_naive):
            endangered = self.endangered_queries(query, server)
            dmf_cost = sum(
                (other.profile or self.profile).c_fm for other in endangered
            )
            if dmf_cost > own_profile.c_r:
                return AdmissionDecision(
                    admitted=False,
                    reason="usm-check",
                    est=est,
                    endangered=len(endangered),
                )
            return AdmissionDecision(
                admitted=True, reason="ok", est=est, endangered=len(endangered)
            )

        return AdmissionDecision(admitted=True, reason="ok", est=est)
