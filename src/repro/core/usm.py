"""The User Satisfaction Metric (paper Section 2.3).

Each query contributes a gain ``G_s`` on success or a penalty ``C_r`` /
``C_fm`` / ``C_fs`` on rejection / deadline miss / stale data (Eq. 3).
The system USM is the sum over all submitted queries (Eq. 2); dividing
by the number of submitted queries gives the *average* USM

    ``USM = S - R - F_m - F_s``                       (Eq. 5)

whose range is ``[-max(C_r, C_fm, C_fs), G_s]`` (Section 2.3.2).
Setting all penalties to zero collapses USM to the classic success
ratio — the paper's "naive USM" used in Fig. 4.
"""

from __future__ import annotations

import dataclasses
import functools
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.fixedpoint import fixed_from_float, float_from_fixed
from repro.db.transactions import Outcome


@dataclasses.dataclass(frozen=True)
class PenaltyProfile:
    """The users' preference weights.

    Attributes:
        c_r: Rejection penalty.
        c_fm: Deadline-Missed-Failure penalty.
        c_fs: Data-Stale-Failure penalty.
        gain: Success gain ``G_s``; the paper normalizes penalties to a
            gain of 1.
        name: Label for reports (e.g. ``"high C_fm (<1)"``).
    """

    c_r: float = 0.0
    c_fm: float = 0.0
    c_fs: float = 0.0
    gain: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if min(self.c_r, self.c_fm, self.c_fs) < 0:
            raise ValueError("penalties cannot be negative")
        if self.gain <= 0:
            raise ValueError("gain must be positive")

    def contribution(self, outcome: Outcome) -> float:
        """Per-query USM contribution for the given outcome (Eq. 3)."""
        if outcome is Outcome.SUCCESS:
            return self.gain
        if outcome is Outcome.REJECTED:
            return -self.c_r
        if outcome is Outcome.DEADLINE_MISS:
            return -self.c_fm
        if outcome is Outcome.DATA_STALE:
            return -self.c_fs
        raise ValueError(f"unaccounted outcome {outcome!r}")

    @property
    def usm_min(self) -> float:
        """Lower bound of the average USM."""
        return -max(self.c_r, self.c_fm, self.c_fs, 0.0)

    @property
    def usm_max(self) -> float:
        """Upper bound of the average USM (all queries succeed)."""
        return self.gain

    @property
    def usm_range(self) -> float:
        """Width of the attainable USM interval."""
        return self.usm_max - self.usm_min

    @property
    def is_naive(self) -> bool:
        """True when all penalties are zero (USM == success ratio)."""
        return self.c_r == self.c_fm == self.c_fs == 0.0

    @classmethod
    def naive(cls) -> "PenaltyProfile":
        """The Fig. 4 setting: USM equals the success ratio."""
        return cls(name="naive")

    def describe(self) -> str:
        label = self.name or "custom"
        return (
            f"{label} (C_r={self.c_r:g}, C_fm={self.c_fm:g}, "
            f"C_fs={self.c_fs:g}, G_s={self.gain:g})"
        )


# Table 2: the six weight settings used in Fig. 5.
TABLE2_PROFILES: Dict[str, PenaltyProfile] = {
    "lt1-high-cr": PenaltyProfile(c_r=0.5, c_fm=0.1, c_fs=0.1, name="high C_r (<1)"),
    "lt1-high-cfm": PenaltyProfile(c_r=0.1, c_fm=0.5, c_fs=0.1, name="high C_fm (<1)"),
    "lt1-high-cfs": PenaltyProfile(c_r=0.1, c_fm=0.1, c_fs=0.5, name="high C_fs (<1)"),
    "gt1-high-cr": PenaltyProfile(c_r=5.0, c_fm=1.0, c_fs=1.0, name="high C_r (>1)"),
    "gt1-high-cfm": PenaltyProfile(c_r=1.0, c_fm=5.0, c_fs=1.0, name="high C_fm (>1)"),
    "gt1-high-cfs": PenaltyProfile(c_r=1.0, c_fm=1.0, c_fs=5.0, name="high C_fs (>1)"),
}


class UsmAccumulator:
    """Cumulative USM bookkeeping over a whole run (Eqs. 2–5)."""

    def __init__(self, profile: PenaltyProfile) -> None:
        self.profile = profile
        self.counts: Dict[Outcome, int] = {outcome: 0 for outcome in Outcome}

    def record(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    @property
    def total_queries(self) -> int:
        return sum(self.counts.values())

    def total_usm(self) -> float:
        """System USM: the Eq. 4 sum of gains minus penalties."""
        return sum(
            self.profile.contribution(outcome) * count
            for outcome, count in self.counts.items()
        )

    def average_usm(self) -> float:
        """Average USM (Eq. 5); 0.0 before any query is recorded."""
        total = self.total_queries
        if not total:
            return 0.0
        return self.total_usm() / total

    def ratios(self) -> Dict[Outcome, float]:
        """Outcome ratios R_s / R_r / R_fm / R_fs (Section 4.5)."""
        total = self.total_queries
        if not total:
            return {outcome: 0.0 for outcome in Outcome}
        return {outcome: count / total for outcome, count in self.counts.items()}

    def components(self) -> Dict[str, float]:
        """The Eq. 5 decomposition: S, R, F_m, F_s (all non-negative)."""
        ratios = self.ratios()
        return {
            "S": ratios[Outcome.SUCCESS] * self.profile.gain,
            "R": ratios[Outcome.REJECTED] * self.profile.c_r,
            "F_m": ratios[Outcome.DEADLINE_MISS] * self.profile.c_fm,
            "F_s": ratios[Outcome.DATA_STALE] * self.profile.c_fs,
        }

    @classmethod
    def from_counts(
        cls,
        profile: PenaltyProfile,
        counts: Mapping[Outcome, int],
    ) -> "UsmAccumulator":
        """Build an accumulator from pre-counted outcomes."""
        acc = cls(profile)
        for outcome, count in counts.items():
            acc.counts[outcome] += count
        return acc


class MixedUsmAccumulator:
    """USM accounting for heterogeneous user preferences.

    Section 3.1 assumes a single system-wide profile and notes the
    framework "can be easily extended to support multiple preferences";
    this accumulator is that extension's reporting side: each recorded
    query carries its own :class:`PenaltyProfile` (falling back to a
    default), and totals are available overall and per user class.
    """

    def __init__(self, default_profile: PenaltyProfile) -> None:
        self.default_profile = default_profile
        self._total_usm = 0.0
        self._by_class: Dict[str, Dict[str, Any]] = {}

    def record(
        self,
        outcome: Outcome,
        profile: Optional[PenaltyProfile] = None,
        user_class: str = "default",
    ) -> None:
        profile = profile or self.default_profile
        contribution = profile.contribution(outcome)
        self._total_usm += contribution
        bucket = self._by_class.setdefault(
            user_class, {"usm": 0.0, "count": 0, "counts": {o: 0 for o in Outcome}}
        )
        bucket["usm"] += contribution
        bucket["count"] += 1
        bucket["counts"][outcome] += 1

    @property
    def total_queries(self) -> int:
        return sum(bucket["count"] for bucket in self._by_class.values())

    def total_usm(self) -> float:
        return self._total_usm

    def average_usm(self) -> float:
        total = self.total_queries
        if not total:
            return 0.0
        return self._total_usm / total

    def class_average_usm(self, user_class: str) -> float:
        bucket = self._by_class.get(user_class)
        if not bucket or not bucket["count"]:
            return 0.0
        return bucket["usm"] / bucket["count"]

    def class_ratios(self, user_class: str) -> Dict[Outcome, float]:
        bucket = self._by_class.get(user_class)
        if not bucket or not bucket["count"]:
            return {outcome: 0.0 for outcome in Outcome}
        count = bucket["count"]
        return {outcome: n / count for outcome, n in bucket["counts"].items()}

    def classes(self) -> List[str]:
        """User-class labels seen so far, in stable sorted order."""
        return sorted(self._by_class)


@functools.lru_cache(maxsize=None)
def _window_entry(
    prof: PenaltyProfile, outcome: Outcome
) -> Tuple[int, Optional[Tuple[str, float]]]:
    """Cached per-(profile, outcome) window bookkeeping: the exact
    fixed-point mirror of the USM contribution and the cost pair.

    Both are pure functions of the frozen pair and there are only a
    handful of distinct profiles per experiment, so the window's
    record path reduces to one cache hit.
    """
    contribution = prof.contribution(outcome)
    cost: Optional[Tuple[str, float]]
    if outcome is Outcome.SUCCESS:
        cost = None  # successes carry gain, not cost (Eq. 5's S term)
    elif outcome is Outcome.REJECTED:
        cost = ("R", prof.c_r)
    elif outcome is Outcome.DEADLINE_MISS:
        cost = ("F_m", prof.c_fm)
    elif outcome is Outcome.DATA_STALE:
        cost = ("F_s", prof.c_fs)
    else:
        raise ValueError(f"unaccounted outcome {outcome!r}")
    return fixed_from_float(contribution), cost


class UsmWindow:
    """Recent-window USM signals for the feedback controllers.

    Tracks outcomes within a sliding time window and answers the two
    questions the LBC asks: the recent average USM (for drop-trigger
    detection) and the recent cost components / outcome ratios (for the
    Adaptive Allocation Algorithm).  Each event may carry its own
    penalty profile (the multi-preference extension); events without
    one use the window's default profile.
    """

    def __init__(self, profile: PenaltyProfile, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.profile = profile
        self.window = window
        self._events: Deque[Tuple[float, Outcome, PenaltyProfile]] = deque()
        # Per-event fixed-point USM contribution and (cost-key, cost)
        # pairs, kept in lock-step with _events.  Both are pure
        # functions of the frozen (outcome, profile) pair (cached in
        # _window_entry), so computing them once at record time changes
        # no float.  _contrib_fixed is the exact running sum of the
        # contribution mirrors: the windowed average becomes an O(1)
        # read instead of an O(window) scan on every drop check, and
        # add/subtract on the integer mirror cannot drift.
        self._contribs: Deque[int] = deque()
        self._contrib_fixed = 0
        self._costs: Deque[Optional[Tuple[str, float]]] = deque()
        self._counts: Dict[Outcome, int] = {outcome: 0 for outcome in Outcome}

    def record(
        self,
        now: float,
        outcome: Outcome,
        profile: Optional[PenaltyProfile] = None,
    ) -> None:
        prof = profile or self.profile
        fixed, cost = _window_entry(prof, outcome)
        self._events.append((now, outcome, prof))
        self._contribs.append(fixed)
        self._contrib_fixed += fixed
        self._counts[outcome] += 1
        self._costs.append(cost)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0][0] < cutoff:
            _, outcome, _ = events.popleft()
            self._contrib_fixed -= self._contribs.popleft()
            self._costs.popleft()
            self._counts[outcome] -= 1

    def sample_size(self, now: float) -> int:
        self._evict(now)
        return len(self._events)

    def ratios(self, now: float) -> Dict[Outcome, float]:
        """Windowed R_s / R_r / R_fm / R_fs (absent outcomes are 0)."""
        self._evict(now)
        total = len(self._events)
        if not total:
            return {outcome: 0.0 for outcome in Outcome}
        counts = self._counts
        return {outcome: counts[outcome] / total for outcome in Outcome}

    def average_usm(self, now: float) -> Optional[float]:
        """Windowed average USM, or None if the window is empty."""
        self._evict(now)
        if not self._events:
            return None
        return float_from_fixed(self._contrib_fixed) / len(self._events)

    def cost_components(self, now: float) -> Dict[str, float]:
        """Windowed R / F_m / F_s average costs (the Fig. 2 inputs),
        using each event's own penalty weights."""
        self._evict(now)
        costs = {"R": 0.0, "F_m": 0.0, "F_s": 0.0}
        if not self._events:
            return costs
        for entry in self._costs:
            if entry is not None:
                costs[entry[0]] += entry[1]
        total = len(self._events)
        return {key: value / total for key, value in costs.items()}

    def raw_failure_ratios(self, now: float) -> Dict[str, float]:
        """The all-penalties-zero fallback of Fig. 2 (lines 2–3)."""
        ratios = self.ratios(now)
        return {
            "R": ratios[Outcome.REJECTED],
            "F_m": ratios[Outcome.DEADLINE_MISS],
            "F_s": ratios[Outcome.DATA_STALE],
        }
