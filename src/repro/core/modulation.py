"""Update Frequency Modulation (paper Section 3.4).

*Degrading* stretches the current period of a lottery-picked victim
item by ``(1 + C_du)`` (Eq. 9, ``C_du = 0.1``); *upgrading* shrinks the
periods of all degraded items back toward their ideal period (Eq. 10 as
disambiguated in DESIGN.md: halve the period, floor at the ideal,
``C_uu = 0.5``).

The paper issues one Degrade/Upgrade signal per control decision at
trace scale (millions of seconds).  At our configurable scale a signal
applies ``rounds`` lottery picks so the modulator converges within the
shorter horizon; ``rounds=1`` recovers the paper's literal behaviour.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.tickets import TicketBook
from repro.db.items import ItemTable
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sim.engine import Simulator

DEFAULT_C_DU = 0.1  # period stretch per degrade (Eq. 9)
DEFAULT_C_UU = 0.5  # period shrink per upgrade (Eq. 10)
DEFAULT_MAX_STRETCH = 100.0  # cap on pc_j / pi_j (bounds staleness)


class UpdateFrequencyModulator:
    """The UM module: owns period modulation of all data items."""

    def __init__(
        self,
        items: ItemTable,
        tickets: TicketBook,
        rng: random.Random,
        c_du: float = DEFAULT_C_DU,
        c_uu: float = DEFAULT_C_UU,
        max_stretch: float = DEFAULT_MAX_STRETCH,
    ) -> None:
        if len(items) != len(tickets):
            raise ValueError("item table and ticket book sizes differ")
        if c_du <= 0:
            raise ValueError("c_du must be positive")
        if c_uu <= 0:
            raise ValueError("c_uu must be positive")
        if max_stretch <= 1:
            raise ValueError("max_stretch must exceed 1")
        self.items = items
        self.tickets = tickets
        self.c_du = c_du
        self.c_uu = c_uu
        self.max_stretch = max_stretch
        # Escalation: when the update-dominated pool is fully degraded
        # and the controller still demands shedding, walk the ticket
        # threshold into protected items.  The floor bounds how deep the
        # walk may go: items whose tickets sit below it (heavily queried
        # — one access outweighs several updates) are never exposed no
        # matter how long the overload lasts.
        self.escalate = False
        self.threshold_step = 0.5  # tau step per escalation/relaxation
        self.escalation_floor = -1.0
        self._rng = rng
        self.degrade_events = 0
        self.upgrade_events = 0
        # Observability: the modulator has no clock, so the recorder is
        # paired with the simulator whose virtual time stamps the
        # modulation.change events.  Disabled by default.
        self._obs: Recorder = NULL_RECORDER
        self._obs_sim: Optional[Simulator] = None

    def bind_observer(self, recorder: Recorder, sim: Simulator) -> None:
        """Attach a trace recorder; event times come from ``sim.now``."""
        self._obs = recorder
        self._obs_sim = sim

    def degrade(self, rounds: int = 1) -> List[int]:
        """Handle a Degrade Update signal: ``rounds`` lottery picks,
        each stretching its victim's period by ``(1 + C_du)``.

        An item already at the stretch cap is resampled (a pick spent
        on it could not shed any more load); returns the victim item
        ids (may repeat; empty when no item has positive lottery
        weight yet).
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        victims: List[int] = []
        escalated = False
        for _ in range(rounds):
            victim = self._sample_below_cap()
            if victim is None:
                # Everything above the ticket threshold is already fully
                # degraded (or nothing is above it) yet the controller
                # still wants to shed — escalate by walking the
                # threshold down into more protected items.  At most one
                # escalation step per signal, so sustained overload is
                # needed to reach well-protected items.
                if escalated or not self.escalate:
                    break
                if self.tickets.threshold - self.threshold_step < self.escalation_floor:
                    break  # never expose heavily-queried items
                escalated = True
                before = self.tickets.threshold
                if self.tickets.lower_threshold(self.threshold_step) >= before:
                    break  # already at the minimum ticket: nothing left
                victim = self._sample_below_cap()
                if victim is None:
                    break
            item = self.items.rows[victim]
            before_period = item.current_period
            item.degrade_period(self.c_du)
            victims.append(victim)
            obs = self._obs
            if obs.enabled and self._obs_sim is not None:
                obs.modulation_change(
                    self._obs_sim.now,
                    victim,
                    "degrade",
                    before_period,
                    item.current_period,
                )
        if victims:
            self.degrade_events += 1
        return victims

    def _sample_below_cap(self, attempts: int = 8) -> Optional[int]:
        sample = self.tickets.sample_victim
        rng = self._rng
        items = self.items.rows
        max_stretch = self.max_stretch
        for _ in range(attempts):
            victim = sample(rng)
            if victim is None:
                return None
            item = items[victim]
            if item.current_period < max_stretch * item.ideal_period:
                return victim
        return None

    def upgrade_all(self) -> List[int]:
        """Handle an Upgrade Update signal: shrink the period of every
        degraded item toward its ideal period (Eq. 10) and relax the
        escalation threshold back toward zero.

        Returns the ids of items whose period changed.
        """
        self.relax_threshold()
        changed: List[int] = []
        obs = self._obs
        for item in self.items.degraded_items():
            before = item.current_period
            item.upgrade_period(self.c_uu)
            if item.current_period != before:
                changed.append(item.item_id)
                if obs.enabled and self._obs_sim is not None:
                    obs.modulation_change(
                        self._obs_sim.now,
                        item.item_id,
                        "upgrade",
                        before,
                        item.current_period,
                    )
        if changed:
            self.upgrade_events += 1
        return changed

    def relax_threshold(self) -> None:
        """Ease the escalation threshold back toward zero.

        Called on every Upgrade signal and — by the UNIT policy — on any
        control decision that did not demand degradation, so sustained
        pressure is required to *hold* the threshold down (an integral
        controller rather than a ratchet)."""
        if self.tickets.threshold < 0.0:
            self.tickets.raise_threshold(self.threshold_step)

    def degraded_count(self) -> int:
        """Number of items currently held above their ideal period."""
        return len(self.items.degraded_items())

    def victim_distribution(self) -> Optional[List[float]]:
        """Current lottery weights normalized to probabilities (for
        analysis); None when total weight is zero."""
        weights = self.tickets.shifted_weights()
        total = sum(weights)
        if total <= 0:
            return None
        return [weight / total for weight in weights]
