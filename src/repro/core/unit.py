"""The UNIT policy: the paper's feedback control system (Fig. 1).

Wires together the three modules around the server's data flow:

* :class:`~repro.core.admission.AdmissionController` filters arriving
  queries (deadline check with the LBC-tuned ``C_flex``, plus the
  system-USM check);
* :class:`~repro.core.modulation.UpdateFrequencyModulator` stretches or
  shrinks per-item update periods, choosing degradation victims by
  lottery over the :class:`~repro.core.tickets.TicketBook`;
* :class:`~repro.core.controller.LoadBalancingController` watches the
  windowed USM and issues LAC / TAC+DU / UU signals, periodically and
  on USM drops.

Update arrivals are gated by the modulated period ``pc_j``: an arrival
is applied when at least ``pc_j`` elapsed since the last applied
arrival of that item, otherwise it is dropped (raising the item's
staleness lag).
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.admission import AdmissionController
from repro.core.controller import ControlSignal, LoadBalancingController
from repro.core.modulation import UpdateFrequencyModulator
from repro.core.tickets import TicketBook
from repro.core.usm import PenaltyProfile, UsmWindow
from repro.db.items import DataItem
from repro.db.policy_api import ServerPolicy
from repro.db.server import CONTROL_EVENT_PRIORITY
from repro.db.transactions import Outcome, QueryRecord, QueryTransaction, UpdateTransaction
from repro.obs.trace import NULL_RECORDER, Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.server import Server


@dataclasses.dataclass
class UnitConfig:
    """Tunables of the UNIT framework.

    The constants mirror the paper: ``C_flex`` starts at 1 and moves
    ±10 % per TAC/LAC; ``C_du = 0.1``; ``C_uu = 0.5``;
    ``C_forget = 0.9``; the USM-drop trigger threshold is 1 % of the
    USM range.  ``degrade_rounds`` is our scale adaptation (see
    :mod:`repro.core.modulation`): lottery picks applied per Degrade
    signal; 1 recovers the paper's literal single pick.
    """

    profile: PenaltyProfile = dataclasses.field(default_factory=PenaltyProfile.naive)
    control_period: float = 1.0
    window: float = 20.0
    # Start admission loose: with firm deadlines and EDF, a rejected
    # query and a missed query cost the same under naive weights, so
    # the deadline check should only catch clearly-hopeless arrivals
    # until the LBC asks for more.
    initial_c_flex: float = 0.25
    use_usm_check: bool = True
    c_du: float = 0.1
    c_uu: float = 0.5
    c_forget: float = 0.9
    # Multiplier on Eq. 6's per-access ticket decrement (qe/qt).  The
    # paper's decrement is measured in query CPU-utilization units, so
    # with deadlines much looser than execution times it is tiny
    # compared to Eq. 7's ~0.5 update increment and hot items stay
    # lottery-eligible.  1.0 is paper-literal; raise it when deadlines
    # are loose relative to execution times.
    access_ticket_scale: float = 1.0
    # Lottery picks applied per Degrade signal.  None = auto-scale to
    # half the database size at bind time; 1 recovers the paper's
    # literal single pick per signal (appropriate at trace scale).
    degrade_rounds: Optional[int] = None
    usm_drop_fraction: float = 0.01
    min_window_samples: int = 10
    # Escalating degradation pressure (see repro.core.modulation):
    # when every update-dominated item is fully degraded and overload
    # persists, walk the ticket threshold into protected items.
    escalate_modulation: bool = True
    # Deviation from Fig. 2 needed at heavy update volume (see
    # DESIGN.md): when rejections dominate *and* the update class has
    # been eating most of the CPU, loosening admission alone cannot
    # reduce rejections — the controller additionally degrades updates.
    # Without this, a 150% update load locks the system into an
    # all-reject equilibrium in which F_m never dominates and Degrade
    # Update is never issued.
    degrade_on_rejections: bool = True
    rejection_update_load_threshold: float = 0.5
    # Hold Degrade signals until tickets have had time to differentiate
    # hot from cold items; the very first signals otherwise land on
    # uniformly-flat tickets and degrade hot items, whose early DSF
    # damage the slow Upgrade path takes long to repair.
    modulation_warmup: float = 10.0
    max_period_stretch: float = 100.0

    def __post_init__(self) -> None:
        if self.control_period <= 0:
            raise ValueError("control_period must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.degrade_rounds is not None and self.degrade_rounds <= 0:
            raise ValueError("degrade_rounds must be positive")
        if not 0 < self.usm_drop_fraction < 1:
            raise ValueError("usm_drop_fraction must be in (0, 1)")


class UnitPolicy(ServerPolicy):
    """UNIT: USM-maximizing admission control + update modulation."""

    def __init__(
        self,
        config: UnitConfig,
        rng: random.Random,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.config = config
        self._rng = rng
        # Observability sink shared with the AC / LBC / UM modules.
        # Emission never touches ``rng``, so traced and untraced runs
        # follow identical control trajectories.
        self.obs: Recorder = recorder if recorder is not None else NULL_RECORDER
        # Built at bind() time, when the item table is known.
        self.tickets: Optional[TicketBook] = None
        self.modulator: Optional[UpdateFrequencyModulator] = None
        self.admission: Optional[AdmissionController] = None
        self.usm_window: Optional[UsmWindow] = None
        self.lbc: Optional[LoadBalancingController] = None
        self._server: Optional["Server"] = None
        self._last_apply: Dict[int, float] = {}
        self._last_drop_allocation = -float("inf")
        self._last_update_busy = 0.0
        self._degrade_rounds = 1  # resolved at bind()
        self.signals_applied: Dict[ControlSignal, int] = {
            signal: 0 for signal in ControlSignal
        }

    # ------------------------------------------------------------------
    # ServerPolicy interface
    # ------------------------------------------------------------------

    def bind(self, server: "Server") -> None:
        config = self.config
        self._server = server
        self.tickets = TicketBook(len(server.items), forgetting=config.c_forget)
        self.modulator = UpdateFrequencyModulator(
            server.items,
            self.tickets,
            self._rng,
            c_du=config.c_du,
            c_uu=config.c_uu,
            max_stretch=config.max_period_stretch,
        )
        self.modulator.escalate = config.escalate_modulation
        self._degrade_rounds = config.degrade_rounds or max(16, len(server.items) // 2)
        self.admission = AdmissionController(
            config.profile,
            c_flex=config.initial_c_flex,
            use_usm_check=config.use_usm_check,
        )
        self.usm_window = UsmWindow(config.profile, config.window)
        self.lbc = LoadBalancingController(
            self.usm_window,
            self._rng,
            usm_drop_threshold=config.usm_drop_fraction * config.profile.usm_range,
            min_samples=config.min_window_samples,
        )
        if self.obs.enabled:
            self.admission.recorder = self.obs
            self.lbc.recorder = self.obs
            self.modulator.bind_observer(self.obs, server.sim)
        server.sim.schedule_after(
            config.control_period, self._control_tick, priority=CONTROL_EVENT_PRIORITY
        )

    def admit_query(self, query: QueryTransaction, server: "Server") -> bool:
        assert self.admission is not None
        return self.admission.decide(query, server).admitted

    def on_query_admitted(self, query: QueryTransaction, server: "Server") -> None:
        assert self.tickets is not None
        decrement = query.cpu_utilization * self.config.access_ticket_scale
        for item_id in query.items:
            self.tickets.on_query_access(item_id, decrement)

    def should_apply_update(self, item: DataItem, server: "Server") -> bool:
        now = server.now
        last = self._last_apply.get(item.item_id)
        if last is None or now - last >= item.current_period * (1.0 - 1e-9):
            self._last_apply[item.item_id] = now
            return True
        return False

    def on_update_applied(
        self, update: UpdateTransaction, item: DataItem, server: "Server"
    ) -> None:
        assert self.tickets is not None
        # Ticket pressure accrues per *executed* update: Section 3.4.1
        # targets "the data item that the system spends too much time
        # updating", i.e. actual CPU spent, not stream arrivals.  This
        # also self-balances degradation depth — a degraded item
        # executes rarely, stops gaining tickets, and its query accesses
        # pull its ticket back down.
        self.tickets.on_update(item.item_id, update.exec_time)

    def on_query_outcome(self, record: QueryRecord, server: "Server") -> None:
        assert self.usm_window is not None and self.lbc is not None
        self.usm_window.record(server.now, record.outcome, record.profile)
        # Event trigger: a big USM drop runs Adaptive Allocation without
        # waiting for the periodic tick (rate-limited to a quarter
        # period so one burst cannot spam signals).
        if (
            server.now - self._last_drop_allocation >= self.config.control_period / 4.0
            and self.lbc.check_drop(server.now)
        ):
            self._last_drop_allocation = server.now
            self._apply_signals(self.lbc.allocate(server.now))

    def on_fault(self, label: str, active: bool, server: "Server") -> None:
        """Snapshot the controller at a fault boundary (trace only).

        Emission draws nothing from ``rng`` and mutates no control
        state, so traced runs with and without observability follow the
        same trajectory — the snapshot just pins the window decomposition
        at the instant the fault opens/closes, which the degradation
        analysis lines up against the ``fault.*`` markers.
        """
        rec = self.obs
        if rec.enabled:
            self._emit_window_snapshot(rec, [])

    def describe(self) -> str:
        return "UNIT"

    # ------------------------------------------------------------------
    # control loop
    # ------------------------------------------------------------------

    def _control_tick(self) -> None:
        assert self._server is not None and self.lbc is not None
        assert self.admission is not None
        self._refresh_update_load()
        self._apply_signals(self.lbc.allocate(self._server.now))
        self._server.sim.schedule_after(
            self.config.control_period,
            self._control_tick,
            priority=CONTROL_EVENT_PRIORITY,
        )

    def _refresh_update_load(self) -> None:
        """Feed the admission controller the update class's recent CPU
        share (EWMA over control periods)."""
        assert self._server is not None and self.admission is not None
        busy_update = self._server.busy_time_by_class()["update"]
        share = (busy_update - self._last_update_busy) / self.config.control_period
        self._last_update_busy = busy_update
        smoothed = 0.7 * self.admission.update_load + 0.3 * min(1.0, share)
        self.admission.update_load = smoothed

    def _apply_signals(self, signals: Sequence[ControlSignal]) -> None:
        assert self.admission is not None and self.modulator is not None
        if (
            self.config.degrade_on_rejections
            and ControlSignal.LOOSEN_ADMISSION in signals
            and ControlSignal.DEGRADE_UPDATES not in signals
            and self.admission.update_load
            > self.config.rejection_update_load_threshold
        ):
            signals = list(signals) + [ControlSignal.DEGRADE_UPDATES]
        if signals and ControlSignal.DEGRADE_UPDATES not in signals:
            # No demand for shedding this round: ease the escalation
            # threshold back toward zero (sustained pressure is needed
            # to keep exposing protected items).
            self.modulator.relax_threshold()
        for signal in signals:
            self.signals_applied[signal] += 1
            if signal is ControlSignal.LOOSEN_ADMISSION:
                self.admission.loosen()
            elif signal is ControlSignal.TIGHTEN_ADMISSION:
                self.admission.tighten()
            elif signal is ControlSignal.DEGRADE_UPDATES:
                if (
                    self._server is not None
                    and self._server.now >= self.config.modulation_warmup
                ):
                    self.modulator.degrade(self._degrade_rounds)
            elif signal is ControlSignal.UPGRADE_UPDATES:
                self.modulator.upgrade_all()
        rec = self.obs
        if rec.enabled:
            self._emit_window_snapshot(rec, signals)

    def _emit_window_snapshot(
        self, rec: Recorder, signals: Sequence[ControlSignal]
    ) -> None:
        """Record a ``control.window`` event: the Eq. 5 decomposition of
        the sliding window plus the knob values the signals left behind."""
        assert self._server is not None and self.usm_window is not None
        assert self.admission is not None and self.modulator is not None
        assert self.tickets is not None
        now = self._server.now
        window = self.usm_window
        ratios = window.ratios(now)
        components = {
            "S": ratios[Outcome.SUCCESS] * window.profile.gain,
            **window.cost_components(now),
            "ratio_success": ratios[Outcome.SUCCESS],
            "ratio_rejected": ratios[Outcome.REJECTED],
            "ratio_deadline_miss": ratios[Outcome.DEADLINE_MISS],
            "ratio_data_stale": ratios[Outcome.DATA_STALE],
        }
        rec.control_window(
            now,
            components,
            window.average_usm(now),
            window.sample_size(now),
            [signal.value for signal in signals],
            self.admission.c_flex,
            self.admission.update_load,
            self.modulator.degraded_count(),
            self.tickets.threshold,
        )
