"""Exact fixed-point mirrors of IEEE-754 doubles.

Every finite double is an integer multiple of 2**-1074 (the smallest
positive subnormal), so mirroring values as integers in those units
makes running sums exact: order-independent, drift-free under add and
subtract, and a pure function of the live multiset.  The incremental
aggregates in the ready queue and the USM window use this to keep O(1)
reads without the rounding drift a running *float* sum would collect.
"""

from __future__ import annotations

import functools

#: The scale factor: ``fixed == value * FIXED_ONE`` exactly.
FIXED_ONE = 1 << 1074


@functools.lru_cache(maxsize=65536)
def fixed_from_float(value: float) -> int:
    """Exact integer mirror of a finite float (units of 2**-1074).

    Memoized: the ready queue converts ``remaining`` on every push, and
    update transactions reuse a handful of distinct per-item execution
    times, so the ~1074-bit shift is paid once per distinct float.
    (``hash(-0.0) == hash(0.0)`` collides in the cache, but both map to
    the mirror 0, so the shared entry is correct.)
    """
    numerator, denominator = value.as_integer_ratio()
    # ``denominator`` is a power of two for every finite float.
    return numerator << (1075 - denominator.bit_length())


def float_from_fixed(total: int) -> float:
    """Correctly-rounded float value of an integer fixed-point sum.

    ``int.__truediv__`` rounds once (unlike ``float(total)`` it cannot
    overflow for sums whose magnitude exceeds 2**1024 units).  The zero
    fast path matters: empty backlogs are the common case on the
    admission hot path, and the wide division is ~700ns.
    """
    if not total:
        return 0.0
    return total / FIXED_ONE
