"""The paper's contribution: the User Satisfaction Metric, the UNIT
feedback framework, and the competitor policies (IMU, ODU, QMF).
"""

from repro.core.admission import AdmissionController
from repro.core.baselines import ImuPolicy, OduPolicy
from repro.core.controller import ControlSignal, LoadBalancingController
from repro.core.elastic import ElasticConfig, ElasticPolicy
from repro.core.lottery import LotteryScheduler
from repro.core.modulation import UpdateFrequencyModulator
from repro.core.qmf import QmfConfig, QmfPolicy
from repro.core.tickets import TicketBook
from repro.core.unit import UnitConfig, UnitPolicy
from repro.core.usm import (
    MixedUsmAccumulator,
    PenaltyProfile,
    UsmAccumulator,
    UsmWindow,
)

__all__ = [
    "AdmissionController",
    "ControlSignal",
    "ElasticConfig",
    "ElasticPolicy",
    "ImuPolicy",
    "LoadBalancingController",
    "LotteryScheduler",
    "MixedUsmAccumulator",
    "OduPolicy",
    "PenaltyProfile",
    "QmfConfig",
    "QmfPolicy",
    "TicketBook",
    "UnitConfig",
    "UnitPolicy",
    "UpdateFrequencyModulator",
    "UsmAccumulator",
    "UsmWindow",
]
