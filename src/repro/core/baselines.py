"""The two baseline policies of Section 4.1.

* **IMU** (Immediate Update): every source update executes; no
  admission control.  Freshness is perfect, but at high update volume
  the update class (which outranks queries) starves user queries.

* **ODU** (On-Demand Update): periodic arrivals are never applied;
  when an admitted query needs a stale item, a refresh transaction is
  issued and the query waits for it.  Freshness at query start is
  perfect, but the refresh CPU time delays the query (and everything
  behind it), causing deadline misses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Protocol

from repro.db.items import DataItem, ItemTable
from repro.db.policy_api import ServerPolicy
from repro.db.transactions import QueryTransaction, UpdateTransaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.server import Server


class RefreshingPolicy(Protocol):
    """What :func:`refresh_stale_items` needs from its host policy."""

    _pending: Dict[int, UpdateTransaction]
    refreshes_spawned: int
    refreshes_shared: int


class ImuPolicy(ServerPolicy):
    """Immediate Update: apply everything, admit everything."""

    def admit_query(self, query: QueryTransaction, server: "Server") -> bool:
        return True

    def should_apply_update(self, item: DataItem, server: "Server") -> bool:
        return True

    def describe(self) -> str:
        return "IMU"


class OduPolicy(ServerPolicy):
    """On-Demand Update: refresh stale items when a query reads them.

    The refresh is issued at read time — "updates are executed only
    when a query finds that a needed data item is stale" — and the
    query waits for it, which is exactly the delay the paper blames for
    ODU's deadline misses.

    ``dedup=True`` adds an optimization the 2006 baseline does not
    have: when a refresh for the item is already pending, later queries
    attach to it rather than spending CPU twice.  The paper's ODU
    (each stale access issues its own update) is ``dedup=False``, the
    default.
    """

    def __init__(self, dedup: bool = False) -> None:
        self.dedup = dedup
        self.refreshes_spawned = 0
        self.refreshes_shared = 0
        self._pending: Dict[int, UpdateTransaction] = {}

    def admit_query(self, query: QueryTransaction, server: "Server") -> bool:
        return True

    def should_apply_update(self, item: DataItem, server: "Server") -> bool:
        return False

    def on_query_stale_at_read(self, query: QueryTransaction, server: "Server") -> bool:
        return refresh_stale_items(self, query, server, server.items, dedup=self.dedup)

    def describe(self) -> str:
        return "ODU"


def refresh_stale_items(
    policy: RefreshingPolicy,
    query: QueryTransaction,
    server: "Server",
    items: ItemTable,
    dedup: bool = True,
) -> bool:
    """Shared on-demand refresh mechanics (used by ODU and QMF).

    Spawns (or, with ``dedup``, attaches to) a refresh for every stale
    item of ``query``; returns True when the query should wait for at
    least one refresh.  ``policy`` must expose ``_pending`` /
    ``refreshes_spawned`` / ``refreshes_shared`` attributes.
    """
    waiting = False
    for item_id in query.items:
        item = items[item_id]
        if item.udrop == 0:
            continue
        pending = policy._pending.get(item_id)
        if (
            dedup
            and pending is not None
            and server.attach_refresh(pending, query)
        ):
            policy.refreshes_shared += 1
            waiting = True
            continue
        policy._pending[item_id] = server.spawn_refresh(item, query)
        policy.refreshes_spawned += 1
        waiting = True
    return waiting
