"""QMF re-implementation (Kang, Son & Stankovic, TKDE 2004) — the
state-of-the-art competitor of Section 4.1.

The original code was provided privately to the UNIT authors; we
rebuild the policy from the published control rules the paper
summarizes:

    "With the CPU underutilized, QMF tries to update more often if the
    target freshness is not met, otherwise admits more transactions.
    With the CPU overloaded, QMF updates less often if current
    freshness is higher than target freshness, otherwise drops incoming
    transactions until the system recovers.  The adaptive update policy
    controls how many updates to be dropped, and whose updates to be
    dropped (based on the ratio of number of accesses over number of
    updates on each data)."

Mechanisms:

* **Admission** — a feasibility check (reject queries that cannot make
  their deadline) plus a backlog quota in seconds of outstanding query
  work; the controller scales the quota ±10 %.  QMF optimizes *miss
  ratio among admitted transactions*, so its control deems the system
  overloaded as soon as the recent miss ratio exceeds the target —
  this is exactly the conservatism that gives QMF its high rejection
  ratio in the paper's Fig. 6(a).
* **Adaptive update policy** — a *flexible-freshness* fraction of the
  items (lowest access-to-update ratio first) has periodic updates
  dropped and is refreshed on demand when an admitted query needs it;
  the remaining items update immediately.  The controller moves the
  fraction ±10 points per signal.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.db.items import DataItem
from repro.db.policy_api import ServerPolicy
from repro.db.server import CONTROL_EVENT_PRIORITY
from repro.db.transactions import Outcome, QueryRecord, QueryTransaction
from repro.sim.stats import WindowedCounts

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.server import Server


@dataclasses.dataclass
class QmfConfig:
    """Set-points and steps of the QMF controller.

    Defaults follow the published evaluation: a tight (5 %) miss-ratio
    target and a 90 % perceived-freshness target.
    """

    miss_ratio_target: float = 0.01
    freshness_target: float = 0.90
    control_period: float = 5.0
    window: float = 20.0
    utilization_high: float = 0.90
    quota_shrink: float = 0.50
    quota_grow: float = 0.05
    flex_step: float = 0.10
    initial_backlog_quota: float = 5.0
    # Kang et al. describe two variants: QMF-1 simply skips updates on
    # flexible-freshness items; QMF-2 (the stronger one the UNIT paper
    # compares against, our default) refreshes them on demand when an
    # admitted query reads them.
    on_demand_flexible: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.miss_ratio_target < 1:
            raise ValueError("miss_ratio_target must be in (0, 1)")
        if not 0 < self.freshness_target <= 1:
            raise ValueError("freshness_target must be in (0, 1]")
        if self.control_period <= 0 or self.window <= 0:
            raise ValueError("control timings must be positive")
        if self.initial_backlog_quota <= 0:
            raise ValueError("initial_backlog_quota must be positive")


_QUOTA_MIN = 1e-3
_QUOTA_MAX = 1e6


class QmfPolicy(ServerPolicy):
    """Feedback control of miss ratio and perceived freshness."""

    def __init__(self, config: Optional[QmfConfig] = None) -> None:
        self.config = config or QmfConfig()
        self.backlog_quota = self.config.initial_backlog_quota
        self.flex_fraction = 0.0
        self._flexible: Set[int] = set()
        self._server: Optional["Server"] = None
        self._outcomes = WindowedCounts(self.config.window)
        self._last_busy = 0.0
        self._pending: Dict[int, object] = {}  # item_id -> pending refresh txn
        self.refreshes_spawned = 0
        self.refreshes_shared = 0
        self.rejections_feasibility = 0
        self.rejections_quota = 0
        self.control_ticks = 0

    # ------------------------------------------------------------------
    # ServerPolicy interface
    # ------------------------------------------------------------------

    def bind(self, server: "Server") -> None:
        self._server = server
        server.sim.schedule_after(
            self.config.control_period,
            self._control_tick,
            priority=CONTROL_EVENT_PRIORITY,
        )

    def admit_query(self, query: QueryTransaction, server: "Server") -> bool:
        # Feasibility: the backlog ahead of the query must leave room
        # for its own execution before the deadline.
        backlog = (
            server.running_remaining()
            + server.ready.update_backlog()
            + server.ready.query_backlog_before(query.deadline)
        )
        if backlog + query.exec_time >= query.relative_deadline:
            self.rejections_feasibility += 1
            return False
        # Quota: cap the outstanding admitted query work so admitted
        # transactions keep a low miss ratio.
        outstanding = sum(txn.remaining for txn in server.ready.ready_queries())
        running = server.running_transaction()
        if running is not None and not running.is_update:
            outstanding += server.running_remaining()
        if outstanding > self.backlog_quota:
            self.rejections_quota += 1
            return False
        return True

    def should_apply_update(self, item: DataItem, server: "Server") -> bool:
        return item.item_id not in self._flexible

    def on_query_stale_at_read(self, query: QueryTransaction, server: "Server") -> bool:
        # QMF-2: flexible-freshness items are refreshed on demand at
        # read time (deduplicated like ODU); an item might also be stale
        # because it *left* the flexible set with drops outstanding —
        # refresh those too rather than serving stale data.  QMF-1
        # (on_demand_flexible=False) serves the stale value.
        if not self.config.on_demand_flexible:
            return False
        from repro.core.baselines import refresh_stale_items

        return refresh_stale_items(self, query, server, server.items)

    def on_query_outcome(self, record: QueryRecord, server: "Server") -> None:
        self._outcomes.record(server.now, record.outcome.value)

    def describe(self) -> str:
        return "QMF"

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------

    def _recent_miss_ratio(self, now: float) -> Optional[float]:
        """DMF / admitted-and-finished within the window (QMF's metric)."""
        counts = self._outcomes.counts(now)
        admitted = (
            counts.get(Outcome.SUCCESS.value, 0)
            + counts.get(Outcome.DATA_STALE.value, 0)
            + counts.get(Outcome.DEADLINE_MISS.value, 0)
        )
        if not admitted:
            return None
        return counts.get(Outcome.DEADLINE_MISS.value, 0) / admitted

    def _database_freshness(self) -> float:
        """QMF's QoD metric: the fraction of *database* items currently
        fresh (Kang et al. measure freshness over the whole DB, not over
        accessed data — this is what keeps QMF spending CPU on updates
        for data nobody reads, one of the behaviours UNIT improves on).
        """
        assert self._server is not None
        items = self._server.items
        fresh = sum(1 for item in items if item.udrop == 0)
        return fresh / len(items)

    # ------------------------------------------------------------------
    # the control loop
    # ------------------------------------------------------------------

    def _control_tick(self) -> None:
        assert self._server is not None
        server = self._server
        now = server.now
        self.control_ticks += 1

        busy = server.busy_time()
        utilization = (busy - self._last_busy) / self.config.control_period
        self._last_busy = busy

        miss_ratio = self._recent_miss_ratio(now)
        freshness = self._database_freshness()

        overloaded = utilization >= self.config.utilization_high or (
            miss_ratio is not None and miss_ratio > self.config.miss_ratio_target
        )

        if overloaded:
            if freshness > self.config.freshness_target:
                self._move_flex(+self.config.flex_step)  # update less often
            else:
                # Shed load hard: the original controller guarantees the
                # miss-ratio target "at all costs", which is exactly the
                # conservatism the UNIT paper observes ("drops many
                # queries to guarantee the admitted transactions").
                self.backlog_quota = max(
                    _QUOTA_MIN, self.backlog_quota * (1.0 - self.config.quota_shrink)
                )
        else:
            if freshness < self.config.freshness_target:
                self._move_flex(-self.config.flex_step)  # update more often
            else:
                self.backlog_quota = min(
                    _QUOTA_MAX, self.backlog_quota * (1.0 + self.config.quota_grow)
                )

        self._refresh_flexible_set()
        server.sim.schedule_after(
            self.config.control_period,
            self._control_tick,
            priority=CONTROL_EVENT_PRIORITY,
        )

    def _move_flex(self, delta: float) -> None:
        self.flex_fraction = min(1.0, max(0.0, self.flex_fraction + delta))

    def _refresh_flexible_set(self) -> None:
        """Re-rank items by access-to-update ratio and mark the bottom
        ``flex_fraction`` as flexible freshness (updates dropped)."""
        assert self._server is not None
        items = self._server.items
        count = int(round(self.flex_fraction * len(items)))
        if count <= 0:
            self._flexible = set()
            return
        ranked = sorted(
            items,
            key=lambda item: item.query_accesses / (1.0 + item.arrivals),
        )
        self._flexible = {item.item_id for item in ranked[:count]}
