"""Lottery scheduling over data items (Waldspurger & Weihl).

Update Frequency Modulation picks its degradation victim "randomly …
with probability proportional to the ticket value of the data item"
(Section 3.4.1), at O(log N_d) per pick.  We implement the weighted
sampling with a Fenwick (binary indexed) tree: point updates and
prefix-descent sampling are both O(log n).
"""

from __future__ import annotations

import random
from typing import List, Optional


class LotteryScheduler:
    """Weighted random sampling over ``n`` slots with O(log n) updates.

    Weights must be non-negative; a zero-weight slot is never drawn.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self._n = n
        self._tree = [0.0] * (n + 1)  # 1-based Fenwick tree
        self._weights = [0.0] * n
        # Highest power of two <= n: the Fenwick descent's starting
        # stride, fixed for the tree's lifetime.
        bit = 1
        while bit << 1 <= n:
            bit <<= 1
        self._top_bit = bit
        # Cached total with a dirty flag: consecutive samples between
        # weight mutations (the degrade loop's resampling) skip the
        # descent resummation.  The cache is always refreshed by the
        # same descent-order loop as :meth:`_prefix_sum`, so the cached
        # float is bit-identical to an eager recomputation.
        self._total_cache = 0.0
        self._total_dirty = False

    def __len__(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        """Sum of all weights."""
        if self._total_dirty:
            self._total_cache = self._prefix_sum(self._n)
            self._total_dirty = False
        return self._total_cache

    def weight(self, index: int) -> float:
        """Current weight of slot ``index``."""
        return self._weights[index]

    def weights(self) -> List[float]:
        """Copy of all weights."""
        return list(self._weights)

    def set_weight(self, index: int, weight: float) -> None:
        """Set slot ``index`` to ``weight`` (>= 0) in O(log n)."""
        if not 0 <= index < self._n:
            raise IndexError(f"index {index} out of range [0, {self._n})")
        if weight < 0:
            raise ValueError("weights must be non-negative")
        delta = weight - self._weights[index]
        if delta == 0:
            return
        self._weights[index] = weight
        self._total_dirty = True
        position = index + 1
        while position <= self._n:
            self._tree[position] += delta
            position += position & (-position)

    def add_weight(self, index: int, delta: float) -> None:
        """Adjust slot ``index`` by ``delta``, clamping at zero."""
        self.set_weight(index, max(0.0, self._weights[index] + delta))

    def _prefix_sum(self, count: int) -> float:
        total = 0.0
        position = count
        while position > 0:
            total += self._tree[position]
            position -= position & (-position)
        return total

    def sample(self, rng: random.Random) -> Optional[int]:
        """Draw a slot with probability proportional to its weight.

        Returns None when all weights are zero.  Uses Fenwick descent:
        walk down the implicit tree consuming the drawn mass, O(log n).
        The total comes from the dirty-flag cache (refilled inline in
        the same descent order as :meth:`_prefix_sum`) — a frequent
        call on the degradation path, so repeated picks between weight
        mutations skip both the method hops and the resummation.
        """
        tree = self._tree
        n = self._n
        if self._total_dirty:
            total = 0.0
            position = n
            while position > 0:
                total += tree[position]
                position -= position & (-position)
            self._total_cache = total
            self._total_dirty = False
        else:
            total = self._total_cache
        if total <= 0:
            return None
        target = rng.random() * total

        position = 0
        bit = self._top_bit
        remaining = target
        while bit:
            nxt = position + bit
            if nxt <= n and tree[nxt] < remaining:
                remaining -= tree[nxt]
                position = nxt
            bit >>= 1
        index = position  # position is the count of slots strictly before
        if index >= n:
            index = n - 1
        # Guard against landing on a zero-weight slot through float error.
        if self._weights[index] <= 0:
            candidates = [i for i, w in enumerate(self._weights) if w > 0]
            if not candidates:
                return None
            return rng.choice(candidates)
        return index

    def rebuild(self, weights: List[float]) -> None:
        """Replace all weights at once in O(n)."""
        if len(weights) != self._n:
            raise ValueError("weight vector length mismatch")
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        self._weights = list(weights)
        self._total_dirty = True
        self._tree = [0.0] * (self._n + 1)
        for index, weight in enumerate(weights):
            if weight:
                position = index + 1
                while position <= self._n:
                    self._tree[position] += weight
                    position += position & (-position)
