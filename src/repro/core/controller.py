"""The Load Balancing Controller and the Adaptive Allocation Algorithm
(paper Section 3.2, Fig. 2).

The LBC watches recent outcomes and, periodically or when the USM drops
by more than a threshold (1 % of the USM range), reduces the *dominant*
average penalty:

* rejection cost ``R`` dominant   → Loosen Admission Control,
* DMF cost ``F_m`` dominant       → Degrade Updates + Tighten AC,
* DSF cost ``F_s`` dominant       → Upgrade Updates.

When all three penalty weights are zero (the naive/success-ratio
setting) the raw failure ratios stand in for the costs (Fig. 2,
lines 2–3).  Ties break randomly.
"""

from __future__ import annotations

import enum
import random
from typing import List, Optional

from repro.core.usm import UsmWindow
from repro.obs.trace import NULL_RECORDER, Recorder


class ControlSignal(enum.Enum):
    """Signals the LBC sends to the AC and UM modules."""

    LOOSEN_ADMISSION = "LAC"
    TIGHTEN_ADMISSION = "TAC"
    DEGRADE_UPDATES = "DU"
    UPGRADE_UPDATES = "UU"

    # Singleton members: the C-level identity hash beats Enum's
    # name-based hash in the per-decision signal bookkeeping.
    __hash__ = object.__hash__


class LoadBalancingController:
    """Adaptive Allocation over a sliding outcome window."""

    def __init__(
        self,
        window: UsmWindow,
        rng: random.Random,
        usm_drop_threshold: float,
        min_samples: int = 10,
    ) -> None:
        if usm_drop_threshold <= 0:
            raise ValueError("usm_drop_threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.window = window
        self.usm_drop_threshold = usm_drop_threshold
        self.min_samples = min_samples
        self._rng = rng
        self._last_usm: Optional[float] = None
        self.allocations = 0
        self.signal_counts = {signal: 0 for signal in ControlSignal}
        # Trace recorder; swapped in by the owning policy at bind time.
        # Emission never draws from ``rng`` — tie-breaks are untouched.
        self.recorder: Recorder = NULL_RECORDER

    def check_drop(self, now: float) -> bool:
        """True when the windowed USM fell by more than the threshold
        since the last allocation — the event trigger of Section 3.2."""
        last = self._last_usm
        if last is None:
            # No baseline yet: skip the (O(window)) USM scan entirely.
            # Eviction is not skipped for long — time is monotonic and
            # every other window reader evicts before reading.
            return False
        usm = self.window.average_usm(now)
        if usm is None:
            return False
        return usm < last - self.usm_drop_threshold

    def allocate(self, now: float) -> List[ControlSignal]:
        """Run the Adaptive Allocation Algorithm (Fig. 2).

        Returns the control signals to apply (possibly none, when the
        window is too thin or nothing is failing).
        """
        if self.window.sample_size(now) < self.min_samples:
            return []
        self._last_usm = self.window.average_usm(now)

        if self.window.profile.is_naive:
            costs = self.window.raw_failure_ratios(now)
        else:
            costs = self.window.cost_components(now)

        peak = max(costs.values())
        if peak <= 0:
            return []  # nothing failing: leave the knobs alone
        dominant_keys = [key for key, value in costs.items() if value == peak]
        dominant = (
            dominant_keys[0]
            if len(dominant_keys) == 1
            else self._rng.choice(dominant_keys)
        )

        if dominant == "R":
            signals = [ControlSignal.LOOSEN_ADMISSION]
        elif dominant == "F_m":
            signals = [ControlSignal.DEGRADE_UPDATES, ControlSignal.TIGHTEN_ADMISSION]
        else:  # "F_s"
            signals = [ControlSignal.UPGRADE_UPDATES]

        self.allocations += 1
        for signal in signals:
            self.signal_counts[signal] += 1
        rec = self.recorder
        if rec.enabled:
            rec.control_allocate(
                now,
                dict(costs),
                dominant,
                [signal.value for signal in signals],
                self._last_usm,
                self.window.sample_size(now),
            )
        return signals
