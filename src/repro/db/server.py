"""The simulated web-database server.

A single preemptive CPU executes two transaction classes under the
mechanisms fixed by paper Section 3.1:

* dual-priority ready queue — updates above queries, EDF within a class
  (:mod:`repro.db.ready_queue`);
* firm deadlines — an admitted query still unfinished at its absolute
  deadline is aborted and counted as a Deadline-Missed Failure;
* 2PL-HP concurrency control (:mod:`repro.db.locks`): queries read-lock
  every item they access for their full run, updates write-lock their
  single item; a higher-priority requester aborts (restarts)
  lower-priority conflicting holders;
* lag-based freshness checked at commit time: a query that finishes in
  time but whose minimum item freshness is below its requirement is a
  Data-Stale Failure.

The server is mechanism only.  All decisions — admit/reject, apply/drop,
period modulation — are delegated to a
:class:`repro.db.policy_api.ServerPolicy`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.db.freshness import FreshnessMetric, LagFreshness, query_freshness
from repro.db.items import DataItem, ItemTable
from repro.db.locks import LockManager, LockMode, LockStatus
from repro.db.policy_api import ServerPolicy
from repro.db.ready_queue import ReadyQueue
from repro.db.transactions import (
    Outcome,
    QueryRecord,
    QueryTransaction,
    TransactionState,
    UpdateTransaction,
)
from repro.obs.trace import (
    ENQUEUE_ADMIT,
    ENQUEUE_GRANT,
    ENQUEUE_PREEMPT,
    ENQUEUE_REFRESH,
    ENQUEUE_RESTART,
    NULL_RECORDER,
    Recorder,
)
from repro.sim.engine import Simulator

Transaction = Union[QueryTransaction, UpdateTransaction]

#: A run of consecutive source-update arrivals handed to
#: :meth:`Server.source_update_run`: the ``(time, item_id)`` events,
#: the index of the first unprocessed arrival, and an optional
#: continuation invoked once the whole run has been applied.
_UpdateRun = Tuple[Sequence[Tuple[float, int]], int, Optional[object]]

# Same-instant event ordering: deadline aborts fire before arrivals,
# arrivals before completions scheduled at the identical timestamp.
DEADLINE_EVENT_PRIORITY = -2
ARRIVAL_EVENT_PRIORITY = -1
COMPLETION_EVENT_PRIORITY = 0
CONTROL_EVENT_PRIORITY = 1


@dataclasses.dataclass
class ServerConfig:
    """Tunables of the server mechanism (not of any policy).

    Attributes:
        freshness_metric: Per-item freshness measure; the paper's
            lag-based Eq. 1 by default.
        restart_aborted_queries: 2PL-HP victims restart from scratch
            (True, the paper's behaviour) or die immediately (False,
            an ablation).
    """

    freshness_metric: FreshnessMetric = dataclasses.field(default_factory=LagFreshness)
    restart_aborted_queries: bool = True


class Server:
    """Preemptive single-CPU web-database server.

    Drive it by calling :meth:`submit_query` and
    :meth:`source_update_arrival` from events scheduled on the shared
    :class:`~repro.sim.engine.Simulator` (the experiment runner does
    this from workload traces).
    """

    def __init__(
        self,
        sim: Simulator,
        items: ItemTable,
        policy: ServerPolicy,
        config: Optional[ServerConfig] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.sim = sim
        self.items = items
        # Direct row list for the per-event paths below; see
        # :attr:`ItemTable.rows`.
        self._item_rows = items.rows
        self.policy = policy
        self.config = config or ServerConfig()
        # Observability: every instrumentation site guards on
        # ``self.obs.enabled`` so the default (null recorder) costs one
        # attribute check per occurrence.
        self.obs: Recorder = recorder if recorder is not None else NULL_RECORDER

        self.ready = ReadyQueue()
        self.locks = LockManager()
        if self.obs.enabled:
            self.locks.bind_observer(self.obs, sim)
            # Pre-bound emit methods for the hot kinds: one attribute
            # load + call per occurrence instead of rebinding the
            # recorder method every time.
            self._emit_admit: Optional[Callable[..., None]] = self.obs.query_admit
            self._emit_outcome: Optional[Callable[..., None]] = self.obs.query_outcome
            self._emit_apply: Optional[Callable[..., None]] = self.obs.update_apply
            self._emit_drop: Optional[Callable[..., None]] = self.obs.update_drop
            # Scheduler lifecycle events (queue enter/exit, refresh
            # park): the substrate of the span builder's wait-state
            # segmentation (repro.obs.spans).  Queries only — spans are
            # per-query and update churn would double the event volume.
            self._emit_enqueue: Optional[Callable[..., None]] = self.obs.sched_enqueue
            self._emit_dispatch: Optional[Callable[..., None]] = self.obs.sched_dispatch
            self._emit_park: Optional[Callable[..., None]] = self.obs.sched_park
        else:
            self._emit_admit = None
            self._emit_outcome = None
            self._emit_apply = None
            self._emit_drop = None
            self._emit_enqueue = None
            self._emit_dispatch = None
            self._emit_park = None

        self._running: Optional[Transaction] = None
        # Engine tokens (see Simulator.schedule_token): completion and
        # deadline timers are the two hottest schedule/cancel pairs, so
        # they skip Timer/closure allocation entirely.
        self._completion_token: Optional[int] = None
        self._blocked: Dict[int, Transaction] = {}
        self._deadline_tokens: Dict[int, int] = {}

        # ODU-style refresh dependencies.
        self._refresh_waiters: Dict[int, Set[int]] = {}  # update id -> query ids
        self._query_refreshes: Dict[int, Set[int]] = {}  # query id -> update ids
        self._live_queries: Dict[int, QueryTransaction] = {}

        self._next_txn_id = 1

        # Outcome bookkeeping.
        self.records: List[QueryRecord] = []
        self.outcome_counts: Dict[Outcome, int] = {outcome: 0 for outcome in Outcome}
        self.queries_submitted = 0
        self.updates_enqueued = 0

        # CPU accounting (per class), for utilization signals.
        self._busy_query = 0.0
        self._busy_update = 0.0

        # Service-rate multiplier (fault injection: CPU contention).
        # Work retired per simulated second; 1.0 is the unfaulted CPU.
        # All arithmetic below multiplies/divides elapsed time by this
        # rate — with the default 1.0 both operations are IEEE-exact, so
        # runs without a slowdown stay byte-identical to pre-fault code.
        self._service_rate = 1.0

        policy.bind(self)

    # ------------------------------------------------------------------
    # public API: workload entry points
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def next_txn_id(self) -> int:
        """Allocate a fresh transaction id (monotonically increasing)."""
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return txn_id

    def submit_query(self, query: QueryTransaction) -> None:
        """A user query arrives: admission control, then enqueue."""
        if query.state is not TransactionState.PENDING:
            raise ValueError(f"query {query.txn_id} was already submitted")
        self.queries_submitted += 1
        rows = self._item_rows
        for item_id in query.items:
            rows[item_id].record_query_access()

        if not self.policy.admit_query(query, self):
            query.state = TransactionState.ABORTED
            self._finalize_query(query, Outcome.REJECTED, freshness=None)
            return

        emit = self._emit_admit
        if emit is not None:
            emit(self.sim.now, query.txn_id, query.deadline, len(query.items))
        self._live_queries[query.txn_id] = query
        self.policy.on_query_admitted(query, self)
        self._deadline_tokens[query.txn_id] = self.sim.schedule_token(
            query.deadline, self._deadline_abort, query,
            priority=DEADLINE_EVENT_PRIORITY,
        )

        if self._query_refreshes.get(query.txn_id):
            query.state = TransactionState.BLOCKED
            self._blocked[query.txn_id] = query
            emit = self._emit_park
            if emit is not None:
                emit(self.sim.now, query.txn_id)
        else:
            query.state = TransactionState.READY
            self.ready.push(query)
            emit = self._emit_enqueue
            if emit is not None:
                emit(self.sim.now, query.txn_id, ENQUEUE_ADMIT)
        self._dispatch()

    def source_update_arrival(self, item_id: int) -> None:
        """A periodic source update for ``item_id`` arrives.

        The policy decides whether the server spends CPU applying it;
        a dropped arrival still advances the item's staleness lag.
        """
        item = self._item_rows[item_id]
        item.record_arrival(self.sim.now)
        if self.policy.should_apply_update(item, self):
            self._enqueue_update(item, on_demand=False)
            self._dispatch()
        else:
            item.record_drop()
            emit = self._emit_drop
            if emit is not None:
                emit(self.sim.now, item_id, item.current_period)

    def source_update_run(self, run: _UpdateRun) -> None:
        """Apply a run of consecutive source-update arrivals.

        The experiment runner schedules one simulator event per *run*
        (updates between two query arrivals) instead of one per
        arrival.  Each arrival is processed with full per-arrival
        semantics at its true time; between arrivals the clock advances
        via :meth:`Simulator.fire_inline` — no heap traffic — unless
        something else (a deadline, a completion, a control tick) is
        due first, in which case the rest of the run falls back to a
        real event and yields.  ``events_fired`` counts every arrival
        exactly as the one-event-per-arrival scheme did.

        The caller guarantees every arrival time precedes the run
        horizon (``Simulator.run``'s ``until`` never bisects a run).
        """
        events, index, then = run
        sim = self.sim
        count = len(events)
        arrive = self.source_update_arrival
        while True:
            arrive(events[index][1])
            index += 1
            if index >= count:
                break
            at = events[index][0]
            head = sim.peek_key()
            if head is None or head > (at, ARRIVAL_EVENT_PRIORITY):
                sim.fire_inline(at)
                continue
            # Something pending outranks the next arrival: let the heap
            # interleave it and resume the run afterwards.
            sim.schedule_token(
                at, self.source_update_run, (events, index, then),
                priority=ARRIVAL_EVENT_PRIORITY,
            )
            return
        if then is not None:
            then()  # type: ignore[operator]

    def spawn_refresh(self, item: DataItem, query: QueryTransaction) -> UpdateTransaction:
        """Issue an on-demand refresh of ``item`` on behalf of ``query``
        (the ODU mechanism).

        The query will not start executing until the refresh commits.
        Must be called from ``on_query_admitted`` (before the query is
        enqueued).
        """
        update = self._enqueue_update(item, on_demand=True)
        self._refresh_waiters.setdefault(update.txn_id, set()).add(query.txn_id)
        self._query_refreshes.setdefault(query.txn_id, set()).add(update.txn_id)
        return update

    def attach_refresh(self, update: UpdateTransaction, query: QueryTransaction) -> bool:
        """Make ``query`` wait on an already-pending refresh instead of
        spawning a duplicate (ODU deduplication).

        Returns False (no dependency added) when the refresh already
        finished.  The pending refresh will install the freshest
        arrival known at this instant.
        """
        if update.is_finished:
            return False
        update.seqno = max(update.seqno, self.items[update.item_id].arrivals)
        self._refresh_waiters.setdefault(update.txn_id, set()).add(query.txn_id)
        self._query_refreshes.setdefault(query.txn_id, set()).add(update.txn_id)
        return True

    def _enqueue_update(self, item: DataItem, on_demand: bool) -> UpdateTransaction:
        update = UpdateTransaction(
            txn_id=self.next_txn_id(),
            arrival=self.sim.now,
            exec_time=item.update_exec_time,
            item_id=item.item_id,
            seqno=item.arrivals,
            period=item.current_period,
            on_demand=on_demand,
        )
        update.state = TransactionState.READY
        self.updates_enqueued += 1
        self.ready.push(update)
        return update

    # ------------------------------------------------------------------
    # accessors used by policies
    # ------------------------------------------------------------------

    def running_transaction(self) -> Optional[Transaction]:
        return self._running

    @property
    def service_rate(self) -> float:
        """Current service-rate multiplier (1.0 = unfaulted CPU)."""
        return self._service_rate

    def set_service_rate(self, rate: float) -> None:
        """Change the CPU's service rate (fault injection).

        The running transaction is re-timed: work retired so far at the
        old rate is credited against its remaining demand and its
        completion is rescheduled at the new rate.  Busy-time accounting
        is CPU *occupancy* (sim seconds), so it is rate-independent.
        """
        if rate <= 0:
            raise ValueError("service rate must be positive")
        old_rate = self._service_rate
        if rate == old_rate:
            return
        running = self._running
        if running is not None:
            now = self.sim.now
            started = running.run_started_at
            elapsed = 0.0 if started is None else now - started
            self._credit_busy(running, elapsed)
            running.remaining = max(0.0, running.remaining - elapsed * old_rate)
            running.run_started_at = now
            if self._completion_token is not None:
                self.sim.cancel_token(self._completion_token)
            self._service_rate = rate
            self._completion_token = self.sim.schedule_token(
                now + running.remaining / rate,
                self._complete, running,
                priority=COMPLETION_EVENT_PRIORITY,
            )
        else:
            self._service_rate = rate

    def running_remaining(self) -> float:
        """Remaining work of the transaction on the CPU, right now."""
        running = self._running
        if running is None:
            return 0.0
        started = running.run_started_at
        elapsed = 0.0 if started is None else self.sim.now - started
        remaining = running.remaining - elapsed * self._service_rate
        # Branch instead of ``max(0.0, ...)``: this is the admission
        # controller's per-decision read (``<= 0.0`` also folds -0.0 to
        # 0.0, exactly as ``max`` did by returning its first argument).
        return 0.0 if remaining <= 0.0 else remaining

    def busy_time(self) -> float:
        """Total CPU busy time so far (both classes, including the
        in-progress slice of the running transaction)."""
        total = self._busy_query + self._busy_update
        if self._running is not None and self._running.run_started_at is not None:
            total += self.now - self._running.run_started_at
        return total

    def busy_time_by_class(self) -> Dict[str, float]:
        """CPU busy time split by transaction class."""
        query_busy = self._busy_query
        update_busy = self._busy_update
        if self._running is not None and self._running.run_started_at is not None:
            slice_ = self.now - self._running.run_started_at
            if self._running.is_update:
                update_busy += slice_
            else:
                query_busy += slice_
        return {"query": query_busy, "update": update_busy}

    def item_freshness(self, item_id: int) -> float:
        """Current freshness of one item under the configured metric."""
        return self.config.freshness_metric.item_freshness(self.items[item_id], self.now)

    # ------------------------------------------------------------------
    # CPU dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        """Give the CPU to the highest-priority runnable transaction,
        preempting if necessary.  Transactions that block on locks fall
        out of the loop and the next candidate is tried."""
        while True:
            candidate = self.ready.peek()
            if candidate is None:
                return
            if self._running is not None:
                # Compare the precomputed key fields directly: this pair
                # of reads runs on every dispatch round.
                if candidate._priority_key < self._running._priority_key:
                    self._preempt(self._running)
                else:
                    return
            # The peeked candidate is by definition the queue head, so
            # pop() takes it in O(1) instead of a keyed removal.
            self.ready.pop()
            # Whether the candidate started or blocked, go around again:
            # lock-conflict aborts during acquisition may have readied a
            # transaction that outranks whatever is now on the CPU.
            self._try_start(candidate)

    def _try_start(self, txn: Transaction) -> bool:
        """Acquire ``txn``'s locks and put it on the CPU.

        Returns False if the transaction blocked on a lock or is waiting
        for on-demand refreshes (the caller then tries the next
        candidate)."""
        if txn.is_update:
            needed: Sequence[int] = (txn.item_id,)
            mode = LockMode.WRITE
        else:
            if self._park_for_refresh(txn):
                return False
            needed = txn.items
            mode = LockMode.READ

        for item_id in needed:
            if self.locks.holds(txn, item_id):
                continue
            while True:
                result = self.locks.request(txn, item_id, mode)
                if result.status is LockStatus.GRANTED:
                    break
                if result.status is LockStatus.BLOCKED:
                    txn.state = TransactionState.BLOCKED
                    self._blocked[txn.txn_id] = txn
                    return False
                for victim in result.victims:
                    self._abort_restart(victim)

        self._run(txn)
        return True

    def _park_for_refresh(self, query: QueryTransaction) -> bool:
        """Give an on-demand policy the chance to refresh stale items
        before the query reads.  Returns True when the query was parked
        (it re-enters the ready queue when its refreshes commit)."""
        # Plain loop instead of any(genexpr): this runs on every query
        # start attempt and the generator frame costs more than the walk.
        rows = self._item_rows
        for item_id in query.items:
            if rows[item_id].udrop > 0:
                break
        else:
            return False
        if not self.policy.on_query_stale_at_read(query, self):
            return False
        if not self._query_refreshes.get(query.txn_id):
            return False  # policy asked to wait but spawned nothing
        query.state = TransactionState.BLOCKED
        self._blocked[query.txn_id] = query
        # A parked query must not sit on read locks: the refresh needs a
        # write lock on the very items it is waiting on.
        granted = self.locks.release_all(query)
        for grantee in granted:
            self._continue_acquisition(grantee)
        emit = self._emit_park
        if emit is not None:
            emit(self.sim.now, query.txn_id)
        return True

    def _continue_acquisition(self, txn: Transaction) -> None:
        """A blocked transaction was granted a lock: try to finish its
        lock set and, if complete, return it to the ready queue."""
        if txn.is_finished:
            return
        if txn.is_update:
            needed = [txn.item_id]
            mode = LockMode.WRITE
        else:
            needed = list(txn.items)
            mode = LockMode.READ

        for item_id in needed:
            if self.locks.holds(txn, item_id):
                continue
            while True:
                result = self.locks.request(txn, item_id, mode)
                if result.status is LockStatus.GRANTED:
                    break
                if result.status is LockStatus.BLOCKED:
                    txn.state = TransactionState.BLOCKED
                    self._blocked[txn.txn_id] = txn
                    return
                for victim in result.victims:
                    self._abort_restart(victim)

        self._blocked.pop(txn.txn_id, None)
        txn.state = TransactionState.READY
        self.ready.push(txn)
        if not txn.is_update:
            emit = self._emit_enqueue
            if emit is not None:
                emit(self.sim.now, txn.txn_id, ENQUEUE_GRANT)

    def _run(self, txn: Transaction) -> None:
        now = self.sim.now
        txn.state = TransactionState.RUNNING
        txn.run_started_at = now
        if not txn.is_update:
            emit = self._emit_dispatch
            if emit is not None:
                emit(now, txn.txn_id)
        if not txn.is_update and txn.observed_freshness is None:
            # The query reads its items now (under read locks, no update
            # can commit on them until it finishes or is aborted); the
            # freshness it observes is the freshness of its result.
            metric = self.config.freshness_metric
            item_ids = txn.items
            if len(item_ids) == 1:
                # Single-item fast path (the common case): the query
                # freshness min over one item is that item's freshness.
                txn.observed_freshness = metric.item_freshness(
                    self._item_rows[item_ids[0]], now
                )
            else:
                rows = self._item_rows
                txn.observed_freshness = query_freshness(
                    [rows[item_id] for item_id in item_ids],
                    now,
                    metric,
                )
        self._running = txn
        self._completion_token = self.sim.schedule_token(
            now + txn.remaining / self._service_rate,
            self._complete, txn,
            priority=COMPLETION_EVENT_PRIORITY,
        )

    def _preempt(self, txn: Transaction) -> None:
        """Take ``txn`` off the CPU, crediting the work done so far."""
        assert txn is self._running
        if self._completion_token is not None:
            self.sim.cancel_token(self._completion_token)
            self._completion_token = None
        started = txn.run_started_at
        elapsed = 0.0 if started is None else self.sim.now - started
        self._credit_busy(txn, elapsed)
        remaining = txn.remaining - elapsed * self._service_rate
        txn.remaining = 0.0 if remaining <= 0.0 else remaining
        txn.run_started_at = None
        txn.state = TransactionState.READY
        self._running = None
        self.ready.push(txn)
        if not txn.is_update:
            emit = self._emit_enqueue
            if emit is not None:
                emit(self.sim.now, txn.txn_id, ENQUEUE_PREEMPT)

    def _credit_busy(self, txn: Transaction, elapsed: float) -> None:
        if txn.is_update:
            self._busy_update += elapsed
        else:
            self._busy_query += elapsed

    # ------------------------------------------------------------------
    # completion, aborts
    # ------------------------------------------------------------------

    def _complete(self, txn: Transaction) -> None:
        assert txn is self._running
        started = txn.run_started_at
        elapsed = 0.0 if started is None else self.sim.now - started
        self._credit_busy(txn, elapsed)
        txn.remaining = 0.0
        txn.run_started_at = None
        txn.state = TransactionState.COMMITTED
        self._running = None
        self._completion_token = None

        granted = self.locks.release_all(txn)

        if txn.is_update:
            self._commit_update(txn)
        else:
            self._commit_query(txn)

        for grantee in granted:
            self._continue_acquisition(grantee)
        self._dispatch()

    def _commit_update(self, update: UpdateTransaction) -> None:
        now = self.sim.now
        item = self._item_rows[update.item_id]
        item.apply_update(update.seqno, now)
        item.last_execution_started = now - update.exec_time
        self.policy.on_update_applied(update, item, self)
        emit = self._emit_apply
        if emit is not None:
            emit(now, update.item_id, update.txn_id, update.on_demand, update.period)

        waiters = self._refresh_waiters.pop(update.txn_id, None)
        if waiters is None:
            return
        for query_id in waiters:
            pending = self._query_refreshes.get(query_id)
            if pending is None:
                continue
            pending.discard(update.txn_id)
            query = self._live_queries.get(query_id)
            if query is None or query.is_finished:
                continue
            if not pending and query.state is TransactionState.BLOCKED:
                self._blocked.pop(query_id, None)
                query.state = TransactionState.READY
                self.ready.push(query)
                emit = self._emit_enqueue
                if emit is not None:
                    emit(now, query_id, ENQUEUE_REFRESH)

    def _commit_query(self, query: QueryTransaction) -> None:
        token = self._deadline_tokens.pop(query.txn_id, None)
        if token is not None:
            self.sim.cancel_token(token)
        freshness = query.observed_freshness
        if freshness is None:  # defensive: commit without a run snapshot
            freshness = query_freshness(
                (self._item_rows[item_id] for item_id in query.items),
                self.sim.now,
                self.config.freshness_metric,
            )
        if freshness + 1e-12 >= query.freshness_req:
            outcome = Outcome.SUCCESS
        else:
            outcome = Outcome.DATA_STALE
        self._finalize_query(query, outcome, freshness)

    def _deadline_abort(self, query: QueryTransaction) -> None:
        """Firm deadline: the query dies wherever it is."""
        if query.is_finished:
            return
        self._detach(query)
        query.state = TransactionState.ABORTED
        granted = self.locks.release_all(query)
        self._finalize_query(query, Outcome.DEADLINE_MISS, freshness=None)
        for grantee in granted:
            self._continue_acquisition(grantee)
        self._dispatch()

    def _abort_restart(self, victim: Transaction) -> None:
        """2PL-HP abort: the victim loses its locks and progress.

        Queries restart from scratch (their firm deadline still
        applies); updates re-enter the ready queue.  With
        ``restart_aborted_queries=False`` a victim query instead dies
        immediately as a deadline miss (ablation).
        """
        self._detach(victim)
        granted = self.locks.release_all(victim)
        victim.remaining = victim.exec_time
        victim.run_started_at = None

        if not victim.is_update:
            victim.restarts += 1
            victim.observed_freshness = None  # the restart re-reads
            if self.config.restart_aborted_queries and self.sim.now < victim.deadline:
                victim.state = TransactionState.READY
                self.ready.push(victim)
                emit = self._emit_enqueue
                if emit is not None:
                    emit(self.sim.now, victim.txn_id, ENQUEUE_RESTART)
            else:
                token = self._deadline_tokens.pop(victim.txn_id, None)
                if token is not None:
                    self.sim.cancel_token(token)
                victim.state = TransactionState.ABORTED
                self._finalize_query(victim, Outcome.DEADLINE_MISS, freshness=None)
        else:
            victim.state = TransactionState.READY
            self.ready.push(victim)

        for grantee in granted:
            self._continue_acquisition(grantee)

    def _detach(self, txn: Transaction) -> None:
        """Remove ``txn`` from the CPU, the ready queue, or the blocked
        set — wherever it currently lives."""
        if txn is self._running:
            if self._completion_token is not None:
                self.sim.cancel_token(self._completion_token)
                self._completion_token = None
            started = txn.run_started_at
            elapsed = 0.0 if started is None else self.sim.now - started
            self._credit_busy(txn, elapsed)
            remaining = txn.remaining - elapsed * self._service_rate
            txn.remaining = 0.0 if remaining <= 0.0 else remaining
            txn.run_started_at = None
            self._running = None
        elif txn in self.ready:
            self.ready.remove(txn)
        else:
            self._blocked.pop(txn.txn_id, None)
            self.locks.cancel_wait(txn)

    def _finalize_query(
        self,
        query: QueryTransaction,
        outcome: Outcome,
        freshness: Optional[float],
    ) -> None:
        token = self._deadline_tokens.pop(query.txn_id, None)
        if token is not None:
            self.sim.cancel_token(token)
        # Drop any outstanding refresh dependencies.
        refreshes = self._query_refreshes.pop(query.txn_id, None)
        if refreshes is not None:
            for update_id in refreshes:
                waiters = self._refresh_waiters.get(update_id)
                if waiters is not None:
                    waiters.discard(query.txn_id)
        self._live_queries.pop(query.txn_id, None)

        if outcome is not Outcome.REJECTED:
            query.state = (
                TransactionState.COMMITTED
                if outcome in (Outcome.SUCCESS, Outcome.DATA_STALE)
                else TransactionState.ABORTED
            )
        # Positional construction (field order) — this is the per-query
        # hot exit path and keyword binding measurably adds up.
        now = self.sim.now
        record = QueryRecord(
            query.txn_id,
            query.arrival,
            query.items,
            query.exec_time,
            query.relative_deadline,
            query.freshness_req,
            outcome,
            now,
            freshness,
            query.restarts,
            query.profile,
            query.user_class,
        )
        self.records.append(record)
        self.outcome_counts[outcome] += 1
        emit = self._emit_outcome
        if emit is not None:
            emit(
                now,
                query.txn_id,
                outcome.value,
                query.arrival,
                now - query.arrival,
                freshness,
                query.restarts,
            )
        self.policy.on_query_outcome(record, self)
