"""The dual-priority ready queue.

Paper Section 3.1: "The dispatching discipline adopted in our system is
a dual-priority queue: updates have higher priorities than queries,
whereas within each group, EDF (Earliest Deadline First) is applied."

Implementation: one bucketed sorted list per class (the sorted-
containers technique: ~O(sqrt(n)) insert/remove via bisect over bucket
maxima, O(1) front access), with *exact* incremental backlog
aggregates.  Each entry carries its transaction's ``remaining`` as a
fixed-point integer in units of 2**-1074 (the smallest positive
subnormal double), so per-bucket and per-class running sums are exact
integers — order-independent, drift-free, and a pure function of the
live multiset.  ``update_backlog`` / ``query_backlog_before`` /
``query_backlog_ahead_of`` read those sums in O(buckets) instead of
scanning every queued transaction, and the admission controller's
endangered-queries walk iterates entries already in EDF order.

``remaining`` must be stable while a transaction is queued (the server
sets it *before* every push — on preempt, abort, and restart — and
mutates it again only once the transaction is back on the CPU), so the
integer mirror fixed at push time always matches the float at removal.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.fixedpoint import FIXED_ONE as _FIXED_ONE
from repro.core.fixedpoint import fixed_from_float, float_from_fixed
from repro.db.transactions import QueryTransaction, UpdateTransaction

__all__ = [
    "ReadyQueue",
    "Transaction",
    "fixed_from_float",
    "float_from_fixed",
]

Transaction = Union[QueryTransaction, UpdateTransaction]

# One entry per queued transaction: ``(deadline, txn_id, txn, fixed)``.
# (deadline, txn_id) is the EDF-with-tie-break sort key and is unique,
# so tuple comparison never reaches the transaction object; ``fixed``
# is the remaining-work integer mirror.  Probe keys are 2-tuples
# ``(deadline, txn_id)``: against a 4-tuple entry with the same first
# two fields the *shorter* tuple compares smaller, so ``entry < probe``
# is exactly "entry strictly ahead of probe in EDF order".
_Entry = Tuple[float, int, Transaction, int]
_Key = Tuple[float, int]

#: Split buckets above this length; ~2x the sorted-containers default
#: keeps bisect steps few while bounding memmove cost on inserts.
_BUCKET_LIMIT = 128


class _ClassQueue:
    """One transaction class: bucketed sorted entries + exact sums."""

    __slots__ = ("_buckets", "_maxes", "_sums", "total_fixed", "size")

    def __init__(self) -> None:
        self._buckets: List[List[_Entry]] = []
        # Last entry of each bucket (bisect target; entry/probe-key
        # comparisons work as described on ``_Entry``).
        self._maxes: List[_Entry] = []
        self._sums: List[int] = []  # per-bucket exact backlog
        self.total_fixed = 0
        self.size = 0

    def insert(self, entry: _Entry) -> None:
        buckets = self._buckets
        if not buckets:
            buckets.append([entry])
            self._maxes.append(entry)
            self._sums.append(entry[3])
        else:
            maxes = self._maxes
            index = bisect_left(maxes, entry)
            if index == len(buckets):
                index -= 1
            bucket = buckets[index]
            insort(bucket, entry)
            if bucket[-1] is entry:
                maxes[index] = entry
            self._sums[index] += entry[3]
            if len(bucket) > _BUCKET_LIMIT:
                self._split(index)
        self.total_fixed += entry[3]
        self.size += 1

    def _split(self, index: int) -> None:
        bucket = self._buckets[index]
        half = len(bucket) // 2
        tail = bucket[half:]
        del bucket[half:]
        tail_sum = sum(entry[3] for entry in tail)
        self._buckets.insert(index + 1, tail)
        self._maxes[index] = bucket[-1]
        self._maxes.insert(index + 1, tail[-1])
        self._sums[index] -= tail_sum
        self._sums.insert(index + 1, tail_sum)

    def remove(self, key: _Key) -> bool:
        """Remove the entry with sort key ``key``; False when absent."""
        maxes = self._maxes
        index = bisect_left(maxes, key)
        if index == len(maxes):
            return False
        bucket = self._buckets[index]
        position = bisect_left(bucket, key)
        if position == len(bucket):
            return False
        entry = bucket[position]
        if entry[0] != key[0] or entry[1] != key[1]:
            return False
        del bucket[position]
        self.total_fixed -= entry[3]
        self.size -= 1
        if bucket:
            maxes[index] = bucket[-1]
            self._sums[index] -= entry[3]
        else:
            del self._buckets[index]
            del maxes[index]
            del self._sums[index]
        return True

    def first(self) -> Optional[Transaction]:
        if not self.size:
            return None
        return self._buckets[0][0][2]

    def pop_first(self) -> Transaction:
        bucket = self._buckets[0]
        entry = bucket.pop(0)
        self.total_fixed -= entry[3]
        self.size -= 1
        if bucket:
            self._sums[0] -= entry[3]
        else:
            del self._buckets[0]
            del self._maxes[0]
            del self._sums[0]
        return entry[2]

    def prefix_fixed(self, key: _Key) -> int:
        """Exact backlog of entries strictly ahead of ``key``."""
        total = 0
        buckets = self._buckets
        for index, bucket_max in enumerate(self._maxes):
            if bucket_max < key:
                total += self._sums[index]
                continue
            for entry in buckets[index]:
                if entry < key:
                    total += entry[3]
                else:
                    break
            break
        return total

    def entries_after(self, key: _Key) -> Iterator[_Entry]:
        """Entries strictly after ``key``, in EDF order.

        An entry carrying ``key``'s exact ``(deadline, txn_id)`` — the
        probe itself, when the probe is queued — compares *greater*
        than the 2-tuple key, so ``bisect_right`` alone would yield it;
        it is skipped explicitly ("after" never includes the probe).
        """
        maxes = self._maxes
        index = bisect_right(maxes, key)
        if index == len(maxes):
            return
        bucket = self._buckets[index]
        position = bisect_right(bucket, key)
        if position < len(bucket):
            entry = bucket[position]
            if entry[0] == key[0] and entry[1] == key[1]:
                position += 1
        for entry in bucket[position:]:
            yield entry
        for bucket in self._buckets[index + 1:]:
            yield from bucket

    def transactions(self) -> List[Transaction]:
        return [entry[2] for bucket in self._buckets for entry in bucket]


class ReadyQueue:
    """Updates strictly above queries; EDF within each class."""

    def __init__(self) -> None:
        self._updates = _ClassQueue()
        self._queries = _ClassQueue()
        self._live: set = set()

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, txn: Transaction) -> bool:
        return txn.txn_id in self._live

    def push(self, txn: Transaction) -> None:
        """Enqueue a transaction.  Re-pushing a queued txn is an error."""
        if txn.txn_id in self._live:
            raise ValueError(f"txn {txn.txn_id} is already in the ready queue")
        self._live.add(txn.txn_id)
        entry = (txn.deadline, txn.txn_id, txn, fixed_from_float(txn.remaining))
        if txn.is_update:
            self._updates.insert(entry)
        else:
            self._queries.insert(entry)

    def remove(self, txn: Transaction) -> None:
        """Remove a transaction (e.g. on deadline abort); absent is a no-op."""
        if txn.txn_id not in self._live:
            return
        self._live.discard(txn.txn_id)
        queue = self._updates if txn.is_update else self._queries
        queue.remove((txn.deadline, txn.txn_id))

    def peek(self) -> Optional[Transaction]:
        """Highest-priority ready transaction without removing it."""
        # Inlined front reads (every dispatch round peeks): reach into
        # the class queues directly instead of two ``first()`` calls.
        queue = self._updates
        if queue.size:
            return queue._buckets[0][0][2]
        queue = self._queries
        if queue.size:
            return queue._buckets[0][0][2]
        return None

    def pop(self) -> Optional[Transaction]:
        """Remove and return the highest-priority ready transaction."""
        if self._updates.size:
            txn = self._updates.pop_first()
        elif self._queries.size:
            txn = self._queries.pop_first()
        else:
            return None
        self._live.discard(txn.txn_id)
        return txn

    # ------------------------------------------------------------------
    # backlog inspection (used by admission control; O(buckets) reads
    # of incrementally-maintained exact sums)
    # ------------------------------------------------------------------

    def ready_updates(self) -> List[UpdateTransaction]:
        """Live queued updates, in EDF order."""
        return self._updates.transactions()  # type: ignore[return-value]

    def ready_queries(self) -> List[QueryTransaction]:
        """Live queued queries, in EDF order."""
        return self._queries.transactions()  # type: ignore[return-value]

    def update_backlog(self) -> float:
        """Total remaining work of queued updates (seconds)."""
        return float_from_fixed(self._updates.total_fixed)

    def query_backlog(self) -> float:
        """Total remaining work of queued queries (seconds)."""
        return float_from_fixed(self._queries.total_fixed)

    def query_backlog_before(self, deadline: float) -> float:
        """Total remaining work of queued queries with deadline < ``deadline``."""
        return float_from_fixed(self._queries.prefix_fixed((deadline, -1)))

    def query_backlog_ahead_of(self, query: QueryTransaction) -> float:
        """Total remaining work of queued queries dispatched before ``query``.

        Unlike :meth:`query_backlog_before`, equal-deadline queries are
        ordered by the full EDF tie-break (``priority_key``), so a
        queued query sharing ``query``'s deadline but holding a smaller
        txn id is correctly counted as ahead of it.
        """
        return float_from_fixed(
            self._queries.prefix_fixed((query.deadline, query.txn_id))
        )

    def backlog_ahead_of(self, query: QueryTransaction) -> float:
        """Combined update + earlier-query backlog ahead of ``query``
        under the dual-priority EDF discipline, converted once.

        Equivalent to ``update_backlog() + query_backlog_ahead_of(query)``
        up to a single correctly-rounded conversion instead of two —
        the admission controller's EST read.
        """
        return float_from_fixed(
            self._updates.total_fixed
            + self._queries.prefix_fixed((query.deadline, query.txn_id))
        )

    def queries_after(self, query: QueryTransaction) -> Iterator[QueryTransaction]:
        """Queued queries dispatched after ``query`` under the full EDF
        tie-break, in dispatch order — the admission controller's
        endangered-candidate walk."""
        for entry in self._queries.entries_after((query.deadline, query.txn_id)):
            yield entry[2]  # type: ignore[misc]

    def compact(self) -> None:
        """Kept for API compatibility: removal is physical now, so there
        are no dead entries to drop."""
