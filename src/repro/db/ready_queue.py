"""The dual-priority ready queue.

Paper Section 3.1: "The dispatching discipline adopted in our system is
a dual-priority queue: updates have higher priorities than queries,
whereas within each group, EDF (Earliest Deadline First) is applied."

Implementation: two binary heaps keyed by ``(deadline, txn_id)``.
Removal is physical (O(n) rebuild on out-of-order removal): preempted
and restarted transactions re-enter the queue under the same txn id,
so a stale lazily-deleted entry would be revived by the live-set
filter and double-count that transaction's remaining work in the
backlog aggregates the admission controller reads.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple, Union

from repro.db.transactions import QueryTransaction, UpdateTransaction

Transaction = Union[QueryTransaction, UpdateTransaction]


class ReadyQueue:
    """Updates strictly above queries; EDF within each class."""

    def __init__(self) -> None:
        self._update_heap: List[Tuple[float, int, UpdateTransaction]] = []
        self._query_heap: List[Tuple[float, int, QueryTransaction]] = []
        self._live: set = set()

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, txn: Transaction) -> bool:
        return txn.txn_id in self._live

    def push(self, txn: Transaction) -> None:
        """Enqueue a transaction.  Re-pushing a queued txn is an error."""
        if txn.txn_id in self._live:
            raise ValueError(f"txn {txn.txn_id} is already in the ready queue")
        self._live.add(txn.txn_id)
        entry = (txn.deadline, txn.txn_id, txn)
        if txn.is_update:
            heapq.heappush(self._update_heap, entry)
        else:
            heapq.heappush(self._query_heap, entry)

    def remove(self, txn: Transaction) -> None:
        """Remove a transaction (e.g. on deadline abort); absent is a no-op.

        Removal is physical: a lazily-deleted entry would survive in the
        heap and, once the same transaction is re-pushed (preempt or
        restart re-uses the txn id), the live-set filter would count the
        stale duplicate too, double-counting that transaction's work in
        every backlog aggregate until compaction.
        """
        if txn.txn_id not in self._live:
            return
        self._live.discard(txn.txn_id)
        heap = self._update_heap if txn.is_update else self._query_heap
        for index, entry in enumerate(heap):
            if entry[1] == txn.txn_id:
                del heap[index]
                heapq.heapify(heap)
                break

    def peek(self) -> Optional[Transaction]:
        """Highest-priority ready transaction without removing it."""
        update = self._peek_heap(self._update_heap)
        if update is not None:
            return update
        return self._peek_heap(self._query_heap)

    def pop(self) -> Optional[Transaction]:
        """Remove and return the highest-priority ready transaction."""
        txn = self.peek()
        if txn is None:
            return None
        self._live.discard(txn.txn_id)
        # ``peek`` drained any dead prefix, so ``txn``'s entry is at the
        # top of its heap; pop it physically (see ``remove``).
        if txn.is_update:
            heapq.heappop(self._update_heap)
        else:
            heapq.heappop(self._query_heap)
        return txn

    def _peek_heap(self, heap: List[Tuple[float, int, Transaction]]) -> Optional[Transaction]:
        while heap:
            _, txn_id, txn = heap[0]
            if txn_id in self._live:
                return txn
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    # backlog inspection (used by admission control, O(queue length))
    # ------------------------------------------------------------------

    def ready_updates(self) -> List[UpdateTransaction]:
        """Live queued updates (unordered)."""
        return [txn for _, txn_id, txn in self._update_heap if txn_id in self._live]

    def ready_queries(self) -> List[QueryTransaction]:
        """Live queued queries (unordered)."""
        return [txn for _, txn_id, txn in self._query_heap if txn_id in self._live]

    def update_backlog(self) -> float:
        """Total remaining work of queued updates (seconds).

        Single pass over the heap storage — no intermediate list; the
        summation order matches :meth:`ready_updates` exactly, so the
        float result is bit-identical to the former two-pass version.
        """
        live = self._live
        total = 0.0
        for _, txn_id, txn in self._update_heap:
            if txn_id in live:
                total += txn.remaining
        return total

    def query_backlog_before(self, deadline: float) -> float:
        """Total remaining work of queued queries with deadline < ``deadline``."""
        live = self._live
        total = 0.0
        for _, txn_id, txn in self._query_heap:
            if txn_id in live and txn.deadline < deadline:
                total += txn.remaining
        return total

    def query_backlog_ahead_of(self, query: QueryTransaction) -> float:
        """Total remaining work of queued queries dispatched before ``query``.

        Unlike :meth:`query_backlog_before`, equal-deadline queries are
        ordered by the full EDF tie-break (``priority_key``), so a
        queued query sharing ``query``'s deadline but holding a smaller
        txn id is correctly counted as ahead of it.  Iteration order
        matches :meth:`query_backlog_before` (heap storage order), so
        the float summation stays bit-stable.
        """
        live = self._live
        key = query.priority_key()
        total = 0.0
        for _, txn_id, txn in self._query_heap:
            if txn_id in live and txn.priority_key() < key:
                total += txn.remaining
        return total

    def compact(self) -> None:
        """Physically drop dead heap entries (occasionally, to bound memory)."""
        self._update_heap = [
            entry for entry in self._update_heap if entry[1] in self._live
        ]
        heapq.heapify(self._update_heap)
        self._query_heap = [
            entry for entry in self._query_heap if entry[1] in self._live
        ]
        heapq.heapify(self._query_heap)
