"""Simulated item values: what the update stream actually carries.

The core simulation tracks update *sequence numbers* — enough for the
paper's lag-based freshness.  This module attaches actual values to
those sequence numbers so that divergence-based freshness (the third
family of Section 2.2) can be computed from real value distance rather
than a per-update drift proxy: each item's source follows a random walk
(the conventional stand-in for price-like signals), arrival ``k``
carries ``value_at(k)``, and the stored value is whatever the last
*applied* arrival carried.

Everything is deterministic given the seed, and values are computed
lazily and cached, so attaching a :class:`ValueTable` costs nothing for
items whose values are never inspected.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.db.freshness import FreshnessMetric
from repro.db.items import DataItem
from repro.sim.rng import RandomStreams


class RandomWalkStream:
    """A Gaussian random walk: ``value_at(k) = initial + sum of k steps``.

    ``value_at(0)`` is the initial (pre-first-update) value.  Steps are
    drawn lazily from the injected generator — a named
    :class:`~repro.sim.rng.RandomStreams` substream, so this walk's
    draws cannot perturb any other component's — and any prefix of the
    walk is reproducible regardless of query order.
    """

    def __init__(self, initial: float, step_sigma: float, rng: random.Random) -> None:
        if step_sigma < 0:
            raise ValueError("step_sigma must be non-negative")
        self.initial = initial
        self.step_sigma = step_sigma
        self._rng = rng
        self._values: List[float] = [initial]

    def value_at(self, seqno: int) -> float:
        """The source value carried by arrival ``seqno`` (0 = initial)."""
        if seqno < 0:
            raise ValueError("seqno must be non-negative")
        while len(self._values) <= seqno:
            self._values.append(
                self._values[-1] + self._rng.gauss(0.0, self.step_sigma)
            )
        return self._values[seqno]


class ValueTable:
    """Per-item value streams, keyed by item id."""

    def __init__(
        self,
        n_items: int,
        seed: int,
        initial: float = 100.0,
        step_sigma: float = 1.0,
    ) -> None:
        if n_items <= 0:
            raise ValueError("n_items must be positive")
        self.n_items = n_items
        self.seed = seed
        self.initial = initial
        self.step_sigma = step_sigma
        self._streams: Dict[int, RandomWalkStream] = {}
        # One named substream per item: the walk for item i consumes
        # "value-stream-i" and nothing else, so extending one item's
        # walk never shifts another's (and the names match the previous
        # derive_seed() scheme, keeping old seeds byte-compatible).
        self._rngs = RandomStreams(seed)

    def stream(self, item_id: int) -> RandomWalkStream:
        if not 0 <= item_id < self.n_items:
            raise IndexError(f"item {item_id} out of range [0, {self.n_items})")
        if item_id not in self._streams:
            self._streams[item_id] = RandomWalkStream(
                initial=self.initial,
                step_sigma=self.step_sigma,
                rng=self._rngs.stream(f"value-stream-{item_id}"),
            )
        return self._streams[item_id]

    def stored_value(self, item: DataItem) -> float:
        """The value the server currently holds for ``item`` (what the
        last applied arrival carried)."""
        return self.stream(item.item_id).value_at(item.applied_seq)

    def source_value(self, item: DataItem) -> float:
        """The freshest value available at the source (what the newest
        arrival carried)."""
        return self.stream(item.item_id).value_at(item.arrivals)

    def divergence(self, item: DataItem) -> float:
        """Absolute stored-vs-source value distance."""
        return abs(self.source_value(item) - self.stored_value(item))


class ValueDivergenceFreshness(FreshnessMetric):
    """Divergence-based freshness from *actual* value distance.

    ``freshness = max(floor, 1 - |v_source - v_stored| / scale)``: a
    stored value within ``scale`` of the source is partially fresh, one
    further away is fully stale.  Unlike
    :class:`~repro.db.freshness.DivergenceFreshness` (a drift-per-drop
    proxy), two dropped updates that happen to cancel out leave the
    item fresh — the behaviour value-divergence semantics promise.
    """

    _FLOOR = 1e-9

    def __init__(self, values: ValueTable, scale: float) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.values = values
        self.scale = scale

    def item_freshness(self, item: DataItem, now: float) -> float:
        gap = self.values.divergence(item)
        return max(self._FLOOR, 1.0 - gap / self.scale)

    def describe(self) -> str:
        return f"value-divergence (scale {self.scale:g})"
