"""Two-Phase Locking with High Priority (2PL-HP).

The concurrency-control scheme the paper adopts (Section 3.1, citing
Abbott & Garcia-Molina).  The rule: when a transaction requests a lock
that conflicts with locks held by *strictly lower-priority*
transactions only, the holders are aborted (restarted) and the
requester proceeds; if any conflicting holder has higher priority, the
requester waits.  Because wait-for edges therefore always point from
lower to higher priority — and priority keys are a strict total order —
no deadlock can form.

Priorities are the transactions' ``priority_key()`` tuples (class rank,
deadline, id): updates above queries, EDF within a class.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.db.transactions import QueryTransaction, UpdateTransaction
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.sim.engine import Simulator

Transaction = Union[QueryTransaction, UpdateTransaction]


class LockMode(enum.Enum):
    """Read locks are shared; write locks are exclusive."""

    READ = "read"
    WRITE = "write"

    # Singleton members: identity hash is correct and cheap (lock
    # tables are dict-indexed per request on the hot path).
    __hash__ = object.__hash__


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.READ and requested is LockMode.READ


class LockStatus(enum.Enum):
    """Result of a lock request."""

    GRANTED = "granted"
    BLOCKED = "blocked"
    CONFLICT = "conflict"  # lower-priority holders must be aborted first

    __hash__ = object.__hash__  # singleton members; see LockMode


@dataclasses.dataclass
class LockRequestResult:
    """Outcome of :meth:`LockManager.request`.

    ``victims`` is populated only for :attr:`LockStatus.CONFLICT`: the
    caller must abort those transactions (which releases their locks)
    and retry the request.
    """

    status: LockStatus
    victims: Tuple[Transaction, ...] = ()


#: Shared immutable results for the two allocation-free outcomes; the
#: grant path runs once per lock request on the simulation hot path.
_GRANTED = LockRequestResult(LockStatus.GRANTED)
_BLOCKED = LockRequestResult(LockStatus.BLOCKED)


@dataclasses.dataclass
class _Waiter:
    txn: Transaction
    mode: LockMode


class _ItemLock:
    """Lock state for a single data item."""

    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        self.holders: Dict[int, Tuple[Transaction, LockMode]] = {}
        self.waiters: List[_Waiter] = []

    def holder_modes(self) -> List[LockMode]:
        return [mode for _, mode in self.holders.values()]


class LockManager:
    """Item-granularity 2PL-HP lock table.

    The manager never aborts transactions itself: a
    :attr:`LockStatus.CONFLICT` result names the victims and the server
    performs the abort (releasing their locks) before retrying.  This
    keeps control flow single-owner and avoids re-entrant callbacks.
    """

    def __init__(self) -> None:
        self._locks: Dict[int, _ItemLock] = {}
        self._held_by: Dict[int, Set[int]] = {}  # txn_id -> item ids held
        self._waiting_on: Dict[int, int] = {}  # txn_id -> item id waited on
        # Observability: the lock table has no clock of its own, so the
        # recorder comes paired with the simulator whose virtual time
        # stamps the wait/preempt events.  Disabled by default.
        self._obs: Recorder = NULL_RECORDER
        self._obs_sim: Optional[Simulator] = None

    def bind_observer(self, recorder: Recorder, sim: Simulator) -> None:
        """Attach a trace recorder; event times come from ``sim.now``."""
        self._obs = recorder
        self._obs_sim = sim

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def holds(self, txn: Transaction, item_id: int) -> bool:
        """True if ``txn`` currently holds a lock on ``item_id``."""
        held = self._held_by.get(txn.txn_id)
        return held is not None and item_id in held

    def held_items(self, txn: Transaction) -> Set[int]:
        """Ids of all items ``txn`` holds locks on."""
        return set(self._held_by.get(txn.txn_id, set()))

    def is_waiting(self, txn: Transaction) -> bool:
        """True if ``txn`` is queued behind some lock."""
        return txn.txn_id in self._waiting_on

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------

    def request(
        self,
        txn: Transaction,
        item_id: int,
        mode: LockMode,
    ) -> LockRequestResult:
        """Request ``mode`` on ``item_id`` for ``txn``.

        Returns GRANTED (lock now held), BLOCKED (queued; the caller
        will be told via :meth:`release_all`'s grant list when it gets
        the lock), or CONFLICT with the lower-priority holders to abort.

        Re-requesting a held lock in the same or weaker mode is a
        GRANTED no-op; read→write upgrades follow the same HP rule
        against the *other* holders.
        """
        locks = self._locks
        lock = locks.get(item_id)
        if lock is None:
            lock = locks[item_id] = _ItemLock()

        # Uncontended fast path (the overwhelmingly common case): no
        # holders and no waiters means no conflict of any kind.
        if not lock.holders and not lock.waiters:
            lock.holders[txn.txn_id] = (txn, mode)
            held_items = self._held_by.get(txn.txn_id)
            if held_items is None:
                held_items = self._held_by[txn.txn_id] = set()
            held_items.add(item_id)
            return _GRANTED

        held = lock.holders.get(txn.txn_id)
        if held is not None:
            _, held_mode = held
            if held_mode is LockMode.WRITE or mode is LockMode.READ:
                return _GRANTED

        conflicting = [
            holder
            for holder_id, (holder, holder_mode) in lock.holders.items()
            if holder_id != txn.txn_id and not _compatible(holder_mode, mode)
        ]

        # No barging: an incompatible waiter with higher priority keeps
        # this request out even if the holders are compatible.
        blocking_waiters = [
            waiter
            for waiter in lock.waiters
            if waiter.txn.txn_id != txn.txn_id
            and waiter.txn.priority_key() < txn.priority_key()
            and not (_compatible(waiter.mode, mode) and _compatible(mode, waiter.mode))
        ]

        if not conflicting and not blocking_waiters:
            lock.holders[txn.txn_id] = (txn, mode)
            held_items = self._held_by.get(txn.txn_id)
            if held_items is None:
                held_items = self._held_by[txn.txn_id] = set()
            held_items.add(item_id)
            return _GRANTED

        higher_priority_conflicts = [
            holder
            for holder in conflicting
            if holder.priority_key() < txn.priority_key()
        ]
        if higher_priority_conflicts or blocking_waiters:
            self._enqueue_waiter(lock, txn, mode, item_id)
            obs = self._obs
            if obs.enabled and self._obs_sim is not None:
                obs.lock_wait(
                    self._obs_sim.now,
                    txn.txn_id,
                    item_id,
                    txn.is_update,
                    sorted(lock.holders),
                )
            return _BLOCKED

        # Every conflicting holder has strictly lower priority: 2PL-HP
        # says abort them all.
        obs = self._obs
        if obs.enabled and self._obs_sim is not None:
            obs.lock_preempt(
                self._obs_sim.now,
                txn.txn_id,
                item_id,
                txn.is_update,
                sorted(victim.txn_id for victim in conflicting),
            )
        return LockRequestResult(LockStatus.CONFLICT, victims=tuple(conflicting))

    def _enqueue_waiter(
        self,
        lock: _ItemLock,
        txn: Transaction,
        mode: LockMode,
        item_id: int,
    ) -> None:
        if txn.txn_id in self._waiting_on:
            raise RuntimeError(
                f"txn {txn.txn_id} already waiting on item {self._waiting_on[txn.txn_id]}"
            )
        lock.waiters.append(_Waiter(txn=txn, mode=mode))
        lock.waiters.sort(key=lambda waiter: waiter.txn.priority_key())
        self._waiting_on[txn.txn_id] = item_id

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------

    def release_all(self, txn: Transaction) -> List[Transaction]:
        """Release every lock ``txn`` holds (and any wait it is queued
        in) and promote waiters.

        Returns:
            Transactions that were *granted* a lock by this release, in
            priority order.  The server resumes their lock-acquisition
            progress.
        """
        self.cancel_wait(txn)
        granted: List[Transaction] = []
        item_ids = self._held_by.pop(txn.txn_id, None)
        if item_ids is None:
            return granted
        for item_id in item_ids:
            lock = self._locks.get(item_id)
            if lock is None:
                continue
            lock.holders.pop(txn.txn_id, None)
            granted.extend(self._promote_waiters(lock, item_id))
        return granted

    def cancel_wait(self, txn: Transaction) -> None:
        """Remove ``txn`` from any wait queue (e.g. on deadline abort)."""
        item_id = self._waiting_on.pop(txn.txn_id, None)
        if item_id is None:
            return
        lock = self._locks.get(item_id)
        if lock is not None:
            lock.waiters = [w for w in lock.waiters if w.txn.txn_id != txn.txn_id]
            # The departure may unblock lower-priority compatible waiters;
            # the caller's release path re-dispatches, and the next
            # release on this item will promote them.  To avoid stalls we
            # promote eagerly here as well, but discard the grant list:
            # promotion only ever *adds* holders, and the server learns
            # about them through its own release path.  Eager promotion
            # with notification is handled by release_all.

    def _promote_waiters(self, lock: _ItemLock, item_id: int) -> List[Transaction]:
        """Grant queued waiters now compatible, in priority order."""
        granted: List[Transaction] = []
        while lock.waiters:
            waiter = lock.waiters[0]
            conflicting = [
                holder_mode
                for holder_id, (_, holder_mode) in lock.holders.items()
                if holder_id != waiter.txn.txn_id
                and not _compatible(holder_mode, waiter.mode)
            ]
            if conflicting:
                break
            lock.waiters.pop(0)
            self._waiting_on.pop(waiter.txn.txn_id, None)
            lock.holders[waiter.txn.txn_id] = (waiter.txn, waiter.mode)
            self._held_by.setdefault(waiter.txn.txn_id, set()).add(item_id)
            granted.append(waiter.txn)
        if granted:
            obs = self._obs
            if obs.enabled and self._obs_sim is not None:
                now = self._obs_sim.now
                for grantee in granted:
                    obs.lock_grant(now, grantee.txn_id, item_id)
        return granted

    # ------------------------------------------------------------------
    # introspection (tests / debugging)
    # ------------------------------------------------------------------

    def holders_of(self, item_id: int) -> List[Tuple[int, LockMode]]:
        """(txn_id, mode) pairs currently holding ``item_id``."""
        lock = self._locks.get(item_id)
        if lock is None:
            return []
        return [(txn_id, mode) for txn_id, (_, mode) in lock.holders.items()]

    def waiters_of(self, item_id: int) -> List[int]:
        """txn ids queued on ``item_id``, in grant order."""
        lock = self._locks.get(item_id)
        if lock is None:
            return []
        return [waiter.txn.txn_id for waiter in lock.waiters]

    def waited_item(self, txn: Transaction) -> Optional[int]:
        """The item ``txn`` is blocked on, if any."""
        return self._waiting_on.get(txn.txn_id)
