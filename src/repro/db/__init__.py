"""The simulated web-database server substrate.

Implements the mechanisms fixed by Section 3.1 of the paper: a single
preemptive CPU, a dual-priority ready queue (updates above queries,
EDF within each class), firm deadlines, lag-based freshness, and
Two-Phase-Locking High-Priority (2PL-HP) concurrency control.
"""

from repro.db.freshness import (
    DivergenceFreshness,
    FreshnessMetric,
    LagFreshness,
    TimeFreshness,
    query_freshness,
)
from repro.db.items import DataItem, ItemTable
from repro.db.locks import LockManager, LockMode
from repro.db.ready_queue import ReadyQueue
from repro.db.server import Server, ServerConfig
from repro.db.transactions import (
    Outcome,
    QueryRecord,
    QueryTransaction,
    TransactionState,
    UpdateTransaction,
)
from repro.db.values import RandomWalkStream, ValueDivergenceFreshness, ValueTable

__all__ = [
    "DataItem",
    "DivergenceFreshness",
    "FreshnessMetric",
    "ItemTable",
    "LagFreshness",
    "LockManager",
    "LockMode",
    "Outcome",
    "QueryRecord",
    "QueryTransaction",
    "RandomWalkStream",
    "ReadyQueue",
    "Server",
    "ServerConfig",
    "TimeFreshness",
    "TransactionState",
    "UpdateTransaction",
    "ValueDivergenceFreshness",
    "ValueTable",
    "query_freshness",
]
