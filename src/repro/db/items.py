"""Data items and the item table.

Each :class:`DataItem` tracks the source-side update stream (arrival
sequence numbers), the server-side application state (the highest
arrival reflected in the stored value), and the two periods the paper
manipulates: the *ideal* period ``pi_j`` at which the source produces
updates and the *current* period ``pc_j`` after update-frequency
modulation (``pc_j >= pi_j`` always).

Because updates are periodic snapshots of the item's current value —
not increments — applying the latest arrival makes every earlier
skipped arrival irrelevant (paper Section 1, footnote 2).  The lag
``Udrop_j`` is therefore simply ``arrivals - applied_seq``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional


@dataclasses.dataclass
class DataItem:
    """One data item ``d_j`` with its update stream state.

    Attributes:
        item_id: Dense id in ``[0, S)``.
        ideal_period: ``pi_j`` — source inter-arrival time of updates.
        update_exec_time: ``ue_j`` — CPU cost of applying one update.
        current_period: ``pc_j`` — modulated application period;
            starts equal to ``ideal_period`` and never drops below it.
    """

    item_id: int
    ideal_period: float
    update_exec_time: float
    current_period: float = dataclasses.field(default=0.0)

    # -- update-stream state --
    arrivals: int = 0  # total source arrivals so far
    applied_seq: int = 0  # highest arrival reflected in the stored value
    pending_drops: int = 0  # dropped arrivals newer than the stored value
    last_drop_seq: int = 0  # seqno of the newest dropped arrival
    first_pending_time: Optional[float] = None  # arrival time of oldest pending drop
    last_arrival_time: float = 0.0
    last_applied_time: float = 0.0
    last_execution_started: Optional[float] = None  # start of last applied refresh

    # -- counters for analysis (Figure 3) --
    updates_executed: int = 0
    updates_dropped: int = 0
    query_accesses: int = 0

    def __post_init__(self) -> None:
        if self.ideal_period <= 0:
            raise ValueError("ideal_period must be positive")
        if self.update_exec_time <= 0:
            raise ValueError("update_exec_time must be positive")
        if not self.current_period:
            self.current_period = self.ideal_period
        if self.current_period < self.ideal_period:
            raise ValueError("current_period cannot be below ideal_period")

    @property
    def udrop(self) -> int:
        """``Udrop_j`` — updates *dropped* since the last successful
        update (paper Eq. 1's definition).

        An arrival that is merely queued for execution does not count:
        the paper's IMU and ODU achieve 100 % freshness by construction,
        so only arrivals the server decided not to apply can stale an
        item.
        """
        return self.pending_drops

    @property
    def is_degraded(self) -> bool:
        """True while modulation holds ``pc_j`` above ``pi_j``."""
        return self.current_period > self.ideal_period

    def record_arrival(self, now: float) -> int:
        """Register one source update arrival; returns its sequence number."""
        self.arrivals += 1
        self.last_arrival_time = now
        return self.arrivals

    def record_drop(self) -> None:
        """Count the most recent arrival as dropped (not applied).

        The stored value was perfectly fresh until this arrival existed,
        so the first drop since the lag was last cleared marks the start
        of the staleness window (used by time-based freshness).
        """
        self.updates_dropped += 1
        self.pending_drops += 1
        self.last_drop_seq = self.arrivals
        if self.first_pending_time is None:
            self.first_pending_time = self.last_arrival_time

    def apply_update(self, seqno: int, now: float) -> None:
        """Commit a refresh installing arrival ``seqno``.

        An out-of-order commit (an older refresh finishing after a newer
        one) never moves ``applied_seq`` backwards.  Installing a value
        at least as new as every drop clears the staleness lag: updates
        are full snapshots, so the newest one subsumes all skipped ones.
        """
        if seqno > self.applied_seq:
            self.applied_seq = seqno
            self.last_applied_time = now
        if seqno >= self.last_drop_seq:
            self.pending_drops = 0
            self.first_pending_time = None
        self.updates_executed += 1

    def record_query_access(self) -> None:
        """Count one query touching this item (for Figure 3 analysis)."""
        self.query_accesses += 1

    def degrade_period(self, factor: float) -> float:
        """Stretch ``pc_j`` by ``(1 + factor)`` (paper Eq. 9).  Returns the new period."""
        if factor <= 0:
            raise ValueError("degrade factor must be positive")
        self.current_period *= 1.0 + factor
        return self.current_period

    def upgrade_period(self, shrink: float) -> float:
        """Shrink ``pc_j`` toward ``pi_j`` (paper Eq. 10 as disambiguated
        in DESIGN.md): ``pc_j <- max(pi_j, pc_j - shrink * pi_j)``.

        The subtraction is in units of the *ideal* period, so a mildly
        degraded item snaps back within a couple of Upgrade signals
        ("quickly converge to the original update period") while a
        deeply degraded one recovers gradually.  Returns the new period.
        """
        if shrink <= 0:
            raise ValueError("shrink must be positive")
        self.current_period = max(
            self.ideal_period, self.current_period - shrink * self.ideal_period
        )
        return self.current_period

    def reset_period(self) -> None:
        """Restore the ideal period (used by tests and ablations)."""
        self.current_period = self.ideal_period


class ItemTable:
    """The database ``D = {d_1 .. d_S}`` as a dense, indexable table."""

    def __init__(self, items: List[DataItem]) -> None:
        if not items:
            raise ValueError("item table cannot be empty")
        expected = list(range(len(items)))
        actual = [item.item_id for item in items]
        if actual != expected:
            raise ValueError("items must have dense ids 0..S-1 in order")
        self._items = items
        # Public alias for per-event hot paths: indexing the list
        # directly skips the ``__getitem__`` method-call overhead.  Ids
        # are dense 0..S-1, so ``rows[item_id]`` is always valid.
        self.rows: List[DataItem] = items

    @classmethod
    def uniform(
        cls,
        size: int,
        ideal_period: float,
        update_exec_time: float,
    ) -> "ItemTable":
        """Build a table of ``size`` identical items (convenient in tests)."""
        return cls(
            [
                DataItem(
                    item_id=i,
                    ideal_period=ideal_period,
                    update_exec_time=update_exec_time,
                )
                for i in range(size)
            ]
        )

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, item_id: int) -> DataItem:
        return self._items[item_id]

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items)

    def degraded_items(self) -> List[DataItem]:
        """Items whose current period exceeds the ideal period."""
        return [item for item in self._items if item.is_degraded]

    def totals(self) -> Dict[str, int]:
        """Aggregate counters across the table."""
        return {
            "arrivals": sum(item.arrivals for item in self._items),
            "executed": sum(item.updates_executed for item in self._items),
            "dropped": sum(item.updates_dropped for item in self._items),
            "query_accesses": sum(item.query_accesses for item in self._items),
        }
