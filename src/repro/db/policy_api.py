"""The hook interface between the server and a transaction-management
policy.

The server owns mechanism (dispatching, locking, deadlines, freshness
bookkeeping); a :class:`ServerPolicy` owns policy (admit or reject a
query, apply or drop an update arrival, modulate per-item periods).
UNIT, IMU, ODU, and QMF in :mod:`repro.core` all implement this
interface, so the evaluation harness can swap them freely.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.db.items import DataItem
from repro.db.transactions import QueryRecord, QueryTransaction, UpdateTransaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.db.server import Server


class ServerPolicy(abc.ABC):
    """Decision hooks invoked by :class:`repro.db.server.Server`.

    All hooks receive the server so a policy can inspect queue state,
    item periods, and the clock; hooks other than the two decision
    points have no-op defaults.
    """

    def bind(self, server: "Server") -> None:
        """Called once before the simulation starts.

        Policies that run a feedback loop schedule their first control
        tick here.
        """

    @abc.abstractmethod
    def admit_query(self, query: QueryTransaction, server: "Server") -> bool:
        """Admission decision for an arriving user query."""

    @abc.abstractmethod
    def should_apply_update(self, item: DataItem, server: "Server") -> bool:
        """Whether to execute (True) or drop (False) the update arrival
        just recorded on ``item``."""

    def on_query_admitted(self, query: QueryTransaction, server: "Server") -> None:
        """Called right after a query passes admission (UNIT charges
        ticket values here)."""

    def on_query_stale_at_read(self, query: QueryTransaction, server: "Server") -> bool:
        """Called when a query is about to execute while at least one of
        its items is stale (``udrop > 0``).

        An on-demand policy (ODU; QMF for its flexible-freshness items)
        spawns refresh transactions here via
        :meth:`~repro.db.server.Server.spawn_refresh` /
        :meth:`~repro.db.server.Server.attach_refresh` and returns True:
        the server then parks the query until the refreshes commit.
        Returning False (the default) lets the query read as-is.
        """
        return False

    def on_query_outcome(self, record: QueryRecord, server: "Server") -> None:
        """Called when a query reaches a final outcome (including
        rejection)."""

    def on_update_applied(
        self,
        update: UpdateTransaction,
        item: DataItem,
        server: "Server",
    ) -> None:
        """Called when an update transaction commits."""

    def on_fault(self, label: str, active: bool, server: "Server") -> None:
        """Called by the fault driver at an injected fault's window
        boundaries (``active`` is True at the start, False at the end).

        The default is a no-op: policies are not told what the fault
        *is* — they must react through their ordinary feedback signals.
        The hook exists so a policy can snapshot its controller state at
        the boundary (UNIT records a ``control.window`` trace event),
        which anchors degradation analysis to the fault timeline.
        """

    def describe(self) -> str:
        """Short policy name for reports."""
        return type(self).__name__
