"""Transaction records: user queries, updates, outcomes.

The paper distinguishes two transaction classes (Section 2.1): *user
query transactions*, which read one or more data items under a firm
deadline ``qt_i`` and a freshness requirement ``qf_i``, and *update
transactions*, which write a single data item and carry no deadline of
their own (they are ordered EDF by their arrival plus period).

The concrete classes are ``slots=True`` dataclasses: a run allocates
one object per arrival and the server touches their attributes in every
scheduling decision, so the slot layout (no per-instance ``__dict__``)
is a measurable win.  Class membership is exposed through the
``is_update`` class flag, which the hot paths test instead of calling
``isinstance``; the absolute ``deadline`` and the ``priority_key()``
tuple are both fixed at construction time and therefore precomputed.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import ClassVar, Optional, Tuple


class Outcome(enum.Enum):
    """The four possible fortunes of a user query (paper Section 2.1)."""

    SUCCESS = "success"
    REJECTED = "rejected"
    DEADLINE_MISS = "dmf"
    DATA_STALE = "dsf"

    # Members are singletons, so the C-level identity hash is correct
    # and much cheaper than Enum's per-call name hash — outcome counts
    # are dict-indexed on the simulation hot path.
    __hash__ = object.__hash__


class TransactionState(enum.Enum):
    """Lifecycle of a transaction inside the server."""

    PENDING = "pending"  # created, not yet submitted
    READY = "ready"  # in the ready queue, eligible to run
    RUNNING = "running"  # holds the CPU
    BLOCKED = "blocked"  # waiting on a lock or on refresh dependencies
    COMMITTED = "committed"
    ABORTED = "aborted"

    __hash__ = object.__hash__  # singleton members; see Outcome


# Class-priority ranks: updates run above queries (Section 3.1).
UPDATE_CLASS_RANK = 0
QUERY_CLASS_RANK = 1


@dataclasses.dataclass(slots=True)
class _TransactionBase:
    """State shared by both transaction classes."""

    #: Class-membership flag; True on :class:`UpdateTransaction`.
    is_update: ClassVar[bool] = False

    txn_id: int
    arrival: float
    exec_time: float

    # -- runtime state (mutated by the server) --
    state: TransactionState = dataclasses.field(default=TransactionState.PENDING)
    remaining: float = dataclasses.field(default=0.0)
    run_started_at: Optional[float] = dataclasses.field(default=None)

    # Absolute EDF horizon, fixed at construction (arrival + qt_i for
    # queries, arrival + period for updates); set by __post_init__.
    deadline: float = dataclasses.field(init=False, repr=False, compare=False, default=0.0)
    _priority_key: Tuple[int, float, int] = dataclasses.field(
        init=False, repr=False, compare=False, default=(0, 0.0, 0)
    )

    def __post_init__(self) -> None:
        if self.exec_time <= 0:
            raise ValueError(f"exec_time must be positive, got {self.exec_time!r}")
        self.remaining = self.exec_time

    @property
    def is_finished(self) -> bool:
        return self.state in (TransactionState.COMMITTED, TransactionState.ABORTED)

    def priority_key(self) -> Tuple[int, float, int]:
        """Total priority order: smaller tuple = higher priority."""
        return self._priority_key


@dataclasses.dataclass(slots=True)
class QueryTransaction(_TransactionBase):
    """A user query ``q_i``.

    Attributes:
        items: Ids of the data items the query reads (``D_i``).
        relative_deadline: ``qt_i`` — allowed running time from arrival;
            the deadline is firm (Section 2.1).
        freshness_req: ``qf_i`` — minimum acceptable query freshness.
        restarts: Times the query was restarted by a 2PL-HP abort.
    """

    is_update: ClassVar[bool] = False

    items: Tuple[int, ...] = ()
    relative_deadline: float = 0.0
    freshness_req: float = 0.9
    restarts: int = 0
    # Freshness observed when the (final) execution read its items;
    # set by the server at run start, consumed at commit.
    observed_freshness: Optional[float] = None
    # Optional per-user penalty profile (a repro.core.usm.PenaltyProfile;
    # typed loosely because the db layer sits below core).  None means
    # the policy's system-wide profile applies — the paper's base
    # assumption; Section 3.1 notes the multi-preference extension.
    profile: Optional[object] = None
    # Free-form user-class label for per-class reporting.
    user_class: str = "default"

    def __post_init__(self) -> None:
        # Explicit base-class call: zero-arg super() does not survive the
        # class rebuild dataclasses performs for slots=True.
        _TransactionBase.__post_init__(self)
        if not self.items:
            raise ValueError("a query must read at least one data item")
        if self.relative_deadline <= 0:
            raise ValueError("relative_deadline must be positive")
        if not 0.0 < self.freshness_req <= 1.0:
            raise ValueError("freshness_req must be in (0, 1]")
        self.deadline = self.arrival + self.relative_deadline
        self._priority_key = (QUERY_CLASS_RANK, self.deadline, self.txn_id)

    @property
    def cpu_utilization(self) -> float:
        """``qe_i / qt_i`` — the quantity Eq. 6 charges against tickets."""
        return self.exec_time / self.relative_deadline


@dataclasses.dataclass(slots=True)
class UpdateTransaction(_TransactionBase):
    """One executed refresh of a single data item.

    Attributes:
        item_id: The data item ``ud_j`` this update writes.
        seqno: Source sequence number of the freshest arrival this
            update installs; committing it makes the item reflect every
            arrival up to and including ``seqno``.
        period: The item's current (possibly modulated) period, used as
            the EDF horizon for updates.
        on_demand: True when issued by the ODU policy on behalf of a
            waiting query rather than by the periodic source.
    """

    is_update: ClassVar[bool] = True

    item_id: int = -1
    seqno: int = 0
    period: float = 1.0
    on_demand: bool = False

    def __post_init__(self) -> None:
        _TransactionBase.__post_init__(self)
        if self.item_id < 0:
            raise ValueError("item_id must be set")
        if self.period <= 0:
            raise ValueError("period must be positive")
        self.deadline = self.arrival + self.period
        self._priority_key = (UPDATE_CLASS_RANK, self.deadline, self.txn_id)


@dataclasses.dataclass(frozen=True, slots=True)
class QueryRecord:
    """Immutable post-mortem of a finished (or rejected) query."""

    txn_id: int
    arrival: float
    items: Tuple[int, ...]
    exec_time: float
    relative_deadline: float
    freshness_req: float
    outcome: Outcome
    finish_time: float
    freshness: Optional[float] = None
    restarts: int = 0
    profile: Optional[object] = None  # per-user PenaltyProfile, if any
    user_class: str = "default"

    @property
    def response_time(self) -> float:
        """Arrival-to-finish latency (finish = commit/abort/reject time)."""
        return self.finish_time - self.arrival
