"""Freshness metrics.

Section 2.2 classifies per-item freshness measures into *time-based*,
*lag-based*, and *divergence-based* families and adopts the lag-based
one (Eq. 1) because updates are periodic:

    ``Qu(d_j) = 1 / (1 + Udrop_j)``

Query freshness aggregates item freshness with a strict ``min`` over
the accessed set ``D_i``.  The two alternative families are provided
behind the same interface for the ablation experiments.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.db.items import DataItem


class FreshnessMetric:
    """Interface: map a data item (at a point in time) to ``(0, 1]``."""

    def item_freshness(self, item: DataItem, now: float) -> float:
        """Freshness of ``item`` at simulated time ``now``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable name for reports."""
        return type(self).__name__


class LagFreshness(FreshnessMetric):
    """The paper's metric (Eq. 1): ``1 / (1 + Udrop_j)``.

    With the default 90 % freshness requirement, a single pending
    update already fails a query (freshness 0.5 < 0.9) — which is what
    makes update placement, not just update volume, matter.
    """

    def item_freshness(self, item: DataItem, now: float) -> float:
        return 1.0 / (1.0 + item.udrop)

    def describe(self) -> str:
        return "lag (Eq. 1)"


class TimeFreshness(FreshnessMetric):
    """Time-based alternative: exponential decay in the age of the value.

    ``freshness = exp(-age / half_life * ln 2)`` where age is measured
    from the earliest *pending* (dropped) arrival — the stored value was
    perfectly fresh until a newer source value existed, so the decay
    clock starts at that arrival, not at the last applied update.
    Measuring from ``last_applied_time`` would make an item idle for a
    long stretch jump from 1.0 to near-zero the instant its next update
    arrives; anchoring at the pending arrival keeps freshness continuous
    (1.0 at the arrival instant, decaying thereafter).  An item with no
    pending update is perfectly fresh no matter how old — nothing newer
    exists.
    """

    def __init__(self, half_life: float) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life

    def item_freshness(self, item: DataItem, now: float) -> float:
        if item.udrop == 0:
            return 1.0
        since = item.first_pending_time
        if since is None:  # defensive: udrop > 0 implies a recorded drop
            since = item.last_arrival_time
        age = max(0.0, now - since)
        return math.exp(-age / self.half_life * math.log(2.0))

    def describe(self) -> str:
        return f"time (half-life {self.half_life:g}s)"


class DivergenceFreshness(FreshnessMetric):
    """Divergence-based alternative: value drift per unapplied update.

    Models the stored value diverging from the source by ``drift`` per
    pending arrival: ``freshness = max(0, 1 - drift * Udrop)``, floored
    at a tiny positive value so the range stays ``(0, 1]``.
    """

    _FLOOR = 1e-9

    def __init__(self, drift_per_update: float = 0.1) -> None:
        if drift_per_update <= 0:
            raise ValueError("drift_per_update must be positive")
        self.drift_per_update = drift_per_update

    def item_freshness(self, item: DataItem, now: float) -> float:
        return max(self._FLOOR, 1.0 - self.drift_per_update * item.udrop)

    def describe(self) -> str:
        return f"divergence (drift {self.drift_per_update:g}/update)"


def query_freshness(
    items: Iterable[DataItem],
    now: float,
    metric: FreshnessMetric,
) -> float:
    """Aggregate item freshness for a query: strict minimum (Eq. 1).

    Raises:
        ValueError: If ``items`` is empty — query freshness over no
            items is meaningless.
    """
    item_freshness = metric.item_freshness  # bind once; called per item
    freshest = None
    for item in items:
        value = item_freshness(item, now)
        if freshest is None or value < freshest:
            freshest = value
    if freshest is None:
        raise ValueError("query accesses no items")
    return freshest
