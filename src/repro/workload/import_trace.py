"""Import a real disk/access trace as the query workload.

The paper builds its query trace from the HP ``cello99a`` disk trace:
"We take the arrival time and response time of reads from the original
trace and map their accessed logical block number (lbn) into our data
set.  The disk location was partitioned into 1024 consecutive regions."

We cannot redistribute that trace, but a user who *has* it (or any
similar access log) can import it here and run the whole evaluation on
real data instead of the synthetic generator.  The importer accepts a
simple line-oriented text format::

    # comment lines and blank lines are ignored
    <arrival-time> <response-time> <location> [r|w]

with whitespace- or comma-separated fields:

* ``arrival-time`` — seconds (absolute or relative; the trace is
  re-based so the first read starts at 0);
* ``response-time`` — seconds, used as the query's execution-time
  estimate (the paper does the same);
* ``location`` — an integer block/object id, partitioned into
  ``n_items`` consecutive, equal-width regions over the observed range
  (the paper's 1024 regions);
* optional ``r``/``w`` flag — only reads become queries, exactly as in
  the paper; write records are returned separately so update execution
  times can be drawn from them (Section 4.1 draws update costs "in the
  range of the response time of writes").
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.workload.cello import ReadRecord


class TraceFormatError(ValueError):
    """A line of the trace file could not be parsed."""


@dataclasses.dataclass(frozen=True)
class ImportedTrace:
    """The result of parsing an access-trace file."""

    reads: List[ReadRecord]
    write_response_times: List[float]
    n_items: int
    horizon: float

    @property
    def read_count(self) -> int:
        return len(self.reads)


def _parse_line(line: str, lineno: int) -> Optional[Tuple[float, float, int, str]]:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    fields = stripped.replace(",", " ").split()
    if len(fields) not in (3, 4):
        raise TraceFormatError(
            f"line {lineno}: expected 3 or 4 fields, got {len(fields)}: {stripped!r}"
        )
    try:
        arrival = float(fields[0])
        response = float(fields[1])
        location = int(fields[2])
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: {exc}") from exc
    kind = fields[3].lower() if len(fields) == 4 else "r"
    if kind not in ("r", "w"):
        raise TraceFormatError(f"line {lineno}: op flag must be 'r' or 'w', got {kind!r}")
    if response <= 0:
        raise TraceFormatError(f"line {lineno}: response time must be positive")
    if location < 0:
        raise TraceFormatError(f"line {lineno}: location must be non-negative")
    return arrival, response, location, kind


def import_access_trace(
    source: Union[str, Path, Sequence[str]],
    n_items: int = 1024,
) -> ImportedTrace:
    """Parse a trace file (or pre-split lines) into read records.

    Locations are mapped onto ``n_items`` consecutive equal-width
    regions spanning the observed location range — the paper's
    partitioning of the disk address space.  Arrival times are re-based
    to start at zero and the records are sorted by arrival.

    Raises:
        TraceFormatError: On any malformed line, or if the trace
            contains no reads.
    """
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if isinstance(source, (str, Path)):
        lines: Sequence[str] = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source

    entries: List[Tuple[float, float, int, str]] = []
    for lineno, line in enumerate(lines, start=1):
        parsed = _parse_line(line, lineno)
        if parsed is not None:
            entries.append(parsed)

    reads = [e for e in entries if e[3] == "r"]
    writes = [e for e in entries if e[3] == "w"]
    if not reads:
        raise TraceFormatError("trace contains no read records")

    low = min(e[2] for e in entries)
    high = max(e[2] for e in entries)
    span = max(1, high - low + 1)

    def region_of(location: int) -> int:
        return min(n_items - 1, (location - low) * n_items // span)

    base = min(e[0] for e in reads)
    records = sorted(
        (
            ReadRecord(
                arrival=arrival - base,
                service_time=response,
                region=region_of(location),
            )
            for arrival, response, location, _ in reads
        ),
        key=lambda record: record.arrival,
    )
    horizon = records[-1].arrival if records else 0.0
    return ImportedTrace(
        reads=records,
        write_response_times=[response for _, response, _, _ in writes],
        n_items=n_items,
        horizon=horizon,
    )
