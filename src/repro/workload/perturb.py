"""Trace perturbation for fault scenarios.

Applies the *workload-shaping* injectors of a
:class:`repro.faults.scenario.FaultScenario` to already-generated
traces:

* flash crowds replicate (or thin) queries inside the window;
* hotspot shifts rotate query item ids from a point in time on;
* update storms / outages regenerate the affected items' in-window
  arrivals, which turns the periodic :class:`UpdateTrace` into an
  :class:`ExplicitUpdateTrace` carrying the event list verbatim.

All randomness is drawn from named ``fault-*`` substreams of the run's
:class:`~repro.sim.rng.RandomStreams`, disjoint from every base
workload stream — so perturbation is seed-reproducible and leaves the
base generation untouched.  The base traces are built first and then
perturbed (the update trace is correlated against the *base* access
histogram, so a flash crowd stresses the correlation structure instead
of regenerating it).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Tuple

from repro.sim.rng import RandomStreams
from repro.workload.queries import QuerySpec, QueryTrace
from repro.workload.updates import ItemUpdateSpec, UpdateTrace

if TYPE_CHECKING:  # pragma: no cover - layering: faults sits above workload
    from repro.faults.scenario import FaultScenario, FlashCrowd, UpdateStorm


@dataclasses.dataclass
class ExplicitUpdateTrace(UpdateTrace):
    """An update trace whose arrivals are an explicit event list.

    Window perturbations (storms, outages) break strict periodicity, so
    the per-item ``(count, period, phase)`` form can no longer express
    the stream.  The item specs are retained unchanged — they carry the
    *ideal* periods and execution times the server's item table is
    built from (a bursting source does not change an item's ideal
    refresh period) — while :meth:`arrival_events` returns the stored
    list.
    """

    events: List[Tuple[float, int]] = dataclasses.field(default_factory=list)

    def arrival_events(self) -> List[Tuple[float, int]]:
        return list(self.events)

    def total_updates(self) -> int:
        return len(self.events)

    def per_item_counts(self) -> List[int]:
        counts = [0] * len(self.items)
        for _, item_id in self.events:
            counts[item_id] += 1
        return counts

    def utilization(self) -> float:
        if self.horizon <= 0:
            return 0.0
        exec_by_item = [item.exec_time for item in self.items]
        demand = sum(exec_by_item[item_id] for _, item_id in self.events)
        return demand / self.horizon


def _apply_flash_crowd(
    queries: List[QuerySpec],
    crowd: "FlashCrowd",
    index: int,
    streams: RandomStreams,
    horizon: float,
) -> List[QuerySpec]:
    """Replicate (multiplier > 1) or thin (multiplier < 1) the queries
    arriving inside the crowd window."""
    rng = streams.stream(f"fault-flash-{index}")
    multiplier = crowd.multiplier
    out: List[QuerySpec] = []
    for query in queries:
        in_window = crowd.start <= query.arrival < crowd.end
        if not in_window:
            out.append(query)
            continue
        if multiplier >= 1.0:
            out.append(query)
            extra = multiplier - 1.0
            copies = int(extra)
            if rng.random() < extra - copies:
                copies += 1
            window_end = min(crowd.end, horizon)
            for _ in range(copies):
                arrival = rng.uniform(crowd.start, window_end)
                out.append(dataclasses.replace(query, arrival=arrival))
        else:
            if rng.random() < multiplier:
                out.append(query)
    return out


def perturb_query_trace(
    trace: QueryTrace,
    scenario: "FaultScenario",
    streams: RandomStreams,
) -> QueryTrace:
    """Apply flash crowds and hotspot shifts to a query trace.

    Returns a new trace (the input is never mutated) with queries
    re-sorted by arrival — the runner's lazy arrival feeder requires a
    time-ordered stream.  Ties keep the pre-sort order (Python's sort
    is stable), so the result is deterministic.
    """
    queries = list(trace.queries)
    for index, crowd in enumerate(scenario.flash_crowds):
        queries = _apply_flash_crowd(queries, crowd, index, streams, trace.horizon)
    for shift in scenario.hotspot_shifts:
        rotation = shift.rotation % trace.n_items
        if rotation == 0:
            continue
        n_items = trace.n_items
        queries = [
            dataclasses.replace(
                query,
                items=tuple((item + rotation) % n_items for item in query.items),
            )
            if query.arrival >= shift.at
            else query
            for query in queries
        ]
    queries.sort(key=lambda query: query.arrival)
    return QueryTrace(
        name=f"{trace.name}+{scenario.name}",
        horizon=trace.horizon,
        n_items=trace.n_items,
        queries=queries,
    )


def _storms_for_item(
    scenario: "FaultScenario", item_id: int
) -> List[Tuple[int, "UpdateStorm"]]:
    return [
        (index, storm)
        for index, storm in enumerate(scenario.update_storms)
        if storm.item_id is None or storm.item_id == item_id
    ]


def _perturb_item_events(
    item: ItemUpdateSpec,
    storms: List[Tuple[int, "UpdateStorm"]],
    streams: RandomStreams,
    horizon: float,
) -> List[float]:
    """One item's arrival times with every applicable storm applied.

    Base arrivals inside a storm window are removed; unless the storm
    is an outage, the window is refilled with arrivals at the overridden
    period, phase-jittered per item from the storm's named substream so
    items do not beat in lockstep.  Later storms see the output of
    earlier ones (declaration order matters and is part of the
    fingerprint).
    """
    times = list(item.arrival_times(horizon))
    for index, storm in storms:
        times = [t for t in times if not storm.start <= t < storm.end]
        if storm.is_outage:
            continue
        new_period = item.period * storm.period_factor
        window_end = min(storm.end, horizon)
        if new_period <= 0 or storm.start >= window_end:
            continue
        rng = streams.stream(f"fault-storm-{index}-item-{item.item_id}")
        t = storm.start + rng.uniform(0.0, new_period)
        while t < window_end:
            times.append(t)
            t += new_period
    times.sort()
    return times


def perturb_update_trace(
    trace: UpdateTrace,
    scenario: "FaultScenario",
    streams: RandomStreams,
) -> UpdateTrace:
    """Apply update storms / outages to an update trace.

    Returns the input unchanged when no storm is configured; otherwise
    an :class:`ExplicitUpdateTrace` with the same item specs and the
    perturbed event list.
    """
    if not scenario.update_storms:
        return trace
    events: List[Tuple[float, int]] = []
    for item in trace.items:
        storms = _storms_for_item(scenario, item.item_id)
        if storms:
            times = _perturb_item_events(item, storms, streams, trace.horizon)
        else:
            times = list(item.arrival_times(trace.horizon))
        events.extend((t, item.item_id) for t in times)
    events.sort()
    return ExplicitUpdateTrace(
        name=f"{trace.name}+{scenario.name}",
        horizon=trace.horizon,
        items=list(trace.items),
        target_utilization=trace.target_utilization,
        events=events,
    )
