"""Command-line workload generator.

Build the synthetic cello99a-like query trace and any of the nine
standard update traces, save them as a bundle, or print summaries of an
existing bundle:

    python -m repro.workload generate --scale small --seed 7 \
        --traces med-unif med-neg --out bundle.json
    python -m repro.workload inspect bundle.json
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import SCALES
from repro.experiments.report import ascii_table
from repro.obs.logging_setup import (
    add_verbosity_flags,
    configure_logging,
    verbosity_from_args,
)
from repro.sim.rng import RandomStreams
from repro.workload.cello import CelloConfig, generate_cello_trace
from repro.workload.correlation import pearson
from repro.workload.queries import build_query_trace
from repro.workload.traces import load_trace_bundle, save_trace_bundle
from repro.workload.updates import STANDARD_UPDATE_TRACES, build_update_trace


def _generate(args) -> int:
    scale = SCALES[args.scale]
    streams = RandomStreams(args.seed)
    cello = CelloConfig(
        horizon=scale.horizon,
        n_items=scale.n_items,
        query_utilization=scale.query_utilization,
        mean_service=scale.mean_query_service,
    )
    records = generate_cello_trace(cello, streams)
    query_trace = build_query_trace(
        records, n_items=scale.n_items, streams=streams, horizon=scale.horizon
    )
    update_traces = {}
    for name in args.traces:
        if name not in STANDARD_UPDATE_TRACES:
            print(f"unknown update trace {name!r}", file=sys.stderr)
            return 2
        update_traces[name] = build_update_trace(
            STANDARD_UPDATE_TRACES[name],
            query_trace.access_counts(),
            horizon=scale.horizon,
            streams=streams,
            mean_exec=scale.mean_update_exec,
        )
    save_trace_bundle(args.out, query_trace, update_traces)
    print(
        f"wrote {args.out}: {len(query_trace.queries)} queries, "
        f"{sum(t.total_updates() for t in update_traces.values())} updates "
        f"across {len(update_traces)} trace(s)"
    )
    return 0


def _inspect(args) -> int:
    query_trace, update_traces = load_trace_bundle(args.bundle)
    counts = query_trace.access_counts()
    print(
        f"query trace {query_trace.name!r}: {len(query_trace.queries)} queries, "
        f"{query_trace.n_items} items, horizon {query_trace.horizon:g}s, "
        f"utilization {query_trace.utilization():.1%}"
    )
    rows = []
    for name, trace in sorted(update_traces.items()):
        rows.append(
            [
                name,
                trace.total_updates(),
                f"{trace.utilization():.1%}",
                f"{pearson([float(c) for c in trace.per_item_counts()], [float(c) for c in counts]):+.3f}",
            ]
        )
    if rows:
        print(
            ascii_table(
                ["update trace", "updates", "utilization", "corr w/ queries"], rows
            )
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.workload")
    add_verbosity_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="build and save a trace bundle")
    gen.add_argument("--scale", choices=sorted(SCALES), default="small")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument(
        "--traces",
        nargs="+",
        default=["med-unif"],
        help="update traces to include (e.g. med-unif high-neg)",
    )
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_generate)

    ins = sub.add_parser("inspect", help="summarize a saved bundle")
    ins.add_argument("bundle")
    ins.set_defaults(func=_inspect)

    args = parser.parse_args(argv)
    configure_logging(verbosity_from_args(args))
    result: int = args.func(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
