"""The paper's nine update traces (Table 1) at configurable scale.

Table 1 defines three volumes — 6 144 / 30 000 / ~60 000 total updates,
stated as 15 % / 75 % / 150 % CPU utilization — crossed with three
spatial distributions: uniform, positively correlated, and negatively
correlated with the query access histogram (coefficient 0.8).  Updates
are strictly periodic per item ("we only have periodic updates, so the
temporal distribution is fixed"); per-item execution times are drawn
from a right-skewed distribution like the write response times of the
original disk trace.

At our simulation scale the *utilization targets* are the invariant: we
allocate per-item update counts proportional to the spatial weights and
scale the total so aggregate CPU demand hits the target fraction of the
horizon.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.sim.rng import RandomStreams
from repro.workload.correlation import correlated_weights
from repro.workload.distributions import lognormal_from_mean_cv


@dataclasses.dataclass(frozen=True)
class UpdateTraceSpec:
    """Identity of one of the standard update traces."""

    name: str  # e.g. "med-unif"
    volume: str  # "low" | "med" | "high"
    correlation: str  # "unif" | "pos" | "neg"
    utilization: float  # target CPU fraction
    paper_total_updates: int  # the count Table 1 reports at paper scale


VOLUME_UTILIZATION: Dict[str, float] = {"low": 0.15, "med": 0.75, "high": 1.50}

# Table 1's totals; the "high" figure is garbled in our source text and
# reconstructed as 60 000 (linear in utilization) — see DESIGN.md §3.
PAPER_TOTALS: Dict[str, int] = {"low": 6144, "med": 30000, "high": 60000}

CORRELATIONS: Dict[str, float] = {"unif": 0.0, "pos": 0.8, "neg": -0.8}

STANDARD_UPDATE_TRACES: Dict[str, UpdateTraceSpec] = {
    f"{volume}-{corr}": UpdateTraceSpec(
        name=f"{volume}-{corr}",
        volume=volume,
        correlation=corr,
        utilization=VOLUME_UTILIZATION[volume],
        paper_total_updates=PAPER_TOTALS[volume],
    )
    for volume in ("low", "med", "high")
    for corr in ("unif", "pos", "neg")
}


@dataclasses.dataclass(frozen=True)
class ItemUpdateSpec:
    """Per-item periodic update stream.

    ``count == 0`` models an item that receives no updates within the
    horizon; its period is set beyond the horizon so the item is always
    fresh.
    """

    item_id: int
    count: int
    period: float
    phase: float
    exec_time: float

    def arrival_times(self, horizon: float) -> Iterator[float]:
        """Strictly periodic arrivals ``phase + k * period`` within the horizon."""
        if self.count == 0:
            return
        time = self.phase
        emitted = 0
        while time <= horizon and emitted < self.count:
            yield time
            time += self.period
            emitted += 1


@dataclasses.dataclass
class UpdateTrace:
    """A full update workload: one periodic stream per item."""

    name: str
    horizon: float
    items: List[ItemUpdateSpec]
    target_utilization: float

    def total_updates(self) -> int:
        return sum(item.count for item in self.items)

    def utilization(self) -> float:
        """Actual CPU demand as a fraction of the horizon."""
        if self.horizon <= 0:
            return 0.0
        demand = sum(item.count * item.exec_time for item in self.items)
        return demand / self.horizon

    def per_item_counts(self) -> List[int]:
        return [item.count for item in self.items]

    def arrival_events(self) -> List[Tuple[float, int]]:
        """All ``(time, item_id)`` arrivals, sorted by time."""
        events: List[Tuple[float, int]] = []
        for item in self.items:
            events.extend((time, item.item_id) for time in item.arrival_times(self.horizon))
        events.sort()
        return events


def _largest_remainder_counts(weights: Sequence[float], total: int) -> List[int]:
    """Apportion ``total`` integer counts proportionally to ``weights``."""
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ValueError("weights must not all be zero")
    raw = [total * weight / weight_sum for weight in weights]
    counts = [int(value) for value in raw]
    remainder = total - sum(counts)
    by_frac = sorted(
        range(len(weights)), key=lambda i: raw[i] - counts[i], reverse=True
    )
    for index in by_frac[:remainder]:
        counts[index] += 1
    return counts


def build_update_trace(
    spec: UpdateTraceSpec,
    query_access_counts: Sequence[int],
    horizon: float,
    streams: RandomStreams,
    mean_exec: float = 0.03,
    exec_cv: float = 0.5,
) -> UpdateTrace:
    """Build an update trace hitting ``spec.utilization`` on ``horizon``.

    Args:
        spec: Which of the nine standard traces (or a custom spec).
        query_access_counts: Per-item query histogram, the correlation
            reference for the ``pos``/``neg`` spatial mixes.
        horizon: Simulation horizon in seconds.
        streams: Random streams (substreams ``update-<name>-*``).
        mean_exec: Mean per-update execution time (the stand-in for
            cello99a write response times).
        exec_cv: Coefficient of variation of execution times.
    """
    n_items = len(query_access_counts)
    if n_items == 0:
        raise ValueError("query_access_counts cannot be empty")

    weight_rng = streams.stream(f"update-{spec.name}-weights")
    exec_rng = streams.stream(f"update-{spec.name}-exec")
    phase_rng = streams.stream(f"update-{spec.name}-phase")

    if spec.correlation == "unif":
        weights: List[float] = [1.0] * n_items
    else:
        rho = CORRELATIONS[spec.correlation]
        weights = correlated_weights([float(c) for c in query_access_counts], rho, weight_rng)

    exec_times = [
        lognormal_from_mean_cv(mean_exec, exec_cv, exec_rng) for _ in range(n_items)
    ]

    # Scale total count so the aggregate CPU demand hits the target:
    # counts ∝ weights, and sum(count_j * exec_j) = utilization * horizon.
    demand_per_unit = sum(w * e for w, e in zip(weights, exec_times))
    if demand_per_unit <= 0:
        raise ValueError("degenerate weights/exec-times combination")
    scale = spec.utilization * horizon / demand_per_unit
    total = max(1, round(scale * sum(weights)))
    counts = _largest_remainder_counts(weights, total)

    items: List[ItemUpdateSpec] = []
    for item_id, (count, exec_time) in enumerate(zip(counts, exec_times)):
        if count > 0:
            period = horizon / count
            phase = phase_rng.uniform(0.0, period)
        else:
            period = 2.0 * horizon
            phase = horizon  # never fires
        items.append(
            ItemUpdateSpec(
                item_id=item_id,
                count=count,
                period=period,
                phase=phase,
                exec_time=exec_time,
            )
        )
    return UpdateTrace(
        name=spec.name,
        horizon=horizon,
        items=items,
        target_utilization=spec.utilization,
    )
