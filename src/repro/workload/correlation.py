"""Spatially correlated weight vectors.

Section 4.1 correlates each update trace's spatial distribution with
the query distribution at coefficient ±0.8.  We construct weight
vectors whose *sample* Pearson correlation with the reference histogram
is exactly the target (up to integer-rounding of counts downstream),
using the classic Gram–Schmidt construction: standardize the reference,
orthogonalize fresh Gaussian noise against it, and mix with weights
``(rho, sqrt(1 - rho^2))``.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Sample Pearson correlation coefficient.

    Returns 0.0 when either vector is constant (correlation undefined).
    """
    n = len(xs)
    if n != len(ys):
        raise ValueError("vectors must have equal length")
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _standardize(values: Sequence[float]) -> List[float]:
    n = len(values)
    mean = sum(values) / n
    centered = [value - mean for value in values]
    norm = math.sqrt(sum(value * value for value in centered))
    if norm == 0:
        raise ValueError("reference vector is constant; correlation is undefined")
    return [value / norm for value in centered]


def correlated_weights(
    reference: Sequence[float],
    rho: float,
    rng: random.Random,
) -> List[float]:
    """Non-negative weights with sample correlation ``rho`` to ``reference``.

    The construction: ``x = rho * z + sqrt(1 - rho^2) * e`` where ``z``
    is the standardized reference and ``e`` is unit Gaussian noise made
    exactly orthogonal to both ``z`` and the constant vector.  Because
    Pearson correlation is invariant under the positive affine shift we
    apply to make the weights non-negative, ``pearson(weights,
    reference) == rho`` to floating-point precision.

    Args:
        reference: The histogram to correlate against (e.g. per-item
            query access counts).  Must not be constant.
        rho: Target correlation in ``[-1, 1]``.
        rng: Source of the noise component.

    Returns:
        A list of non-negative weights (minimum 0), same length as
        ``reference``.
    """
    if not -1.0 <= rho <= 1.0:
        raise ValueError("rho must be in [-1, 1]")
    n = len(reference)
    if n < 3:
        raise ValueError("need at least 3 items to build a correlated vector")

    z = _standardize(reference)

    # Draw noise, center it, remove its projection on z, normalize.
    noise = [rng.gauss(0.0, 1.0) for _ in range(n)]
    mean_noise = sum(noise) / n
    noise = [value - mean_noise for value in noise]
    dot = sum(nv * zv for nv, zv in zip(noise, z))
    noise = [nv - dot * zv for nv, zv in zip(noise, z)]
    norm = math.sqrt(sum(value * value for value in noise))
    if norm == 0:  # astronomically unlikely; retry deterministically
        return correlated_weights(reference, rho, rng)
    noise = [value / norm for value in noise]

    mix = math.sqrt(max(0.0, 1.0 - rho * rho))
    x = [rho * zv + mix * nv for zv, nv in zip(z, noise)]

    # Positive affine shift: weight floor at zero.
    low = min(x)
    return [value - low for value in x]
