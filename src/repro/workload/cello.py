"""A synthetic ``cello99a``-like read trace.

The paper generates user queries from the HP ``cello99a`` disk trace
(3 848 104 seconds, 110 035 reads), consuming three fields per read —
arrival time, response time, and the logical block number mapped onto
1024 consecutive regions — plus the skewed region-access histogram
visible in its Fig. 3(a).

That trace is not redistributable, so this module synthesizes a trace
with the same consumed statistics:

* **arrivals** from a two-state Markov-modulated Poisson process
  (flash crowds — the overload scenario Section 1 motivates);
* **regions** drawn from a shuffled Zipf histogram over ``n_items``
  regions (heavy skew, hot set not at id 0);
* **service times** lognormal with configurable mean and coefficient
  of variation (right-skewed like disk response times).

Scale (horizon, rate) is configurable so unit tests run in milliseconds
while full experiment runs reach the paper's load regimes.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.sim.rng import RandomStreams
from repro.workload.distributions import (
    BurstyArrivalProcess,
    CumulativeSampler,
    lognormal_from_mean_cv,
    shuffled_zipf_weights,
)


@dataclasses.dataclass(frozen=True)
class ReadRecord:
    """One read from the (synthetic) disk trace."""

    arrival: float
    service_time: float
    region: int


@dataclasses.dataclass(frozen=True)
class CelloConfig:
    """Shape parameters of the synthetic trace.

    Attributes:
        horizon: Trace length in seconds.
        n_items: Number of logical regions (paper: 1024).
        query_utilization: Long-run fraction of the CPU the read
            service times demand; arrival rate is derived from it.
        mean_service: Mean read service time (seconds).
        service_cv: Coefficient of variation of service times.
        zipf_skew: Skew of the region-access histogram.
        burst_factor: Rate multiplier inside a flash crowd.
        normal_dwell: Mean seconds between flash crowds.
        burst_dwell: Mean flash-crowd duration in seconds.
    """

    horizon: float = 3000.0
    n_items: int = 1024
    query_utilization: float = 0.5
    mean_service: float = 0.05
    service_cv: float = 1.0
    zipf_skew: float = 0.9
    burst_factor: float = 4.0
    normal_dwell: float = 120.0
    burst_dwell: float = 20.0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.n_items <= 0:
            raise ValueError("n_items must be positive")
        if not 0 < self.query_utilization:
            raise ValueError("query_utilization must be positive")
        if self.mean_service <= 0:
            raise ValueError("mean_service must be positive")

    @property
    def mean_arrival_rate(self) -> float:
        """Average reads/second implied by the utilization target."""
        return self.query_utilization / self.mean_service


def generate_cello_trace(config: CelloConfig, streams: RandomStreams) -> List[ReadRecord]:
    """Generate the synthetic read trace.

    The MMPP's *long-run* rate is matched to
    :attr:`CelloConfig.mean_arrival_rate`, so the trace's average CPU
    demand hits the configured ``query_utilization`` while individual
    flash crowds push instantaneous load well above it.
    """
    arrivals_rng = streams.stream("cello-arrivals")
    region_rng = streams.stream("cello-regions")
    service_rng = streams.stream("cello-service")

    weights = shuffled_zipf_weights(config.n_items, config.zipf_skew, region_rng)
    sampler = CumulativeSampler(weights)

    # Solve for the base (normal-state) rate that yields the target
    # long-run mean given the burst modulation.
    weight_burst = config.burst_dwell / (config.burst_dwell + config.normal_dwell)
    modulation = 1.0 + (config.burst_factor - 1.0) * weight_burst
    base_rate = config.mean_arrival_rate / modulation

    process = BurstyArrivalProcess(
        base_rate=base_rate,
        burst_factor=config.burst_factor,
        normal_dwell=config.normal_dwell,
        burst_dwell=config.burst_dwell,
        rng=arrivals_rng,
    )

    records = [
        ReadRecord(
            arrival=arrival,
            service_time=lognormal_from_mean_cv(
                config.mean_service, config.service_cv, service_rng
            ),
            region=sampler.sample(region_rng),
        )
        for arrival in process.arrivals_until(config.horizon)
    ]
    return records


def access_histogram(records: List[ReadRecord], n_items: int) -> List[int]:
    """Reads per region — the paper's Fig. 3(a) data."""
    counts = [0] * n_items
    for record in records:
        counts[record.region] += 1
    return counts
