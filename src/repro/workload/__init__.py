"""Workload generation.

The paper drives its evaluation with (a) a user-query trace derived
from the HP ``cello99a`` disk trace and (b) nine synthetic update
traces — three volumes (15 %, 75 %, 150 % of CPU) times three spatial
distributions (uniform, positively correlated, negatively correlated
with the query access histogram, coefficient 0.8).

We cannot redistribute ``cello99a``; :mod:`repro.workload.cello`
synthesizes a trace with the same consumed statistics (bursty arrivals,
Zipf-skewed access over 1024 regions, long-tailed service times) at a
configurable scale.  See DESIGN.md Section 3 for the substitution
rationale.
"""

from repro.workload.cello import CelloConfig, ReadRecord, generate_cello_trace
from repro.workload.correlation import correlated_weights, pearson
from repro.workload.queries import QuerySpec, QueryTrace, build_query_trace
from repro.workload.traces import load_trace_bundle, save_trace_bundle
from repro.workload.updates import (
    STANDARD_UPDATE_TRACES,
    ItemUpdateSpec,
    UpdateTrace,
    UpdateTraceSpec,
    build_update_trace,
)

__all__ = [
    "CelloConfig",
    "ItemUpdateSpec",
    "QuerySpec",
    "QueryTrace",
    "ReadRecord",
    "STANDARD_UPDATE_TRACES",
    "UpdateTrace",
    "UpdateTraceSpec",
    "build_query_trace",
    "build_update_trace",
    "correlated_weights",
    "generate_cello_trace",
    "load_trace_bundle",
    "pearson",
    "save_trace_bundle",
]
