"""User-query traces.

Section 4.1: each generated query carries arrival time, accessed data,
estimated execution time (the trace's response time), a deadline drawn
"randomly … from the average response time to 10 times of the maximal
response time", and a 90 % freshness requirement.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.sim.rng import RandomStreams
from repro.workload.cello import ReadRecord


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """One user query of the workload (pre-simulation form)."""

    arrival: float
    items: Tuple[int, ...]
    exec_time: float
    relative_deadline: float
    freshness_req: float

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("a query must access at least one item")
        if self.exec_time <= 0:
            raise ValueError("exec_time must be positive")
        if self.relative_deadline <= 0:
            raise ValueError("relative_deadline must be positive")
        if not 0 < self.freshness_req <= 1:
            raise ValueError("freshness_req must be in (0, 1]")


@dataclasses.dataclass
class QueryTrace:
    """A full query workload plus its provenance metadata."""

    name: str
    horizon: float
    n_items: int
    queries: List[QuerySpec]

    def access_counts(self) -> List[int]:
        """Queries touching each item — Fig. 3(a)'s histogram."""
        counts = [0] * self.n_items
        for query in self.queries:
            for item_id in query.items:
                counts[item_id] += 1
        return counts

    def utilization(self) -> float:
        """CPU demand of the query workload as a fraction of the horizon."""
        if self.horizon <= 0:
            return 0.0
        return sum(query.exec_time for query in self.queries) / self.horizon

    def mean_exec_time(self) -> float:
        if not self.queries:
            return 0.0
        return sum(query.exec_time for query in self.queries) / len(self.queries)


def deadline_range(
    exec_times: Sequence[float],
    high_factor: float = 10.0,
    high_base: str = "max",
) -> Tuple[float, float]:
    """The paper's deadline interval: [mean response, 10 × max response].

    ``high_base`` selects what the upper bound multiplies: ``"max"`` is
    the paper's literal wording; ``"mean"`` gives the tight-deadline
    variant (latency-guarantee services like the stock-trading example
    of Section 1, where deadlines sit near the typical response time).
    """
    if not exec_times:
        raise ValueError("cannot derive deadlines from an empty trace")
    if high_factor <= 0:
        raise ValueError("high_factor must be positive")
    mean = sum(exec_times) / len(exec_times)
    if high_base == "max":
        high = high_factor * max(exec_times)
    elif high_base == "mean":
        high = high_factor * mean
    else:
        raise ValueError("high_base must be 'max' or 'mean'")
    return mean, max(high, mean * 1.001)


def build_query_trace(
    records: Sequence[ReadRecord],
    n_items: int,
    streams: RandomStreams,
    horizon: float,
    freshness_req: float = 0.9,
    items_per_query: int = 1,
    deadline_high_factor: float = 10.0,
    deadline_high_base: str = "max",
    name: str = "cello-like",
) -> QueryTrace:
    """Turn read records into a query trace.

    Args:
        records: Synthetic trace reads (arrival, service, region).
        n_items: Database size S.
        streams: Random streams (uses the ``query-deadlines`` and
            ``query-extra-items`` substreams).
        horizon: Trace horizon (for utilization accounting).
        freshness_req: ``qf_i`` for all queries (paper: 0.9).
        items_per_query: Number of distinct items each query reads; the
            trace region is always included, extras are drawn from the
            empirical region distribution (multi-item queries are an
            extension — the paper's mapping is one region per read).
        name: Trace label for reports.
    """
    if items_per_query < 1:
        raise ValueError("items_per_query must be >= 1")
    if not records:
        return QueryTrace(name=name, horizon=horizon, n_items=n_items, queries=[])

    deadline_rng = streams.stream("query-deadlines")
    extra_rng = streams.stream("query-extra-items")
    low, high = deadline_range(
        [record.service_time for record in records],
        high_factor=deadline_high_factor,
        high_base=deadline_high_base,
    )

    regions = [record.region for record in records]
    queries: List[QuerySpec] = []
    for record in records:
        items = [record.region]
        while len(items) < items_per_query:
            extra = regions[extra_rng.randrange(len(regions))]
            if extra not in items:
                items.append(extra)
        # Scale the service demand with the number of items read so
        # multi-item queries cost proportionally more CPU.
        exec_time = record.service_time * len(items)
        # The deadline is "the time duration the query is allowed to
        # run" (Section 2.1): clamp the draw so it at least covers the
        # query's own execution — the paper's loose global draw makes
        # infeasible-at-birth queries vanishingly rare, and a tight
        # draw should not manufacture them.
        deadline = max(deadline_rng.uniform(low, high), 1.1 * exec_time)
        queries.append(
            QuerySpec(
                arrival=record.arrival,
                items=tuple(items),
                exec_time=exec_time,
                relative_deadline=deadline,
                freshness_req=freshness_req,
            )
        )
    return QueryTrace(name=name, horizon=horizon, n_items=n_items, queries=queries)
