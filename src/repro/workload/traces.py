"""Trace (de)serialization and summaries.

Traces are stored as a single JSON document: metadata plus the query
specs and per-item update streams.  The format is versioned so bundles
written by older releases fail loudly instead of silently misparsing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.workload.queries import QuerySpec, QueryTrace
from repro.workload.updates import ItemUpdateSpec, UpdateTrace

FORMAT_VERSION = 1


def _query_trace_to_dict(trace: QueryTrace) -> Dict:
    return {
        "name": trace.name,
        "horizon": trace.horizon,
        "n_items": trace.n_items,
        "queries": [
            {
                "arrival": q.arrival,
                "items": list(q.items),
                "exec_time": q.exec_time,
                "relative_deadline": q.relative_deadline,
                "freshness_req": q.freshness_req,
            }
            for q in trace.queries
        ],
    }


def _query_trace_from_dict(data: Dict) -> QueryTrace:
    return QueryTrace(
        name=data["name"],
        horizon=data["horizon"],
        n_items=data["n_items"],
        queries=[
            QuerySpec(
                arrival=q["arrival"],
                items=tuple(q["items"]),
                exec_time=q["exec_time"],
                relative_deadline=q["relative_deadline"],
                freshness_req=q["freshness_req"],
            )
            for q in data["queries"]
        ],
    )


def _update_trace_to_dict(trace: UpdateTrace) -> Dict:
    return {
        "name": trace.name,
        "horizon": trace.horizon,
        "target_utilization": trace.target_utilization,
        "items": [
            {
                "item_id": item.item_id,
                "count": item.count,
                "period": item.period,
                "phase": item.phase,
                "exec_time": item.exec_time,
            }
            for item in trace.items
        ],
    }


def _update_trace_from_dict(data: Dict) -> UpdateTrace:
    return UpdateTrace(
        name=data["name"],
        horizon=data["horizon"],
        target_utilization=data["target_utilization"],
        items=[
            ItemUpdateSpec(
                item_id=item["item_id"],
                count=item["count"],
                period=item["period"],
                phase=item["phase"],
                exec_time=item["exec_time"],
            )
            for item in data["items"]
        ],
    )


def save_trace_bundle(
    path: Union[str, Path],
    query_trace: QueryTrace,
    update_traces: Dict[str, UpdateTrace],
) -> None:
    """Write a query trace and named update traces to a JSON file."""
    payload = {
        "format_version": FORMAT_VERSION,
        "query_trace": _query_trace_to_dict(query_trace),
        "update_traces": {
            name: _update_trace_to_dict(trace) for name, trace in update_traces.items()
        },
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_trace_bundle(path: Union[str, Path]) -> tuple:
    """Load a bundle written by :func:`save_trace_bundle`.

    Returns:
        ``(query_trace, update_traces_dict)``.

    Raises:
        ValueError: On a format-version mismatch.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"trace bundle format {version!r} not supported (expected {FORMAT_VERSION})"
        )
    query_trace = _query_trace_from_dict(payload["query_trace"])
    update_traces = {
        name: _update_trace_from_dict(data)
        for name, data in payload["update_traces"].items()
    }
    return query_trace, update_traces
