"""Content-addressed memoization of workload generation.

Every figure in the paper is a *paired* comparison: each policy and
penalty profile runs against the identical seeded workload, yet each
:func:`repro.experiments.runner.run_experiment` call regenerates the
cello arrival trace, the query trace, and the update trace from
scratch.  This module shares that work: traces are memoized under
``ExperimentConfig.workload_key()`` — a canonical hash of exactly the
workload-shaping fields plus the seed — in a small in-memory LRU with
an optional on-disk pickle store (conventionally
``benchmarks/out/.workload-cache/``) for cross-process reuse.

Sharing is safe on two axes:

* **Determinism** — workload generation draws only from named
  ``RandomStreams`` substreams that are disjoint from every policy
  stream (seeds are derived per stream name), so skipping regeneration
  perturbs nothing downstream; cached and uncached runs are
  byte-identical (see ``tests/test_workload_cache.py``).
* **Aliasing** — traces are immutable specification objects; the
  runner builds a fresh item table and fresh transaction objects per
  run and never writes into a trace.  Callers must uphold that: treat
  cached traces as frozen.

The on-disk store is enabled by pointing the ``REPRO_WORKLOAD_CACHE``
environment variable at a directory (``0``/``off``/``no``/empty
disable it).  Disk entries are written atomically (temp file +
``os.replace``), so concurrent workers racing on the same key simply
overwrite each other with identical bytes.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

if TYPE_CHECKING:  # import would be circular at runtime (runner -> workload)
    from repro.experiments.config import ExperimentConfig
    from repro.workload.queries import QueryTrace
    from repro.workload.updates import UpdateTrace

    Workload = Tuple[QueryTrace, UpdateTrace]
else:
    Workload = tuple

#: Environment variable naming the on-disk store directory.
CACHE_DIR_ENV = "REPRO_WORKLOAD_CACHE"

#: Values of :data:`CACHE_DIR_ENV` that mean "memory only".
_DISABLED_VALUES = frozenset({"", "0", "off", "no", "false"})

#: Version tag baked into disk filenames; bump on pickle-layout changes.
_DISK_FORMAT = "v1"


def disk_dir_from_env() -> Optional[Path]:
    """The on-disk store directory selected by the environment, if any."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip()
    if raw.lower() in _DISABLED_VALUES:
        return None
    return Path(raw)


def _generate(config: "ExperimentConfig") -> Workload:
    """Generate the workload for ``config`` from its own seed."""
    # Imported lazily: the experiments package sits above workload in
    # the layering and importing it at module load would be circular.
    from repro.experiments.runner import build_workload
    from repro.sim.rng import RandomStreams

    return build_workload(config, RandomStreams(config.seed))


class WorkloadCache:
    """An LRU of generated workloads with an optional disk tier.

    Attributes:
        max_entries: In-memory LRU capacity (a paper-scale trace pair is
            a few MB; the default keeps a full 3-trace grid plus room).
        disk_dir: Directory of the pickle store, or None for memory
            only.  When unset, each :meth:`get` consults
            :data:`CACHE_DIR_ENV` instead — so a worker process enables
            the disk tier by exporting the variable.
        hits / misses / disk_hits: Counters for reporting; ``hits``
            counts memory hits only.
    """

    def __init__(
        self,
        max_entries: int = 32,
        disk_dir: Optional[Path] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self._entries: "OrderedDict[str, Workload]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every in-memory entry and reset the hit/miss counters.

        The disk tier is untouched.  Counters restart so that
        statistics gathered after a ``clear()`` describe only the new
        population, not the evicted one.
        """
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def _resolve_disk_dir(self) -> Optional[Path]:
        if self.disk_dir is not None:
            return self.disk_dir
        return disk_dir_from_env()

    def _disk_path(self, key: str) -> Optional[Path]:
        base = self._resolve_disk_dir()
        if base is None:
            return None
        return base / f"{key}-{_DISK_FORMAT}.pkl"

    def _load_disk(self, key: str) -> Optional[Workload]:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            with path.open("rb") as handle:
                workload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None  # missing or stale/corrupt entry: regenerate
        if not (isinstance(workload, tuple) and len(workload) == 2):
            return None
        return workload

    def _store_disk(self, key: str, workload: Workload) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp-{os.getpid()}")
            with tmp.open("wb") as handle:
                pickle.dump(workload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            return  # the disk tier is best-effort; memory still holds it

    def _remember(self, key: str, workload: Workload) -> None:
        entries = self._entries
        entries[key] = workload
        entries.move_to_end(key)
        while len(entries) > self.max_entries:
            entries.popitem(last=False)

    def get(self, config: "ExperimentConfig") -> Workload:
        """The (query_trace, update_trace) pair for ``config``.

        Memory hit, then disk hit, then generate-and-store.  The traces
        returned for equal keys are the *same objects* — treat them as
        immutable.
        """
        key = config.workload_key()
        entries = self._entries
        found = entries.get(key)
        if found is not None:
            entries.move_to_end(key)
            self.hits += 1
            return found
        workload = self._load_disk(key)
        if workload is not None:
            self.disk_hits += 1
            self._remember(key, workload)
            return workload
        self.misses += 1
        workload = _generate(config)
        self._remember(key, workload)
        self._store_disk(key, workload)
        return workload

    def warm(self, configs: Iterable["ExperimentConfig"]) -> int:
        """Materialize every distinct workload among ``configs``.

        Returns the number of distinct keys touched.  Warming the
        default cache before forking worker processes lets the children
        inherit the generated traces for free.
        """
        seen = set()
        for config in configs:
            key = config.workload_key()
            if key in seen:
                continue
            seen.add(key)
            self.get(config)
        return len(seen)


_DEFAULT = WorkloadCache()


def default_cache() -> WorkloadCache:
    """The process-wide cache used by :func:`get_workload`."""
    return _DEFAULT


def get_workload(config: "ExperimentConfig") -> Workload:
    """Cached :func:`repro.experiments.runner.build_workload`."""
    return _DEFAULT.get(config)  # simlint: disable=SF003 -- per-process memoization keyed by content hash; values are regenerated deterministically from the config, so per-process copies are byte-identical (test_workload_cache cross-process test)
