"""Random-variate helpers used by the workload generators.

Everything takes an explicit :class:`random.Random` stream so traces
are reproducible from a master seed (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

import math
import random
from typing import List


def zipf_weights(n: int, skew: float) -> List[float]:
    """Normalized Zipf(``skew``) weights over ranks ``1..n``.

    ``skew = 0`` degenerates to uniform; larger skews concentrate mass
    on low ranks.  The cello trace's region-access histogram (paper
    Fig. 3(a)) is heavily skewed; we model it with skew around 0.9.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    raw = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def shuffled_zipf_weights(n: int, skew: float, rng: random.Random) -> List[float]:
    """Zipf weights assigned to item ids in random order.

    The disk-region mapping in the original trace does not put the
    hottest region at id 0; shuffling reproduces that while keeping the
    histogram shape.
    """
    weights = zipf_weights(n, skew)
    rng.shuffle(weights)
    return weights


def lognormal_from_mean_cv(mean: float, cv: float, rng: random.Random) -> float:
    """Draw a lognormal variate with the given mean and coefficient of
    variation (stdev/mean).

    Service times of disk reads/writes are right-skewed; lognormal with
    cv around 1 is the conventional stand-in.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if cv < 0:
        raise ValueError("cv must be non-negative")
    if cv == 0:
        return mean
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return rng.lognormvariate(mu, math.sqrt(sigma2))


def exponential(mean: float, rng: random.Random) -> float:
    """Exponential variate with the given mean."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    return rng.expovariate(1.0 / mean)


class BurstyArrivalProcess:
    """A two-state Markov-modulated Poisson process.

    Alternates between a *normal* state and a *flash-crowd* state; the
    flash state multiplies the arrival rate by ``burst_factor``.  Dwell
    times in each state are exponential.  This is the standard minimal
    model for web-server flash crowds, which Section 1 of the paper
    names as the reason peak-load shedding is needed.
    """

    def __init__(
        self,
        base_rate: float,
        burst_factor: float,
        normal_dwell: float,
        burst_dwell: float,
        rng: random.Random,
    ) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if normal_dwell <= 0 or burst_dwell <= 0:
            raise ValueError("dwell times must be positive")
        self.base_rate = base_rate
        self.burst_factor = burst_factor
        self.normal_dwell = normal_dwell
        self.burst_dwell = burst_dwell
        self._rng = rng
        self._in_burst = False
        self._state_ends_at = exponential(normal_dwell, rng)
        self._now = 0.0

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate of the process."""
        weight_burst = self.burst_dwell / (self.burst_dwell + self.normal_dwell)
        return self.base_rate * (1.0 + (self.burst_factor - 1.0) * weight_burst)

    def next_arrival(self) -> float:
        """Advance to, and return, the next arrival time."""
        while True:
            rate = self.base_rate * (self.burst_factor if self._in_burst else 1.0)
            gap = exponential(1.0 / rate, self._rng)
            if self._now + gap <= self._state_ends_at:
                self._now += gap
                return self._now
            # Cross into the next modulation state and re-draw (the
            # memoryless property makes discarding the partial gap sound).
            self._now = self._state_ends_at
            self._in_burst = not self._in_burst
            dwell = self.burst_dwell if self._in_burst else self.normal_dwell
            self._state_ends_at = self._now + exponential(dwell, self._rng)

    def arrivals_until(self, horizon: float) -> List[float]:
        """All arrival times in ``(now, horizon]``."""
        times: List[float] = []
        while True:
            arrival = self.next_arrival()
            if arrival > horizon:
                return times
            times.append(arrival)


def weighted_choice(weights: List[float], rng: random.Random) -> int:
    """Index drawn proportionally to ``weights`` (linear scan).

    For the hot path (trace generation over 1024 items) callers should
    precompute a cumulative table; this helper is for small cases.
    """
    total = sum(weights)
    target = rng.random() * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if target < acc:
            return index
    return len(weights) - 1


class CumulativeSampler:
    """O(log n) categorical sampling from a fixed weight vector."""

    def __init__(self, weights: List[float]) -> None:
        if not weights:
            raise ValueError("weights cannot be empty")
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        self._cum: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            self._cum.append(acc)
        if acc <= 0:
            raise ValueError("weights must not all be zero")
        self._total = acc

    def sample(self, rng: random.Random) -> int:
        """Draw one index with probability proportional to its weight."""
        import bisect

        target = rng.random() * self._total
        return bisect.bisect_right(self._cum, target)
