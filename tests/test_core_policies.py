"""Behavioural tests for the four policies on mini-simulations."""

import pytest

from repro.core.baselines import ImuPolicy, OduPolicy
from repro.core.qmf import QmfConfig, QmfPolicy
from repro.core.unit import UnitConfig, UnitPolicy
from repro.core.usm import PenaltyProfile
from repro.db.items import ItemTable
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def build(policy, n_items=4, period=5.0, update_exec=0.5):
    sim = Simulator()
    items = ItemTable.uniform(n_items, ideal_period=period, update_exec_time=update_exec)
    server = Server(sim, items, policy, ServerConfig())
    return sim, server


def feed_updates(sim, server, item_id, times):
    for t in times:
        sim.schedule(
            t,
            lambda i=item_id: server.source_update_arrival(i),
            priority=ARRIVAL_EVENT_PRIORITY,
        )


def feed_query(sim, server, arrival, exec_time=0.2, deadline=5.0, items=(0,)):
    txn = QueryTransaction(
        txn_id=server.next_txn_id(),
        arrival=arrival,
        exec_time=exec_time,
        items=tuple(items),
        relative_deadline=deadline,
    )
    sim.schedule(
        arrival, lambda: server.submit_query(txn), priority=ARRIVAL_EVENT_PRIORITY
    )
    return txn


class TestImu:
    def test_applies_every_update(self):
        sim, server = build(ImuPolicy())
        feed_updates(sim, server, 0, [1.0, 2.0, 3.0])
        sim.run()
        assert server.items[0].updates_executed == 3
        assert server.items[0].updates_dropped == 0

    def test_admits_everything(self):
        sim, server = build(ImuPolicy())
        txn = feed_query(sim, server, 1.0, exec_time=1.0, deadline=1.0)
        sim.run()
        # Admitted (not rejected) even though it can barely make it.
        record = server.records[0]
        assert record.outcome is not Outcome.REJECTED

    def test_perfect_freshness(self):
        sim, server = build(ImuPolicy())
        feed_updates(sim, server, 0, [0.5, 1.5])
        txn = feed_query(sim, server, 3.0)
        sim.run()
        record = next(r for r in server.records if r.txn_id == txn.txn_id)
        assert record.outcome is Outcome.SUCCESS
        assert record.freshness == 1.0


class TestOdu:
    def test_never_applies_periodic_updates(self):
        sim, server = build(OduPolicy())
        feed_updates(sim, server, 0, [1.0, 2.0])
        sim.run()
        assert server.items[0].updates_dropped == 2
        assert server.items[0].updates_executed == 0

    def test_refreshes_on_stale_read(self):
        policy = OduPolicy()
        sim, server = build(policy)
        feed_updates(sim, server, 0, [1.0])
        txn = feed_query(sim, server, 2.0)
        sim.run()
        record = next(r for r in server.records if r.txn_id == txn.txn_id)
        assert record.outcome is Outcome.SUCCESS
        assert record.freshness == 1.0
        assert policy.refreshes_spawned == 1
        assert server.items[0].updates_executed == 1

    def test_fresh_item_needs_no_refresh(self):
        policy = OduPolicy()
        sim, server = build(policy)
        txn = feed_query(sim, server, 2.0)
        sim.run()
        assert policy.refreshes_spawned == 0

    def _stale_item_with_two_readers(self, policy):
        """Drive the stale-at-read hook directly, with the refresh still
        pending between the two calls (no simulation run)."""
        sim, server = build(policy, update_exec=1.0)
        server.items[0].record_arrival(0.5)
        server.items[0].record_drop()

        def reader(txn_id):
            return QueryTransaction(
                txn_id=txn_id,
                arrival=2.0,
                exec_time=0.2,
                items=(0,),
                relative_deadline=10.0,
            )

        assert policy.on_query_stale_at_read(reader(100), server)
        assert policy.on_query_stale_at_read(reader(101), server)

    def test_dedup_attaches_second_reader_to_pending_refresh(self):
        policy = OduPolicy(dedup=True)
        self._stale_item_with_two_readers(policy)
        assert policy.refreshes_spawned == 1
        assert policy.refreshes_shared == 1

    def test_without_dedup_each_stale_reader_spawns_a_refresh(self):
        policy = OduPolicy(dedup=False)
        self._stale_item_with_two_readers(policy)
        assert policy.refreshes_spawned == 2
        assert policy.refreshes_shared == 0


class TestQmf:
    def test_flexible_set_ranked_by_access_update_ratio(self):
        policy = QmfPolicy(QmfConfig(control_period=1.0))
        sim, server = build(policy)
        # Item 0: hot updates, no accesses -> lowest ratio, first flexible.
        feed_updates(sim, server, 0, [0.1, 0.3, 0.7, 1.1, 1.3])
        feed_query(sim, server, 0.5, items=(1,))
        policy.flex_fraction = 0.25
        sim.run(until=2.0)
        policy._refresh_flexible_set()
        assert 0 in policy._flexible
        assert 1 not in policy._flexible

    def test_quota_rejection(self):
        policy = QmfPolicy(QmfConfig(initial_backlog_quota=0.1))
        sim, server = build(policy)
        feed_query(sim, server, 1.0, exec_time=0.5, deadline=50.0)
        feed_query(sim, server, 1.01, exec_time=0.5, deadline=50.0)
        sim.run(until=3.0)
        assert policy.rejections_quota >= 1

    def test_feasibility_rejection(self):
        policy = QmfPolicy()
        sim, server = build(policy)
        feed_query(sim, server, 1.0, exec_time=2.0, deadline=1.0)
        sim.run(until=3.0)
        assert policy.rejections_feasibility == 1
        assert server.outcome_counts[Outcome.REJECTED] == 1

    def test_database_freshness_metric(self):
        policy = QmfPolicy()
        sim, server = build(policy, n_items=4)
        policy.flex_fraction = 1.0
        sim.run(until=0.5)
        policy._refresh_flexible_set()
        feed_updates(sim, server, 0, [1.0])  # dropped: item 0 stale
        sim.run(until=2.0)
        assert policy._database_freshness() == pytest.approx(0.75)

    def test_qmf1_variant_serves_stale_flexible_items(self):
        """QMF-1 drops updates on flexible items without on-demand
        refresh: a query reading one takes the DSF."""
        policy = QmfPolicy(QmfConfig(on_demand_flexible=False))
        sim, server = build(policy)
        policy.flex_fraction = 1.0
        sim.run(until=0.1)
        policy._refresh_flexible_set()
        feed_updates(sim, server, 0, [0.5])  # dropped (flexible)
        txn = feed_query(sim, server, 2.0)
        sim.run(until=4.0)
        record = next(r for r in server.records if r.txn_id == txn.txn_id)
        assert record.outcome is Outcome.DATA_STALE
        assert server.items[0].updates_executed == 0

    def test_qmf2_variant_refreshes_flexible_items(self):
        policy = QmfPolicy(QmfConfig(on_demand_flexible=True))
        sim, server = build(policy)
        policy.flex_fraction = 1.0
        sim.run(until=0.1)
        policy._refresh_flexible_set()
        feed_updates(sim, server, 0, [0.5])
        txn = feed_query(sim, server, 2.0)
        sim.run(until=4.0)
        record = next(r for r in server.records if r.txn_id == txn.txn_id)
        assert record.outcome is Outcome.SUCCESS
        assert server.items[0].updates_executed == 1

    def test_controller_grows_quota_when_idle_and_fresh(self):
        policy = QmfPolicy(QmfConfig(control_period=1.0))
        sim, server = build(policy)
        before = policy.backlog_quota
        sim.run(until=3.5)  # idle CPU, everything fresh
        assert policy.backlog_quota > before
        assert policy.control_ticks >= 3

    def test_controller_shrinks_quota_under_miss_pressure(self):
        policy = QmfPolicy(QmfConfig(control_period=1.0, freshness_target=0.99))
        sim, server = build(policy, update_exec=0.4)
        # Saturate with updates (freshness stays below the 99% target,
        # so the overload branch sheds load via the quota).
        for k in range(30):
            feed_updates(sim, server, k % 4, [0.05 + 0.2 * k])
        for i in range(15):
            feed_query(sim, server, 0.3 * i, exec_time=0.1, deadline=0.3)
        before = policy.backlog_quota
        sim.run(until=8.0)
        assert policy.backlog_quota < before

    def test_controller_degrades_updates_when_overloaded_but_fresh(self):
        policy = QmfPolicy(
            QmfConfig(control_period=1.0, freshness_target=0.1, miss_ratio_target=0.01)
        )
        sim, server = build(policy, update_exec=0.4)
        for k in range(30):
            feed_updates(sim, server, k % 4, [0.05 + 0.2 * k])
        for i in range(15):
            feed_query(sim, server, 0.3 * i, exec_time=0.1, deadline=0.3)
        sim.run(until=8.0)
        # Freshness target is trivially met, so overload moves the
        # flexible-freshness fraction instead of the quota.
        assert policy.flex_fraction > 0.0


class TestUnit:
    def make_unit(self, **overrides):
        config = UnitConfig(
            profile=PenaltyProfile.naive(),
            control_period=0.5,
            modulation_warmup=0.0,
            **overrides,
        )
        streams = RandomStreams(5)
        return UnitPolicy(config, streams.stream("lottery"))

    def test_bind_wires_modules(self):
        policy = self.make_unit()
        sim, server = build(policy)
        assert policy.tickets is not None
        assert policy.admission is not None
        assert policy.lbc is not None
        assert len(policy.tickets) == len(server.items)

    def test_degrade_rounds_autoscale(self):
        policy = self.make_unit()
        sim, server = build(policy, n_items=4)
        assert policy._degrade_rounds == 16  # max(16, 4 // 2)

    def test_period_gating_drops_when_degraded(self):
        policy = self.make_unit()
        sim, server = build(policy, period=1.0)
        item = server.items[0]
        item.current_period = 2.0  # pretend UM degraded it
        feed_updates(sim, server, 0, [0.0, 1.0, 2.0, 3.0, 4.0])
        sim.run(until=4.5)
        # Arrivals at 0,1,2,3,4 with pc=2: applied at 0,2,4 -> 3 applied.
        assert item.updates_executed == 3
        assert item.updates_dropped == 2

    def test_all_arrivals_applied_at_ideal_period(self):
        policy = self.make_unit()
        sim, server = build(policy, period=1.0)
        feed_updates(sim, server, 0, [0.0, 1.0, 2.0, 3.0])
        sim.run(until=4.0)
        assert server.items[0].updates_dropped == 0

    def test_query_access_charges_tickets(self):
        policy = self.make_unit()
        sim, server = build(policy)
        feed_query(sim, server, 1.0, exec_time=0.2, deadline=2.0)
        sim.run(until=2.0)
        assert policy.tickets.ticket(0) < 0.0

    def test_control_loop_reacts_to_dmf_with_degrade_and_tac(self):
        policy = self.make_unit()
        sim, server = build(policy, period=0.2, update_exec=0.4)
        # Saturating update stream -> queries miss -> F_m dominates.
        for t in range(40):
            feed_updates(sim, server, t % 4, [t * 0.1])
        for i in range(20):
            feed_query(sim, server, 0.2 * i, exec_time=0.1, deadline=0.3)
        sim.run(until=6.0)
        from repro.core.controller import ControlSignal

        assert policy.signals_applied[ControlSignal.DEGRADE_UPDATES] > 0

    def test_rejections_recorded_through_admission(self):
        policy = self.make_unit()
        sim, server = build(policy)
        feed_query(sim, server, 1.0, exec_time=2.0, deadline=1.0)  # impossible
        sim.run(until=2.0)
        assert server.outcome_counts[Outcome.REJECTED] == 1
