"""``python -m repro.obs`` subcommands, driven in-process."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import trace_digest, write_trace_jsonl
from repro.obs.trace import TraceRecorder


@pytest.fixture()
def trace_file(tmp_path):
    rec = TraceRecorder()
    rec.query_admit(0.1, 1, 1.5, 2)
    rec.query_outcome(0.4, 1, "success", 0.1, 0.3, 0.9, 0)
    rec.control_window(1.0, {"S": 0.8}, 0.42, 20, ["LAC"], 1.25, 0.3, 2, -0.5)
    rec.control_window(2.0, {"S": 0.7}, 0.35, 18, [], 1.0, 0.4, 3, -0.5)
    path = tmp_path / "trace.jsonl"
    write_trace_jsonl(rec, path)
    return path


class TestSummary:
    def test_counts_and_span(self, trace_file, capsys):
        assert main(["summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "4 events" in out
        assert "query.admit" in out
        assert "control.window" in out
        assert "0.100s .. 2.000s" in out

    def test_bad_json_exits(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t": 1}\nnot json\n')
        with pytest.raises(SystemExit):
            main(["summary", str(bad)])


class TestFilter:
    def test_by_kind_to_stdout(self, trace_file, capsys):
        assert main(["filter", str(trace_file), "--kind", "control.window"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["kind"] == "control.window" for line in lines)

    def test_time_range_to_file(self, trace_file, tmp_path, capsys):
        out = tmp_path / "late.jsonl"
        assert (
            main(["filter", str(trace_file), "--since", "0.5", "--out", str(out)]) == 0
        )
        assert "wrote 2 of 4 events" in capsys.readouterr().out
        events = [json.loads(line) for line in out.read_text().splitlines()]
        assert all(e["t"] >= 0.5 for e in events)


class TestConvert:
    def test_chrome(self, trace_file, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(["chrome", str(trace_file), "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"M", "X", "C"} <= phases

    def test_controller(self, trace_file, tmp_path, capsys):
        out = tmp_path / "controller.csv"
        assert main(["controller", str(trace_file), "--out", str(out)]) == 0
        header, *rows = out.read_text().splitlines()
        assert header.startswith("t,")
        assert len(rows) == 2

    def test_digest_matches_library(self, trace_file, capsys):
        assert main(["digest", str(trace_file)]) == 0
        printed = capsys.readouterr().out.split()[0]
        events = [json.loads(line) for line in trace_file.read_text().splitlines()]
        assert printed == trace_digest(events)


class TestSmoke:
    def test_smoke_exports_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["smoke", "--scale", "smoke", "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "events recorded" in out
        suffixes = {p.name.rsplit(".", 2)[-2] + "." + p.suffix.lstrip(".")
                    for p in out_dir.iterdir()}
        assert {"trace.jsonl", "chrome.json", "controller.csv", "prom.txt"} <= suffixes
