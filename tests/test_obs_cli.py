"""``python -m repro.obs`` subcommands, driven in-process."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import trace_digest, write_trace_jsonl
from repro.obs.trace import TraceRecorder


@pytest.fixture()
def trace_file(tmp_path):
    rec = TraceRecorder()
    rec.query_admit(0.1, 1, 1.5, 2)
    rec.query_outcome(0.4, 1, "success", 0.1, 0.3, 0.9, 0)
    rec.control_window(1.0, {"S": 0.8}, 0.42, 20, ["LAC"], 1.25, 0.3, 2, -0.5)
    rec.control_window(2.0, {"S": 0.7}, 0.35, 18, [], 1.0, 0.4, 3, -0.5)
    path = tmp_path / "trace.jsonl"
    write_trace_jsonl(rec, path)
    return path


class TestSummary:
    def test_counts_and_span(self, trace_file, capsys):
        assert main(["summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "4 events" in out
        assert "query.admit" in out
        assert "control.window" in out
        assert "0.100s .. 2.000s" in out

    def test_bad_json_exits(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t": 1}\nnot json\n')
        with pytest.raises(SystemExit):
            main(["summary", str(bad)])


class TestFilter:
    def test_by_kind_to_stdout(self, trace_file, capsys):
        assert main(["filter", str(trace_file), "--kind", "control.window"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["kind"] == "control.window" for line in lines)

    def test_time_range_to_file(self, trace_file, tmp_path, capsys):
        out = tmp_path / "late.jsonl"
        assert (
            main(["filter", str(trace_file), "--since", "0.5", "--out", str(out)]) == 0
        )
        assert "wrote 2 of 4 events" in capsys.readouterr().out
        events = [json.loads(line) for line in out.read_text().splitlines()]
        assert all(e["t"] >= 0.5 for e in events)


class TestConvert:
    def test_chrome(self, trace_file, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(["chrome", str(trace_file), "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"M", "X", "C"} <= phases

    def test_controller(self, trace_file, tmp_path, capsys):
        out = tmp_path / "controller.csv"
        assert main(["controller", str(trace_file), "--out", str(out)]) == 0
        header, *rows = out.read_text().splitlines()
        assert header.startswith("t,")
        assert len(rows) == 2

    def test_digest_matches_library(self, trace_file, capsys):
        assert main(["digest", str(trace_file)]) == 0
        printed = capsys.readouterr().out.split()[0]
        events = [json.loads(line) for line in trace_file.read_text().splitlines()]
        assert printed == trace_digest(events)


@pytest.fixture()
def lifecycle_trace_file(tmp_path):
    """A trace with the sched events the span builder keys on."""
    rec = TraceRecorder()
    rec.query_admit(0.1, 1, 1.5, 2)
    rec.sched_enqueue(0.1, 1, "admit")
    rec.sched_dispatch(0.3, 1)
    rec.query_outcome(0.4, 1, "success", 0.1, 0.3, 0.9, 0)
    path = tmp_path / "lifecycle.jsonl"
    write_trace_jsonl(rec, path)
    return path


@pytest.fixture()
def truncated_trace_file(tmp_path):
    """A ring that wrapped: the JSONL carries a trace.meta header."""
    rec = TraceRecorder(capacity=2)
    rec.query_admit(0.1, 1, 1.5, 2)
    rec.sched_enqueue(0.1, 1, "admit")
    rec.sched_dispatch(0.3, 1)
    rec.query_outcome(0.4, 1, "success", 0.1, 0.3, 0.9, 0)
    path = tmp_path / "truncated.jsonl"
    write_trace_jsonl(rec, path)
    return path


class TestSpansCommand:
    def test_spans_to_stdout(self, lifecycle_trace_file, capsys):
        assert main(["spans", str(lifecycle_trace_file)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert json.loads(lines[0])["kind"] == "spans.meta"
        span = json.loads(lines[1])
        assert span["outcome"] == "success"
        assert [seg["state"] for seg in span["segments"]] == [
            "queued", "executing",
        ]

    def test_spans_to_file(self, lifecycle_trace_file, tmp_path, capsys):
        out = tmp_path / "spans.jsonl"
        assert main(["spans", str(lifecycle_trace_file), "--out", str(out)]) == 0
        assert "wrote 1 spans" in capsys.readouterr().out
        assert len(out.read_text().splitlines()) == 2

    def test_truncated_trace_warns_and_marks_partial(
        self, truncated_trace_file, capsys
    ):
        assert main(["spans", str(truncated_trace_file)]) == 0
        captured = capsys.readouterr()
        assert "truncated" in captured.err
        assert "PARTIAL" in captured.err
        header = json.loads(captured.out.splitlines()[0])
        assert header["partial"] is True
        assert header["dropped"] == 2

    def test_summary_warns_on_truncation(self, truncated_trace_file, capsys):
        assert main(["summary", str(truncated_trace_file)]) == 0
        captured = capsys.readouterr()
        assert "dropped 2 events" in captured.err
        assert "trace.meta" in captured.out

    def test_complete_trace_no_warning(self, lifecycle_trace_file, capsys):
        assert main(["summary", str(lifecycle_trace_file)]) == 0
        assert capsys.readouterr().err == ""


class TestAttribCommand:
    def test_tables_printed(self, lifecycle_trace_file, capsys):
        assert main(["attrib", str(lifecycle_trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Wait breakdown" in out
        assert "p99" in out
        assert "USM=" in out

    def test_json_report(self, lifecycle_trace_file, tmp_path, capsys):
        out = tmp_path / "attrib.json"
        assert (
            main(
                ["attrib", str(lifecycle_trace_file),
                 "--profile", "gt1-high-cr", "--json", str(out)]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["ledger"]["total"] == 1
        assert payload["spans_summary"]["spans"] == 1

    def test_unknown_profile_exits(self, lifecycle_trace_file):
        with pytest.raises(SystemExit):
            main(["attrib", str(lifecycle_trace_file), "--profile", "nope"])


class TestDashCommand:
    def test_static_export(self, tmp_path, capsys):
        out = tmp_path / "dash" / "index.html"
        assert (
            main(
                ["dash", "--scale", "smoke", "--policies", "unit",
                 "--traces", "low-unif", "--out", str(out)]
            )
            == 0
        )
        assert "wrote static dashboard" in capsys.readouterr().out
        html = out.read_text()
        assert "const LIVE = false" in html
        assert "low-unif" in html


class TestSmoke:
    def test_smoke_exports_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["smoke", "--scale", "smoke", "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "events recorded" in out
        suffixes = {p.name.rsplit(".", 2)[-2] + "." + p.suffix.lstrip(".")
                    for p in out_dir.iterdir()}
        assert {"trace.jsonl", "chrome.json", "controller.csv", "prom.txt"} <= suffixes
