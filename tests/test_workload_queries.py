"""Tests for the query-trace builder."""

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.cello import ReadRecord
from repro.workload.queries import QuerySpec, build_query_trace, deadline_range


def records(n=50, service=0.05):
    return [
        ReadRecord(arrival=float(i), service_time=service * (1 + i % 3), region=i % 8)
        for i in range(n)
    ]


class TestDeadlineRange:
    def test_paper_literal_range(self):
        low, high = deadline_range([0.1, 0.2, 0.3])
        assert low == pytest.approx(0.2)
        assert high == pytest.approx(3.0)  # 10 x max

    def test_mean_based_range(self):
        low, high = deadline_range([0.1, 0.2, 0.3], high_factor=5.0, high_base="mean")
        assert high == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            deadline_range([])
        with pytest.raises(ValueError):
            deadline_range([0.1], high_factor=0.0)
        with pytest.raises(ValueError):
            deadline_range([0.1], high_base="median")


class TestBuildQueryTrace:
    def build(self, **kwargs):
        return build_query_trace(
            records(),
            n_items=8,
            streams=RandomStreams(1),
            horizon=100.0,
            **kwargs,
        )

    def test_one_query_per_read(self):
        trace = self.build()
        assert len(trace.queries) == 50

    def test_deadlines_within_range_and_feasible(self):
        trace = self.build()
        low, high = deadline_range([r.service_time for r in records()])
        for query in trace.queries:
            assert query.relative_deadline >= min(low, 1.1 * query.exec_time) - 1e-12
            assert query.relative_deadline <= max(high, 1.1 * query.exec_time) + 1e-12
            # No born-dead queries: the deadline covers the execution.
            assert query.relative_deadline > query.exec_time

    def test_freshness_requirement_propagated(self):
        trace = self.build(freshness_req=0.75)
        assert all(q.freshness_req == 0.75 for q in trace.queries)

    def test_multi_item_queries(self):
        trace = self.build(items_per_query=3)
        for query in trace.queries:
            assert len(query.items) == 3
            assert len(set(query.items)) == 3  # distinct items

    def test_multi_item_scales_exec_time(self):
        single = self.build(items_per_query=1)
        triple = self.build(items_per_query=3)
        assert triple.queries[0].exec_time == pytest.approx(
            3 * single.queries[0].exec_time
        )

    def test_access_counts(self):
        trace = self.build()
        counts = trace.access_counts()
        assert sum(counts) == 50
        assert len(counts) == 8

    def test_utilization(self):
        trace = self.build()
        expected = sum(q.exec_time for q in trace.queries) / 100.0
        assert trace.utilization() == pytest.approx(expected)

    def test_empty_records(self):
        trace = build_query_trace([], n_items=8, streams=RandomStreams(1), horizon=10.0)
        assert trace.queries == []
        assert trace.utilization() == 0.0
        assert trace.mean_exec_time() == 0.0

    def test_invalid_items_per_query(self):
        with pytest.raises(ValueError):
            self.build(items_per_query=0)


class TestQuerySpecValidation:
    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            QuerySpec(arrival=0.0, items=(), exec_time=0.1, relative_deadline=1.0, freshness_req=0.9)
        with pytest.raises(ValueError):
            QuerySpec(arrival=0.0, items=(0,), exec_time=0.0, relative_deadline=1.0, freshness_req=0.9)
        with pytest.raises(ValueError):
            QuerySpec(arrival=0.0, items=(0,), exec_time=0.1, relative_deadline=0.0, freshness_req=0.9)
        with pytest.raises(ValueError):
            QuerySpec(arrival=0.0, items=(0,), exec_time=0.1, relative_deadline=1.0, freshness_req=1.5)
