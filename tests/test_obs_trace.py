"""Trace recorder: typed events, ring bounds, null path."""

import pytest

from repro.obs.trace import (
    ALL_KINDS,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceEvent,
    TraceRecorder,
)


class TestTraceEvent:
    def test_as_dict_flattens(self):
        event = TraceEvent(1.5, "query.admit", {"txn": 3, "deadline": 2.0})
        assert event.as_dict() == {
            "t": 1.5,
            "kind": "query.admit",
            "txn": 3,
            "deadline": 2.0,
        }

    def test_slots(self):
        event = TraceEvent(0.0, "update.drop", {})
        with pytest.raises(AttributeError):
            event.extra = 1


class TestNullRecorder:
    def test_disabled_and_empty(self):
        assert NullRecorder.enabled is False
        assert NULL_RECORDER.enabled is False
        assert len(NULL_RECORDER) == 0
        assert list(NULL_RECORDER.events()) == []

    def test_typed_hooks_are_noops(self):
        rec = NullRecorder()
        rec.query_admit(1.0, 1, 2.0, 1)
        rec.query_outcome(1.0, 1, "success", 0.5, 0.5, 1.0, 0)
        rec.lock_wait(1.0, 1, 2, False, [3])
        rec.control_window(1.0, {"S": 1.0}, 0.5, 10, ["LAC"], 1.0, 0.2, 0, 0.0)
        rec.fault_start(2.0, "flash-crowd-0", "flash-crowd", {"multiplier": 3.0})
        rec.fault_end(3.0, "flash-crowd-0", "flash-crowd")
        assert len(rec) == 0


class TestTraceRecorder:
    def test_enabled_class_attribute(self):
        assert TraceRecorder.enabled is True

    def test_typed_hooks_record_kinds(self):
        rec = TraceRecorder()
        rec.query_admit(0.1, 1, 1.0, 2)
        rec.query_outcome(0.3, 1, "success", 0.1, 0.2, 0.95, 0)
        rec.admission_decision(0.1, 1, True, "ok", 0.0, 0, 1.0)
        rec.sched_enqueue(0.1, 1, "admit")
        rec.sched_dispatch(0.15, 1)
        rec.sched_park(0.18, 1)
        rec.lock_wait(0.2, 2, 5, True, [1])
        rec.lock_grant(0.25, 2, 5)
        rec.lock_preempt(0.2, 2, 5, True, [1])
        rec.update_apply(0.4, 5, 7, False, 2.0)
        rec.update_drop(0.5, 5, 2.0)
        rec.modulation_change(0.6, 5, "degrade", 2.0, 2.2)
        rec.control_allocate(1.0, {"R": 0.1}, "R", ["LAC"], 0.4, 20)
        rec.control_window(1.0, {"S": 0.8}, 0.4, 20, ["LAC"], 1.1, 0.3, 2, -0.5)
        rec.fault_start(2.0, "server-slowdown-0", "server-slowdown", {"rate": 0.5})
        rec.fault_end(3.0, "server-slowdown-0", "server-slowdown")
        rec.fleet_route(0.05, 1, 0, "freshness", [0, 1], 0.9, False)
        rec.fleet_rebalance(4.0, 0, 1.1, 1.0, 1.1, "degrade")
        assert sorted(rec.counts) == sorted(ALL_KINDS)
        assert len(rec) == len(ALL_KINDS)
        # Events are retained in emit order.
        kinds = [event.kind for event in rec.events()]
        assert kinds[0] == "query.admit"
        assert kinds[-1] == "fleet.rebalance"

    def test_ring_evicts_oldest_and_counts_drops(self):
        rec = TraceRecorder(capacity=3)
        for i in range(5):
            rec.update_drop(float(i), i, 1.0)
        assert len(rec) == 3
        assert rec.dropped == 2
        # Oldest evicted: the retained events are the *tail* of the run.
        assert [event.fields["item"] for event in rec.events()] == [2, 3, 4]
        # counts cover everything recorded, not just what is retained.
        assert rec.counts["update.drop"] == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_summary(self):
        rec = TraceRecorder(capacity=2)
        rec.update_drop(0.0, 1, 1.0)
        rec.query_admit(0.1, 1, 1.0, 1)
        rec.update_drop(0.2, 2, 1.0)
        summary = rec.summary()
        assert summary["events"] == 2
        assert summary["recorded"] == 3
        assert summary["dropped"] == 1
        assert summary["by_kind"] == {"query.admit": 1, "update.drop": 2}

    def test_metrics_sink_sees_every_event(self):
        seen = []

        class Sink:
            def observe_event(self, event):
                seen.append(event.kind)

        rec = TraceRecorder(capacity=1, metrics=Sink())
        rec.update_drop(0.0, 1, 1.0)
        rec.update_drop(0.1, 2, 1.0)  # evicts the first from the ring
        assert seen == ["update.drop", "update.drop"]

    def test_base_recorder_emit_is_noop(self):
        # The Recorder base class is safe to use directly (emit discards).
        rec = Recorder()
        rec.query_admit(0.0, 1, 1.0, 1)
        assert rec.enabled is False
