"""Tests for the dual-priority EDF ready queue."""

import pytest
from hypothesis import given, strategies as st

from repro.db.ready_queue import ReadyQueue
from repro.db.transactions import QueryTransaction, UpdateTransaction


def query(txn_id, deadline, exec_time=0.1):
    return QueryTransaction(
        txn_id=txn_id,
        arrival=0.0,
        exec_time=exec_time,
        items=(0,),
        relative_deadline=deadline,
    )


def update(txn_id, period, exec_time=0.1):
    return UpdateTransaction(
        txn_id=txn_id, arrival=0.0, exec_time=exec_time, item_id=0, period=period
    )


def test_updates_pop_before_queries():
    rq = ReadyQueue()
    rq.push(query(1, deadline=0.01))  # most urgent query
    rq.push(update(2, period=1000.0))  # most relaxed update
    assert rq.pop().txn_id == 2


def test_edf_within_class():
    rq = ReadyQueue()
    rq.push(query(1, deadline=5.0))
    rq.push(query(2, deadline=1.0))
    rq.push(query(3, deadline=3.0))
    assert [rq.pop().txn_id for _ in range(3)] == [2, 3, 1]


def test_peek_does_not_remove():
    rq = ReadyQueue()
    rq.push(query(1, deadline=1.0))
    assert rq.peek().txn_id == 1
    assert len(rq) == 1


def test_pop_empty_returns_none():
    rq = ReadyQueue()
    assert rq.pop() is None
    assert rq.peek() is None


def test_duplicate_push_rejected():
    rq = ReadyQueue()
    q = query(1, deadline=1.0)
    rq.push(q)
    with pytest.raises(ValueError):
        rq.push(q)


def test_lazy_removal():
    rq = ReadyQueue()
    q1, q2 = query(1, deadline=1.0), query(2, deadline=2.0)
    rq.push(q1)
    rq.push(q2)
    rq.remove(q1)
    assert q1 not in rq
    assert rq.pop().txn_id == 2
    assert rq.pop() is None


def test_reinsertion_after_removal_allowed():
    rq = ReadyQueue()
    q = query(1, deadline=1.0)
    rq.push(q)
    rq.remove(q)
    rq.push(q)
    assert rq.pop().txn_id == 1


def test_backlog_accounting():
    rq = ReadyQueue()
    rq.push(update(1, period=1.0, exec_time=0.5))
    rq.push(update(2, period=2.0, exec_time=0.25))
    rq.push(query(3, deadline=1.0, exec_time=0.1))
    rq.push(query(4, deadline=5.0, exec_time=0.2))
    assert rq.update_backlog() == pytest.approx(0.75)
    assert rq.query_backlog_before(3.0) == pytest.approx(0.1)
    assert rq.query_backlog_before(100.0) == pytest.approx(0.3)


def test_compact_preserves_live_entries():
    rq = ReadyQueue()
    entries = [query(i, deadline=float(i)) for i in range(1, 8)]
    for entry in entries:
        rq.push(entry)
    for entry in entries[::2]:
        rq.remove(entry)
    rq.compact()
    popped = []
    while True:
        txn = rq.pop()
        if txn is None:
            break
        popped.append(txn.txn_id)
    assert popped == [2, 4, 6]


@given(
    st.lists(
        st.tuples(st.booleans(), st.floats(min_value=0.01, max_value=100)),
        min_size=1,
        max_size=40,
    )
)
def test_property_pop_order_is_priority_order(entries):
    rq = ReadyQueue()
    txns = []
    for index, (is_update, horizon) in enumerate(entries):
        if is_update:
            txn = update(index + 1, period=horizon)
        else:
            txn = query(index + 1, deadline=horizon)
        txns.append(txn)
        rq.push(txn)
    popped = []
    while True:
        txn = rq.pop()
        if txn is None:
            break
        popped.append(txn)
    assert len(popped) == len(txns)
    keys = [txn.priority_key() for txn in popped]
    assert keys == sorted(keys)


def test_repush_after_pop_counted_once():
    """A dispatched-then-preempted transaction re-enters under the same
    txn id; its old entry must not double-count in the backlogs."""
    rq = ReadyQueue()
    q = query(1, deadline=5.0, exec_time=0.25)
    rq.push(q)
    assert rq.pop() is q  # dispatched
    rq.push(q)  # preempted back into the queue
    assert len(rq.ready_queries()) == 1
    assert rq.query_backlog_before(float("inf")) == pytest.approx(0.25)
    probe = query(2, deadline=9.0)
    assert rq.query_backlog_ahead_of(probe) == pytest.approx(0.25)


def test_repush_after_remove_counted_once():
    """Same for abort-restart: remove then re-push must leave one entry."""
    rq = ReadyQueue()
    first = query(1, deadline=5.0, exec_time=0.25)
    later = query(2, deadline=7.0, exec_time=0.5)
    rq.push(first)
    rq.push(later)
    rq.remove(first)
    rq.push(first)
    assert len(rq.ready_queries()) == 2
    probe = query(3, deadline=9.0)
    assert rq.query_backlog_ahead_of(probe) == pytest.approx(0.75)


# ----------------------------------------------------------------------
# randomized oracle: incremental aggregates vs from-scratch recompute
# ----------------------------------------------------------------------

def _assert_matches_oracle(rq, live, probe):
    """Every backlog read must equal an exact from-scratch recompute.

    ``math.fsum`` is exactly rounded and the queue's fixed-point sums
    convert with one correct rounding, so both sides round the same
    true sum — the comparison is ``==``, not approx.
    """
    import math

    updates = sorted(
        (t for t in live.values() if t.is_update),
        key=lambda t: (t.deadline, t.txn_id),
    )
    queries = sorted(
        (t for t in live.values() if not t.is_update),
        key=lambda t: (t.deadline, t.txn_id),
    )
    assert len(rq) == len(live)
    assert [t.txn_id for t in rq.ready_updates()] == [t.txn_id for t in updates]
    assert [t.txn_id for t in rq.ready_queries()] == [t.txn_id for t in queries]
    assert rq.update_backlog() == math.fsum(t.remaining for t in updates)
    assert rq.query_backlog() == math.fsum(t.remaining for t in queries)

    key = (probe.deadline, probe.txn_id)
    ahead = [t for t in queries if (t.deadline, t.txn_id) < key]
    after = [t for t in queries if (t.deadline, t.txn_id) > key]
    assert rq.query_backlog_before(probe.deadline) == math.fsum(
        t.remaining for t in queries if t.deadline < probe.deadline
    )
    assert rq.query_backlog_ahead_of(probe) == math.fsum(
        t.remaining for t in ahead
    )
    assert rq.backlog_ahead_of(probe) == math.fsum(
        [t.remaining for t in updates] + [t.remaining for t in ahead]
    )
    assert [t.txn_id for t in rq.queries_after(probe)] == [
        t.txn_id for t in after
    ]


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6])
def test_incremental_backlogs_match_recompute_oracle(seed):
    """Replay a random push/remove/pop history; after every step each
    aggregate must equal the oracle recomputation over the live set."""
    import random

    rng = random.Random(seed)
    rq = ReadyQueue()
    live = {}
    gone = []  # removed or popped queries: un-queued probe material
    next_id = 1
    for _ in range(400):
        roll = rng.random()
        if roll < 0.55 or not live:
            exec_time = rng.uniform(0.001, 0.7)
            if rng.random() < 0.5:
                txn = query(next_id, deadline=rng.uniform(0.1, 8.0), exec_time=exec_time)
            else:
                txn = update(next_id, period=rng.uniform(0.1, 8.0), exec_time=exec_time)
            next_id += 1
            if rng.random() < 0.3:
                # A preempted/restarted transaction re-enters with its
                # remaining work below exec_time.
                txn.remaining = exec_time * rng.random()
            rq.push(txn)
            live[txn.txn_id] = txn
        elif roll < 0.8:
            victim = live.pop(rng.choice(sorted(live)))
            rq.remove(victim)
            if not victim.is_update:
                gone.append(victim)
        else:
            popped = rq.pop()
            assert popped is not None
            assert popped.txn_id == min(
                live,
                key=lambda i: (
                    not live[i].is_update,
                    live[i].deadline,
                    live[i].txn_id,
                ),
            )
            del live[popped.txn_id]
            if not popped.is_update:
                gone.append(popped)
        # Probe with a fresh (never-pushed) query and, when possible, a
        # queued one — both must see identical ordering semantics.
        _assert_matches_oracle(rq, live, query(next_id, deadline=rng.uniform(0.1, 8.0)))
        queued = [t for t in live.values() if not t.is_update]
        if queued:
            _assert_matches_oracle(rq, live, rng.choice(sorted(queued, key=lambda t: t.txn_id)))
            # Un-queued probe tying a queued entry's deadline exactly:
            # a not-yet-pushed query being sized up by the admission
            # controller.  Its backlog must count the tied entry when
            # the entry's txn_id sorts ahead and skip it otherwise —
            # and never count the probe itself.
            tied = rng.choice(sorted(queued, key=lambda t: t.txn_id))
            _assert_matches_oracle(
                rq, live, query(next_id + 1, deadline=tied.deadline)
            )
            _assert_matches_oracle(rq, live, query(0, deadline=tied.deadline))
        if gone:
            # A query that was queued earlier but has since been removed
            # or popped: probing with it must behave exactly like any
            # other un-queued probe (its stale key must not resurface).
            _assert_matches_oracle(rq, live, rng.choice(gone))
    assert next_id > 100  # the history actually exercised pushes
    assert gone  # the history actually exercised un-queued probes
