"""Tests for the 2PL-HP lock manager."""

from hypothesis import given, strategies as st

from repro.db.locks import LockManager, LockMode, LockStatus
from repro.db.transactions import QueryTransaction, UpdateTransaction


def query(txn_id, deadline=10.0):
    return QueryTransaction(
        txn_id=txn_id,
        arrival=0.0,
        exec_time=0.1,
        items=(0,),
        relative_deadline=deadline,
    )


def update(txn_id, item_id=0, period=1.0):
    return UpdateTransaction(
        txn_id=txn_id, arrival=0.0, exec_time=0.1, item_id=item_id, period=period
    )


class TestBasicGrants:
    def test_read_read_compatible(self):
        locks = LockManager()
        q1, q2 = query(1), query(2)
        assert locks.request(q1, 0, LockMode.READ).status is LockStatus.GRANTED
        assert locks.request(q2, 0, LockMode.READ).status is LockStatus.GRANTED
        assert locks.holds(q1, 0) and locks.holds(q2, 0)

    def test_reacquire_is_noop_grant(self):
        locks = LockManager()
        q = query(1)
        locks.request(q, 0, LockMode.READ)
        assert locks.request(q, 0, LockMode.READ).status is LockStatus.GRANTED

    def test_write_held_covers_read_request(self):
        locks = LockManager()
        u = update(1)
        locks.request(u, 0, LockMode.WRITE)
        assert locks.request(u, 0, LockMode.READ).status is LockStatus.GRANTED


class TestHighPriorityRule:
    def test_update_aborts_lower_priority_reader(self):
        """2PL-HP: the higher-priority writer names the reader as victim."""
        locks = LockManager()
        q = query(1)
        u = update(2)
        locks.request(q, 0, LockMode.READ)
        result = locks.request(u, 0, LockMode.WRITE)
        assert result.status is LockStatus.CONFLICT
        assert result.victims == (q,)

    def test_retry_after_victim_release_grants(self):
        locks = LockManager()
        q = query(1)
        u = update(2)
        locks.request(q, 0, LockMode.READ)
        locks.request(u, 0, LockMode.WRITE)  # conflict
        locks.release_all(q)  # server aborts the victim
        assert locks.request(u, 0, LockMode.WRITE).status is LockStatus.GRANTED

    def test_query_blocks_behind_higher_priority_writer(self):
        locks = LockManager()
        u = update(1)
        q = query(2)
        locks.request(u, 0, LockMode.WRITE)
        result = locks.request(q, 0, LockMode.READ)
        assert result.status is LockStatus.BLOCKED
        assert locks.is_waiting(q)
        assert locks.waited_item(q) == 0

    def test_update_blocks_behind_earlier_deadline_update(self):
        locks = LockManager()
        early = update(1, period=1.0)
        late = update(2, period=10.0)
        locks.request(early, 0, LockMode.WRITE)
        assert locks.request(late, 0, LockMode.WRITE).status is LockStatus.BLOCKED

    def test_no_barging_past_higher_priority_waiter(self):
        """A read must not sneak in front of a queued incompatible
        higher-priority write even when current holders are compatible."""
        locks = LockManager()
        holder = query(1, deadline=1.0)
        writer = update(2)
        late_reader = query(3, deadline=50.0)
        locks.request(holder, 0, LockMode.READ)
        # Writer conflicts with holder and... holder is lower priority, so
        # writer gets CONFLICT; make holder higher priority instead:
        locks2 = LockManager()
        hot_update = update(10, period=0.5)  # holds the write lock
        locks2.request(hot_update, 0, LockMode.WRITE)
        queued_update = update(11, period=1.0)
        assert locks2.request(queued_update, 0, LockMode.WRITE).status is LockStatus.BLOCKED
        reader = query(12)
        assert locks2.request(reader, 0, LockMode.READ).status is LockStatus.BLOCKED


class TestRelease:
    def test_release_grants_waiters_in_priority_order(self):
        locks = LockManager()
        holder = update(1, period=0.5)
        locks.request(holder, 0, LockMode.WRITE)
        w_late = update(3, period=10.0)
        w_early = update(2, period=1.0)
        locks.request(w_late, 0, LockMode.WRITE)
        locks.request(w_early, 0, LockMode.WRITE)
        granted = locks.release_all(holder)
        assert granted == [w_early]  # only the first compatible batch

    def test_release_grants_read_batch(self):
        locks = LockManager()
        holder = update(1, period=0.5)
        locks.request(holder, 0, LockMode.WRITE)
        r1, r2 = query(2), query(3)
        locks.request(r1, 0, LockMode.READ)
        locks.request(r2, 0, LockMode.READ)
        granted = locks.release_all(holder)
        assert set(t.txn_id for t in granted) == {2, 3}

    def test_cancel_wait_removes_from_queue(self):
        locks = LockManager()
        holder = update(1, period=0.5)
        waiter = query(2)
        locks.request(holder, 0, LockMode.WRITE)
        locks.request(waiter, 0, LockMode.READ)
        locks.cancel_wait(waiter)
        assert not locks.is_waiting(waiter)
        assert locks.release_all(holder) == []

    def test_release_all_clears_every_item(self):
        locks = LockManager()
        q = QueryTransaction(
            txn_id=1, arrival=0.0, exec_time=0.1, items=(0, 1, 2), relative_deadline=5.0
        )
        for item_id in (0, 1, 2):
            locks.request(q, item_id, LockMode.READ)
        assert locks.held_items(q) == {0, 1, 2}
        locks.release_all(q)
        assert locks.held_items(q) == set()


class TestIntrospection:
    def test_holders_and_waiters(self):
        locks = LockManager()
        holder = update(1, period=0.5)
        waiter = update(2, period=1.0)
        locks.request(holder, 0, LockMode.WRITE)
        locks.request(waiter, 0, LockMode.WRITE)
        assert locks.holders_of(0) == [(1, LockMode.WRITE)]
        assert locks.waiters_of(0) == [2]
        assert locks.holders_of(99) == []


@given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=20))
def test_property_wait_edges_point_to_higher_priority(periods):
    """2PL-HP invariant: every waiter is outranked by some holder or by
    an earlier-queued waiter — wait-for edges always point up the
    priority order, so no deadlock cycle can form."""
    locks = LockManager()
    txns = {i + 1: update(i + 1, period=float(p)) for i, p in enumerate(periods)}
    for txn in txns.values():
        while True:
            result = locks.request(txn, 0, LockMode.WRITE)
            if result.status is not LockStatus.CONFLICT:
                break
            for victim in result.victims:
                locks.release_all(victim)  # promotions tracked by the manager

    holder_keys = [txns[tid].priority_key() for tid, _ in locks.holders_of(0)]
    waiter_ids = locks.waiters_of(0)
    for position, waiter_id in enumerate(waiter_ids):
        waiter_key = txns[waiter_id].priority_key()
        outranked_by_holder = any(key < waiter_key for key in holder_keys)
        outranked_by_earlier_waiter = any(
            txns[other].priority_key() < waiter_key
            for other in waiter_ids[:position]
        )
        assert outranked_by_holder or outranked_by_earlier_waiter
