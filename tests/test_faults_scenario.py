"""Tests for the declarative fault-scenario schema."""

import dataclasses

import pytest

from repro.experiments.config import SCALES, ExperimentConfig
from repro.faults import (
    FaultScenario,
    FlashCrowd,
    HotspotShift,
    ServerSlowdown,
    UpdateStorm,
)
from repro.faults.scenarios import CANNED, canned


def combined():
    return FaultScenario(
        name="combined",
        flash_crowds=[FlashCrowd(start=30.0, end=50.0, multiplier=3.0)],
        update_storms=[UpdateStorm(start=40.0, end=60.0, period_factor=0.25)],
        hotspot_shifts=[HotspotShift(at=60.0, rotation=13)],
        slowdowns=[ServerSlowdown(start=45.0, end=70.0, rate=0.5)],
    )


class TestValidation:
    def test_windows_must_be_nonempty(self):
        with pytest.raises(ValueError):
            FlashCrowd(start=10.0, end=10.0, multiplier=2.0)
        with pytest.raises(ValueError):
            UpdateStorm(start=5.0, end=4.0, period_factor=0.5)
        with pytest.raises(ValueError):
            ServerSlowdown(start=1.0, end=0.5, rate=0.5)

    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            FlashCrowd(start=0.0, end=1.0, multiplier=-1.0)
        with pytest.raises(ValueError):
            UpdateStorm(start=0.0, end=1.0, period_factor=-0.1)
        with pytest.raises(ValueError):
            ServerSlowdown(start=0.0, end=1.0, rate=0.0)
        with pytest.raises(ValueError):
            HotspotShift(at=1.0, rotation=0)
        with pytest.raises(ValueError):
            FaultScenario(name="")

    def test_outage_is_a_zero_factor_storm(self):
        assert UpdateStorm(start=0.0, end=1.0, period_factor=0.0).is_outage
        assert not UpdateStorm(start=0.0, end=1.0, period_factor=0.5).is_outage


class TestCanonicalization:
    def test_int_and_float_construction_are_identical(self):
        a = FlashCrowd(start=30, end=50, multiplier=3)
        b = FlashCrowd(start=30.0, end=50.0, multiplier=3.0)
        assert a == b
        assert hash(a) == hash(b)
        sa = FaultScenario(name="s", flash_crowds=[a])
        sb = FaultScenario(name="s", flash_crowds=(b,))
        assert sa == sb
        assert sa.workload_fingerprint() == sb.workload_fingerprint()

    def test_scenario_is_hashable_with_list_inputs(self):
        scenario = FaultScenario(
            name="s", slowdowns=[ServerSlowdown(start=0.0, end=1.0, rate=0.5)]
        )
        assert isinstance(scenario.slowdowns, tuple)
        hash(scenario)  # must not raise


class TestFingerprint:
    def test_empty_and_slowdown_only_have_no_fingerprint(self):
        assert FaultScenario(name="none").workload_fingerprint() == ""
        slow = FaultScenario(
            name="slow", slowdowns=[ServerSlowdown(start=1.0, end=2.0, rate=0.5)]
        )
        assert slow.workload_fingerprint() == ""
        assert not slow.shapes_workload()
        assert not slow.is_empty

    def test_trace_shaping_injectors_fingerprint(self):
        scenario = combined()
        assert scenario.shapes_workload()
        fingerprint = scenario.workload_fingerprint()
        assert fingerprint
        # The slowdown is deliberately excluded: removing it must not
        # move the fingerprint.
        no_slow = dataclasses.replace(scenario, slowdowns=())
        assert no_slow.workload_fingerprint() == fingerprint
        # But any trace-shaping parameter moves it.
        moved = dataclasses.replace(
            scenario, flash_crowds=(FlashCrowd(start=30.0, end=50.0, multiplier=4.0),)
        )
        assert moved.workload_fingerprint() != fingerprint

    def test_workload_key_integration(self):
        base = ExperimentConfig(scale=SCALES["smoke"])
        faulted = ExperimentConfig(scale=SCALES["smoke"], faults=combined())
        slow_only = ExperimentConfig(
            scale=SCALES["smoke"],
            faults=FaultScenario(
                name="slow",
                slowdowns=[ServerSlowdown(start=1.0, end=2.0, rate=0.5)],
            ),
        )
        assert faulted.workload_key() != base.workload_key()
        # Slowdowns do not shape traces: same cache entry as the base.
        assert slow_only.workload_key() == base.workload_key()


class TestTimeline:
    def test_ordered_labeled_windows(self):
        windows = combined().timeline()
        assert [w.label for w in windows] == [
            "flash-crowd-0",
            "update-storm-0",
            "server-slowdown-0",
            "hotspot-shift-0",
        ]
        assert [w.start for w in windows] == [30.0, 40.0, 45.0, 60.0]
        shift = windows[-1]
        assert shift.start == shift.end  # instantaneous
        assert shift.params_dict() == {"at": 60.0, "rotation": 13.0}

    def test_outage_windows_are_labeled_as_outages(self):
        scenario = FaultScenario(
            name="s",
            update_storms=[UpdateStorm(start=0.0, end=1.0, period_factor=0.0)],
        )
        assert scenario.timeline()[0].kind == "update-outage"


class TestCanned:
    def test_registry_builds_for_every_scale(self):
        for name in CANNED:
            for preset in SCALES.values():
                scenario = canned(name, preset.horizon, preset.n_items)
                assert scenario.name == name
                assert not scenario.is_empty
                for window in scenario.timeline():
                    assert 0.0 <= window.start <= preset.horizon
                    assert window.end <= preset.horizon

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            canned("nope", 100.0, 64)
