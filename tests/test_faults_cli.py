"""Tests for ``python -m repro.faults`` and the degradation suite."""

import json

import pytest

from repro.experiments.config import SCALES
from repro.faults.cli import main as faults_main
from repro.faults.scenarios import canned
from repro.faults.suite import (
    render_suite,
    run_suite,
    suite_payload,
    write_suite_report,
)

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module")
def flash_results():
    """One small two-policy suite run, shared across tests."""
    scenario = canned("flash-crowd", SMOKE.horizon, SMOKE.n_items)
    return scenario, run_suite(scenario, scale="smoke", policies=("unit", "odu"))


class TestSuite:
    def test_per_policy_degradation_rows(self, flash_results):
        scenario, results = flash_results
        assert [r.policy for r in results] == ["unit", "odu"]
        for result in results:
            rows = result.window_rows()
            assert [row["label"] for row in rows] == ["flash-crowd-0"]
            assert rows[0]["dip_depth"] is not None

    def test_policies_share_the_workload(self, flash_results):
        _, results = flash_results
        keys = {r.report.config.workload_key() for r in results}
        assert len(keys) == 1  # paired comparison: identical traces

    def test_render_mentions_every_policy_and_chart(self, flash_results):
        scenario, results = flash_results
        text = render_suite(results, scenario)
        assert "unit" in text and "odu" in text
        assert "dip depth" in text
        assert "Worst USM dip depth" in text
        assert "Worst recovery time" in text

    def test_payload_is_json_serializable(self, flash_results):
        scenario, results = flash_results
        payload = suite_payload(results, scenario)
        text = json.dumps(payload)
        assert "flash-crowd" in text

    def test_write_report_artifacts(self, flash_results, tmp_path):
        scenario, results = flash_results
        paths = write_suite_report(results, scenario, str(tmp_path))
        assert all(path.exists() for path in paths)
        with open(paths[0], "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert [p["policy"] for p in payload["policies"]] == ["unit", "odu"]


class TestCli:
    def test_list(self, capsys):
        assert faults_main(["list"]) == 0
        text = capsys.readouterr().out
        assert "pile-up" in text
        assert "flash-crowd-0" in text

    def test_run_writes_degradation_json(self, tmp_path, capsys):
        out = tmp_path / "deg.json"
        rc = faults_main(
            ["run", "flash-crowd", "--policy", "odu", "--out", str(out)]
        )
        assert rc == 0
        assert "Degradation" in capsys.readouterr().out
        with open(out, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["scenario"] == "flash-crowd"
        assert payload["windows"][0]["label"] == "flash-crowd-0"

    def test_unknown_scenario_errors(self, tmp_path):
        with pytest.raises(ValueError):
            faults_main(["run", "does-not-exist"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            faults_main([])
