"""The repo permanently flow-lints itself (tier-1).

``src/repro`` must be simflow-clean (modulo the committed baseline,
which is empty); a seeded violation of each SF rule must fail loudly
with an actionable message; and the ``--flow`` CLI honors the exit-code,
JSON, SARIF, and baseline contracts.
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.flow import run_flow
from repro.lint.flow.baseline import Baseline, fingerprint

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", "--flow", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestSelfCheck:
    def test_src_repro_is_flow_clean(self):
        """The whole-program contract holds: literal stream names, no
        clock-domain crossings, pure pool payloads, no engine escapes."""
        violations, files_checked = run_flow([SRC_REPRO])
        rendered = "\n".join(v.render() for v in violations)
        assert not violations, f"simflow violations in src/repro:\n{rendered}"
        assert files_checked > 40  # the whole package was actually walked

    def test_cli_exits_zero_on_clean_tree(self):
        result = run_cli(str(SRC_REPRO))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no violations" in result.stdout
        assert "simflow" in result.stdout

    def test_committed_baseline_is_empty(self):
        """The ratchet starts (and should stay) at zero accepted findings."""
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert baseline.entries == []


def _seed(tmp_path, relpath, extra):
    tree = tmp_path / "repro"
    if not tree.exists():
        shutil.copytree(SRC_REPRO, tree)
    target = tree / relpath
    target.write_text(target.read_text(encoding="utf-8") + extra, encoding="utf-8")
    return tree


@pytest.fixture()
def sf002_tree(tmp_path):
    """src/repro with a wall-clock value scheduled as sim time."""
    return _seed(
        tmp_path,
        Path("experiments") / "runner.py",
        "\n\ndef _leak_wall_into_sim() -> None:\n"
        "    sim = Simulator()\n"
        "    sim.schedule(time.perf_counter(), lambda: None)\n",
    )


class TestSeededViolations:
    def test_sf001_unresolvable_stream_name(self, tmp_path):
        tree = _seed(
            tmp_path,
            Path("core") / "lottery.py",
            "\n\nfrom repro.sim.rng import RandomStreams\n"
            "\n\ndef _leak_derived_stream_name(streams: RandomStreams, k: int):\n"
            "    return streams.stream(str(k) + '-draws')\n",
        )
        result = run_cli(str(tree))
        assert result.returncode == 1
        assert "SF001" in result.stdout
        assert "lottery.py" in result.stdout
        assert "cannot be resolved" in result.stdout

    def test_sf001_cross_component_collision(self, tmp_path):
        tree = _seed(
            tmp_path,
            Path("core") / "lottery.py",
            "\n\nfrom repro.sim.rng import RandomStreams\n"
            "\n\ndef _claim_a(streams: RandomStreams):\n"
            "    return streams.stream('collision-fixture')\n",
        )
        _seed(
            tmp_path,
            Path("db") / "server.py",
            "\n\nfrom repro.sim.rng import RandomStreams\n"
            "\n\ndef _claim_b(streams: RandomStreams):\n"
            "    return streams.stream('collision-fixture')\n",
        )
        result = run_cli(str(tree))
        assert result.returncode == 1
        assert "SF001" in result.stdout
        assert "collision-fixture" in result.stdout

    def test_sf002_wall_clock_reaching_sim_time(self, sf002_tree):
        result = run_cli(str(sf002_tree))
        assert result.returncode == 1
        assert "SF002" in result.stdout
        assert "runner.py" in result.stdout
        assert "pure function of the seed" in result.stdout

    def test_sf003_lambda_shipped_to_pool(self, tmp_path):
        tree = _seed(
            tmp_path,
            Path("experiments") / "sweep.py",
            "\n\ndef _leak_lambda_to_pool(configs):\n"
            "    pool = _get_pool(2, '')\n"
            "    return pool.map(lambda c: c, configs)\n",
        )
        result = run_cli(str(tree))
        assert result.returncode == 1
        assert "SF003" in result.stdout
        assert "sweep.py" in result.stdout

    def test_sf004_event_mutation_outside_engine(self, tmp_path):
        tree = _seed(
            tmp_path,
            Path("core") / "lottery.py",
            "\n\ndef _leak_event_mutation(entry: 'Event') -> None:\n"
            "    entry.time = 0.0\n"
            "\n\nfrom repro.sim.events import Event\n",
        )
        result = run_cli(str(tree))
        assert result.returncode == 1
        assert "SF004" in result.stdout
        assert "lottery.py" in result.stdout

    def test_suppression_restores_clean_exit(self, sf002_tree):
        runner = sf002_tree / "experiments" / "runner.py"
        patched = runner.read_text(encoding="utf-8").replace(
            "sim.schedule(time.perf_counter(), lambda: None)",
            "sim.schedule(time.perf_counter(), lambda: None)"
            "  # simlint: disable=SF002 -- test fixture",
        )
        runner.write_text(patched, encoding="utf-8")
        assert run_cli(str(sf002_tree)).returncode == 0


class TestCliContract:
    def test_json_output_on_seeded_tree(self, sf002_tree):
        result = run_cli(str(sf002_tree), "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["ok"] is False
        assert payload["tool"] == "simflow"
        assert payload["counts_by_rule"].get("SF002", 0) >= 1
        violation = [v for v in payload["violations"] if v["rule"] == "SF002"][0]
        assert violation["path"].endswith("runner.py")
        assert violation["line"] > 0

    def test_sarif_output_contract(self, sf002_tree):
        result = run_cli(str(sf002_tree), "--format", "sarif")
        assert result.returncode == 1
        sarif = json.loads(result.stdout)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "simflow"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["SF001", "SF002", "SF003", "SF004"]
        results = run["results"]
        assert any(r["ruleId"] == "SF002" for r in results)
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith(".py")
        assert loc["region"]["startLine"] > 0

    def test_unknown_flow_rule_exits_2(self):
        result = run_cli(str(SRC_REPRO), "--select", "SF999")
        assert result.returncode == 2
        assert "SF999" in result.stderr

    def test_select_unrelated_rule_hides_seeded_finding(self, sf002_tree):
        result = run_cli(str(sf002_tree), "--select", "SF004")
        assert result.returncode == 0

    def test_unknown_suppression_id_warns(self, tmp_path):
        tree = _seed(
            tmp_path,
            Path("core") / "lottery.py",
            "\n\n_FIXTURE = 1  # simlint: disable=SF099 -- typo'd id\n",
        )
        result = run_cli(str(tree))
        assert "unknown rule 'SF099'" in result.stderr


class TestBaselineRatchet:
    def test_write_then_enforce_round_trip(self, sf002_tree, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        wrote = run_cli(str(sf002_tree), "--write-baseline", str(baseline_path))
        assert wrote.returncode == 0
        assert baseline_path.exists()

        # Same tree + baseline: the accepted finding no longer fails.
        clean = run_cli(str(sf002_tree), "--baseline", str(baseline_path))
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "baselined finding(s) hidden" in clean.stdout

        # A NEW finding still fails even with the baseline in place.
        _seed(
            tmp_path,
            Path("core") / "lottery.py",
            "\n\ndef _fresh_leak(entry: 'Event') -> None:\n"
            "    entry.time = 0.0\n"
            "\n\nfrom repro.sim.events import Event\n",
        )
        dirty = run_cli(str(sf002_tree), "--baseline", str(baseline_path))
        assert dirty.returncode == 1
        assert "SF004" in dirty.stdout
        assert "SF002" not in dirty.stdout  # still baselined

    def test_stale_entries_are_reported(self, sf002_tree, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        run_cli(str(sf002_tree), "--write-baseline", str(baseline_path))
        # Fix the finding: the baseline entry goes stale, exit stays 0.
        runner = sf002_tree / "experiments" / "runner.py"
        patched = runner.read_text(encoding="utf-8").replace(
            "sim.schedule(time.perf_counter(), lambda: None)", "pass"
        )
        runner.write_text(patched, encoding="utf-8")
        result = run_cli(str(sf002_tree), "--baseline", str(baseline_path))
        assert result.returncode == 0
        assert "stale baseline entry" in result.stderr

    def test_fingerprint_is_line_number_free(self, sf002_tree):
        violations, _ = run_flow([sf002_tree])
        (violation,) = [v for v in violations if v.rule_id == "SF002"]
        shifted = type(violation)(
            path=violation.path,
            line=violation.line + 40,
            col=violation.col,
            rule_id=violation.rule_id,
            message=violation.message,
        )
        assert fingerprint(shifted) == fingerprint(violation)

    def test_performance_budget(self):
        """ISSUE acceptance: a full self-run completes in < 15s."""
        import time as _time

        start = _time.perf_counter()
        run_flow([SRC_REPRO])
        assert _time.perf_counter() - start < 15.0
