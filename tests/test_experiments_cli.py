"""Tests for the command-line entry point and the sweep helper."""

import pytest

from repro.core.usm import PenaltyProfile
from repro.experiments.__main__ import main
from repro.experiments.config import SCALES
from repro.experiments.sweep import run_grid


class TestCli:
    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_table1_smoke_scale(self, capsys):
        assert main(["table1", "--scale", "smoke", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "high-neg" in out

    def test_fig6_smoke_scale(self, capsys):
        assert main(["fig6", "--scale", "smoke", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6(a)" in out and "Figure 6(b)" in out

    def test_run_dossier(self, capsys):
        assert main(
            ["run", "--policy", "odu", "--trace", "low-unif", "--scale", "smoke"]
        ) == 0
        out = capsys.readouterr().out
        assert "Outcomes" in out
        assert "Response times" in out
        assert "Timeline" in out
        assert "ODU" in out

    def test_run_dossier_elastic_policy(self, capsys):
        assert main(
            ["run", "--policy", "elastic", "--trace", "low-unif", "--scale", "smoke"]
        ) == 0
        assert "Elastic" in capsys.readouterr().out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "galactic"])


class TestSweep:
    def test_grid_keys_and_pairing(self):
        reports = run_grid(
            policies=("imu", "odu"),
            traces=("low-unif",),
            profiles=(PenaltyProfile.naive(),),
            scale=SCALES["smoke"],
            seed=5,
        )
        assert set(reports) == {
            ("imu", "low-unif", "naive"),
            ("odu", "low-unif", "naive"),
        }
        imu = reports[("imu", "low-unif", "naive")]
        odu = reports[("odu", "low-unif", "naive")]
        # Paired workloads: identical query stream.
        assert imu.queries_submitted == odu.queries_submitted

    def test_grid_progress_lines(self):
        import io

        from repro.obs.logging_setup import configure_logging

        stream = io.StringIO()
        configure_logging(verbosity=1, stream=stream)
        try:
            run_grid(
                policies=("imu",),
                traces=("low-unif",),
                profiles=(PenaltyProfile.naive(),),
                scale=SCALES["smoke"],
                seed=5,
                progress=True,
            )
        finally:
            configure_logging(verbosity=0)  # restore stderr/WARNING default
        assert "[sweep]" in stream.getvalue()
