"""Round-trip tests for trace (de)serialization."""

import json

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.cello import CelloConfig, generate_cello_trace
from repro.workload.queries import build_query_trace
from repro.workload.traces import load_trace_bundle, save_trace_bundle
from repro.workload.updates import STANDARD_UPDATE_TRACES, build_update_trace


@pytest.fixture()
def bundle():
    streams = RandomStreams(4)
    config = CelloConfig(horizon=200.0, n_items=16, query_utilization=0.4)
    records = generate_cello_trace(config, streams)
    query_trace = build_query_trace(records, 16, streams, horizon=200.0)
    update_trace = build_update_trace(
        STANDARD_UPDATE_TRACES["low-unif"],
        query_trace.access_counts(),
        horizon=200.0,
        streams=streams,
    )
    return query_trace, {"low-unif": update_trace}


def test_round_trip(tmp_path, bundle):
    query_trace, updates = bundle
    path = tmp_path / "bundle.json"
    save_trace_bundle(path, query_trace, updates)
    loaded_queries, loaded_updates = load_trace_bundle(path)

    assert loaded_queries.name == query_trace.name
    assert loaded_queries.n_items == query_trace.n_items
    assert loaded_queries.queries == query_trace.queries

    reloaded = loaded_updates["low-unif"]
    original = updates["low-unif"]
    assert reloaded.items == original.items
    assert reloaded.horizon == original.horizon
    assert reloaded.target_utilization == original.target_utilization


def test_version_mismatch_rejected(tmp_path, bundle):
    query_trace, updates = bundle
    path = tmp_path / "bundle.json"
    save_trace_bundle(path, query_trace, updates)
    payload = json.loads(path.read_text())
    payload["format_version"] = 999
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        load_trace_bundle(path)


def test_statistics_survive_round_trip(tmp_path, bundle):
    query_trace, updates = bundle
    path = tmp_path / "bundle.json"
    save_trace_bundle(path, query_trace, updates)
    loaded_queries, loaded_updates = load_trace_bundle(path)
    assert loaded_queries.access_counts() == query_trace.access_counts()
    assert loaded_updates["low-unif"].utilization() == pytest.approx(
        updates["low-unif"].utilization()
    )
