"""Tests for the beyond-the-paper extensions DESIGN.md Section 6 lists:
per-user penalty profiles, pluggable freshness metrics, and multi-item
queries driven end to end through the experiment runner.
"""

import pytest

from repro.core.admission import AdmissionController
from repro.core.usm import MixedUsmAccumulator, PenaltyProfile
from repro.db.items import ItemTable
from repro.db.policy_api import ServerPolicy
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction, TransactionState
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.engine import Simulator

PREMIUM = PenaltyProfile(c_r=0.2, c_fm=1.0, c_fs=1.0, name="premium")
FREE = PenaltyProfile(c_r=0.05, c_fm=0.1, c_fs=0.1, name="free")


class TestMixedUsmAccumulator:
    def test_per_class_accounting(self):
        acc = MixedUsmAccumulator(default_profile=PenaltyProfile.naive())
        acc.record(Outcome.SUCCESS, PREMIUM, "premium")
        acc.record(Outcome.DEADLINE_MISS, PREMIUM, "premium")
        acc.record(Outcome.SUCCESS, FREE, "free")
        acc.record(Outcome.REJECTED, FREE, "free")
        assert acc.total_queries == 4
        assert acc.class_average_usm("premium") == pytest.approx((1.0 - 1.0) / 2)
        assert acc.class_average_usm("free") == pytest.approx((1.0 - 0.05) / 2)
        assert acc.average_usm() == pytest.approx((0.0 + 0.95 * 2 / 2) / 2 / 1, abs=1.0)
        assert acc.classes() == ["free", "premium"]

    def test_total_is_sum_of_contributions(self):
        acc = MixedUsmAccumulator(default_profile=PenaltyProfile.naive())
        acc.record(Outcome.DATA_STALE, PREMIUM, "premium")
        acc.record(Outcome.DATA_STALE)  # default naive profile: 0 penalty
        assert acc.total_usm() == pytest.approx(-1.0)

    def test_class_ratios(self):
        acc = MixedUsmAccumulator(default_profile=PenaltyProfile.naive())
        acc.record(Outcome.SUCCESS, None, "a")
        acc.record(Outcome.REJECTED, None, "a")
        ratios = acc.class_ratios("a")
        assert ratios[Outcome.SUCCESS] == 0.5
        assert acc.class_ratios("missing")[Outcome.SUCCESS] == 0.0


class TestPerQueryProfileAdmission:
    class _Inert(ServerPolicy):
        def admit_query(self, query, server):
            return True

        def should_apply_update(self, item, server):
            return True

    def make_server(self):
        sim = Simulator()
        items = ItemTable.uniform(2, ideal_period=100.0, update_exec_time=0.5)
        return sim, Server(sim, items, self._Inert(), ServerConfig())

    def queue_endangered(self, server, profile=None):
        txn = QueryTransaction(
            txn_id=1,
            arrival=0.0,
            exec_time=0.5,
            items=(0,),
            relative_deadline=0.62,
            profile=profile,
        )
        txn.state = TransactionState.READY
        server.ready.push(txn)
        return txn

    def newcomer(self, profile):
        return QueryTransaction(
            txn_id=9,
            arrival=0.0,
            exec_time=0.3,
            items=(0,),
            relative_deadline=0.45,
            profile=profile,
        )

    def test_high_rejection_cost_user_gets_admitted(self):
        """A premium user's high C_r outweighs the endangered query's
        cheap C_fm: admit."""
        _, server = self.make_server()
        ac = AdmissionController(FREE, c_flex=0.01)
        self.queue_endangered(server, profile=FREE)
        decision = ac.decide(self.newcomer(PREMIUM), server)
        assert decision.admitted

    def test_cheap_user_rejected_when_endangering_premium(self):
        """A free user endangering a premium query is turned away."""
        _, server = self.make_server()
        ac = AdmissionController(FREE, c_flex=0.01)
        self.queue_endangered(server, profile=PREMIUM)
        decision = ac.decide(self.newcomer(FREE), server)
        assert not decision.admitted
        assert decision.reason == "usm-check"

    def test_record_carries_profile_and_class(self):
        sim, server = self.make_server()
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=0.0,
            exec_time=0.1,
            items=(0,),
            relative_deadline=1.0,
            profile=PREMIUM,
            user_class="premium",
        )
        sim.schedule(0.0, lambda: server.submit_query(txn), priority=ARRIVAL_EVENT_PRIORITY)
        sim.run()
        record = server.records[0]
        assert record.profile is PREMIUM
        assert record.user_class == "premium"


class TestFreshnessMetricPlumbing:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(freshness_metric="vibes")

    def test_build_metrics(self):
        assert "lag" in ExperimentConfig().build_freshness_metric().describe()
        time_metric = ExperimentConfig(
            freshness_metric="time", freshness_half_life=5.0
        ).build_freshness_metric()
        assert "half-life 5" in time_metric.describe()
        div = ExperimentConfig(freshness_metric="divergence").build_freshness_metric()
        assert "divergence" in div.describe()

    def test_divergence_metric_end_to_end(self):
        """With a tolerant divergence metric, UNIT's drops cause fewer
        DSFs than under the strict lag metric."""
        lag = run_experiment(
            ExperimentConfig(
                policy="unit", update_trace="med-unif", seed=5, scale=SCALES["smoke"]
            )
        )
        tolerant = run_experiment(
            ExperimentConfig(
                policy="unit",
                update_trace="med-unif",
                seed=5,
                scale=SCALES["smoke"],
                freshness_metric="divergence",
                freshness_drift=0.02,  # 5 pending drops still ~fresh
            )
        )
        assert (
            tolerant.outcome_counts[Outcome.DATA_STALE]
            <= lag.outcome_counts[Outcome.DATA_STALE]
        )


class TestMultiItemEndToEnd:
    def test_runner_with_three_item_queries(self):
        report = run_experiment(
            ExperimentConfig(
                policy="unit",
                update_trace="low-unif",
                seed=5,
                scale=SCALES["smoke"],
                items_per_query=3,
            )
        )
        assert report.queries_submitted > 0
        assert sum(report.outcome_counts.values()) == report.queries_submitted
        # Three items per query -> access counts triple the query count.
        assert sum(report.query_access_counts) == 3 * report.queries_submitted
