"""Tests for the User Satisfaction Metric (paper Eqs. 2-5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.usm import (
    TABLE2_PROFILES,
    PenaltyProfile,
    UsmAccumulator,
    UsmWindow,
)
from repro.db.transactions import Outcome

OUTCOMES = list(Outcome)


class TestPenaltyProfile:
    def test_contributions_follow_eq3(self):
        profile = PenaltyProfile(c_r=0.5, c_fm=0.2, c_fs=0.1, gain=1.0)
        assert profile.contribution(Outcome.SUCCESS) == 1.0
        assert profile.contribution(Outcome.REJECTED) == -0.5
        assert profile.contribution(Outcome.DEADLINE_MISS) == -0.2
        assert profile.contribution(Outcome.DATA_STALE) == -0.1

    def test_usm_range(self):
        profile = PenaltyProfile(c_r=0.5, c_fm=2.0, c_fs=0.1)
        assert profile.usm_min == -2.0
        assert profile.usm_max == 1.0
        assert profile.usm_range == 3.0

    def test_naive_profile(self):
        naive = PenaltyProfile.naive()
        assert naive.is_naive
        assert naive.usm_min == 0.0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            PenaltyProfile(c_r=-1.0)

    def test_table2_has_six_settings(self):
        assert len(TABLE2_PROFILES) == 6
        lt1 = [p for k, p in TABLE2_PROFILES.items() if k.startswith("lt1")]
        gt1 = [p for k, p in TABLE2_PROFILES.items() if k.startswith("gt1")]
        assert all(max(p.c_r, p.c_fm, p.c_fs) < 1 for p in lt1)
        assert all(max(p.c_r, p.c_fm, p.c_fs) > 1 for p in gt1)

    def test_table2_dominant_weights(self):
        assert TABLE2_PROFILES["lt1-high-cr"].c_r > TABLE2_PROFILES["lt1-high-cr"].c_fm
        assert (
            TABLE2_PROFILES["gt1-high-cfs"].c_fs
            > TABLE2_PROFILES["gt1-high-cfs"].c_r
        )


class TestUsmAccumulator:
    def test_naive_usm_equals_success_ratio(self):
        acc = UsmAccumulator(PenaltyProfile.naive())
        for _ in range(3):
            acc.record(Outcome.SUCCESS)
        acc.record(Outcome.REJECTED)
        acc.record(Outcome.DEADLINE_MISS)
        assert acc.average_usm() == pytest.approx(0.6)

    def test_eq5_decomposition(self):
        profile = PenaltyProfile(c_r=0.5, c_fm=0.2, c_fs=0.1)
        acc = UsmAccumulator(profile)
        acc.record(Outcome.SUCCESS)
        acc.record(Outcome.REJECTED)
        acc.record(Outcome.DEADLINE_MISS)
        acc.record(Outcome.DATA_STALE)
        parts = acc.components()
        assert acc.average_usm() == pytest.approx(
            parts["S"] - parts["R"] - parts["F_m"] - parts["F_s"]
        )

    def test_empty_accumulator(self):
        acc = UsmAccumulator(PenaltyProfile.naive())
        assert acc.average_usm() == 0.0
        assert acc.total_usm() == 0.0

    def test_from_counts(self):
        profile = PenaltyProfile(c_r=1.0, c_fm=1.0, c_fs=1.0)
        acc = UsmAccumulator.from_counts(
            profile, {Outcome.SUCCESS: 4, Outcome.REJECTED: 1}
        )
        assert acc.total_queries == 5
        assert acc.average_usm() == pytest.approx((4 - 1) / 5)

    @given(
        st.lists(st.sampled_from(OUTCOMES), min_size=1, max_size=100),
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=10),
    )
    def test_property_average_usm_within_bounds(self, outcomes, c_r, c_fm, c_fs):
        profile = PenaltyProfile(c_r=c_r, c_fm=c_fm, c_fs=c_fs)
        acc = UsmAccumulator(profile)
        for outcome in outcomes:
            acc.record(outcome)
        usm = acc.average_usm()
        assert profile.usm_min - 1e-9 <= usm <= profile.usm_max + 1e-9

    @given(st.lists(st.sampled_from(OUTCOMES), min_size=1, max_size=100))
    def test_property_total_equals_sum_of_contributions(self, outcomes):
        """Eq. 4 (grouped sums) must equal Eq. 2 (per-query sum)."""
        profile = PenaltyProfile(c_r=0.3, c_fm=0.7, c_fs=1.3)
        acc = UsmAccumulator(profile)
        expected = 0.0
        for outcome in outcomes:
            acc.record(outcome)
            expected += profile.contribution(outcome)
        assert acc.total_usm() == pytest.approx(expected)

    def test_ratios_sum_to_one(self):
        acc = UsmAccumulator(PenaltyProfile.naive())
        for outcome in OUTCOMES:
            acc.record(outcome)
        assert sum(acc.ratios().values()) == pytest.approx(1.0)


class TestUsmWindow:
    def test_windowed_average(self):
        window = UsmWindow(PenaltyProfile(c_r=1.0, c_fm=1.0, c_fs=1.0), window=10.0)
        window.record(0.0, Outcome.REJECTED)  # will age out
        window.record(11.0, Outcome.SUCCESS)
        window.record(12.0, Outcome.SUCCESS)
        assert window.average_usm(20.0) == pytest.approx(1.0)

    def test_empty_window_returns_none(self):
        window = UsmWindow(PenaltyProfile.naive(), window=10.0)
        assert window.average_usm(100.0) is None

    def test_cost_components(self):
        profile = PenaltyProfile(c_r=0.5, c_fm=0.2, c_fs=0.1)
        window = UsmWindow(profile, window=100.0)
        window.record(1.0, Outcome.REJECTED)
        window.record(1.0, Outcome.SUCCESS)
        costs = window.cost_components(2.0)
        assert costs["R"] == pytest.approx(0.25)
        assert costs["F_m"] == 0.0

    def test_raw_failure_ratios(self):
        window = UsmWindow(PenaltyProfile.naive(), window=100.0)
        window.record(1.0, Outcome.DEADLINE_MISS)
        window.record(1.0, Outcome.SUCCESS)
        raw = window.raw_failure_ratios(2.0)
        assert raw["F_m"] == pytest.approx(0.5)
        assert raw["R"] == 0.0
