"""Smoke tests for the table/figure harness (structure, not numbers)."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.figures import (
    ALL_POLICIES,
    figure3,
    figure4,
    figure5,
    figure6,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
)
from repro.experiments.report import ascii_table, bar_chart, decile_histogram
from repro.experiments.tables import (
    render_table1,
    render_table2,
    table1,
    table2,
    validate_update_trace,
)

SMOKE = SCALES["smoke"]


class TestTables:
    def test_table1_rows(self):
        rows = table1(SMOKE, seed=5)
        assert len(rows) == 9
        names = [row.name for row in rows]
        assert names[0] == "low-unif" and names[-1] == "high-neg"
        for row in rows:
            assert row.actual_utilization == pytest.approx(
                row.target_utilization, rel=0.15
            )
        pos = {row.name: row for row in rows}
        assert pos["med-pos"].correlation_with_queries > 0.5
        assert pos["med-neg"].correlation_with_queries < -0.5
        assert abs(pos["med-unif"].correlation_with_queries) < 0.3

    def test_render_table1(self):
        text = render_table1(table1(SMOKE, seed=5))
        assert "Table 1" in text
        assert "med-neg" in text

    def test_table2(self):
        profiles = table2()
        assert len(profiles) == 6
        assert "Table 2" in render_table2()


class TestFigure3:
    def test_cases_and_rendering(self):
        cases = figure3(SMOKE, seed=5)
        assert set(cases) == {"med-unif", "med-neg"}
        for case in cases.values():
            assert 0.0 <= case.drop_fraction <= 1.0
            assert len(case.update_counts_executed) == SMOKE.n_items
        text = render_figure3(cases)
        assert "Figure 3" in text

    def test_unit_drops_a_meaningful_share_at_med(self):
        cases = figure3(SMOKE, seed=5)
        assert cases["med-unif"].drop_fraction > 0.2


class TestFigure4:
    def test_matrix_shape(self):
        data = figure4(SMOKE, seed=5)
        assert len(data) == 9
        for trace, row in data.items():
            assert set(row) == set(ALL_POLICIES)
            for value in row.values():
                assert 0.0 <= value <= 1.0  # naive USM is a success ratio
        text = render_figure4(data)
        assert "Figure 4" in text and "UNIT" in text

    def test_replications_average(self):
        single_a = figure4(SMOKE, seed=5)
        single_b = figure4(SMOKE, seed=6)
        averaged = figure4(SMOKE, seed=5, replications=2)
        for trace in averaged:
            for policy in averaged[trace]:
                expected = (single_a[trace][policy] + single_b[trace][policy]) / 2
                assert averaged[trace][policy] == pytest.approx(expected)

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            figure4(SMOKE, seed=5, replications=0)


class TestFigure5:
    def test_profiles_and_rendering(self):
        data = figure5(SMOKE, seed=5)
        assert set(data) == {
            "lt1-high-cr",
            "lt1-high-cfm",
            "lt1-high-cfs",
            "gt1-high-cr",
            "gt1-high-cfm",
            "gt1-high-cfs",
        }
        text = render_figure5(data)
        assert "penalties < 1" in text


class TestFigure6:
    def test_bars(self):
        data = figure6(SMOKE, seed=5)
        assert [bar.label for bar in data["baselines"]] == ["IMU", "ODU", "QMF"]
        assert len(data["unit"]) == 3
        for bar in data["baselines"] + data["unit"]:
            total = bar.success + bar.rejection + bar.dmf + bar.dsf
            assert total == pytest.approx(1.0)
        text = render_figure6(data)
        assert "Figure 6" in text


class TestReportHelpers:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bb"], [[1, 2.5], ["xyz", 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xyz" in text

    def test_bar_chart_handles_negative_values(self):
        text = bar_chart({"x": -0.5, "y": 1.0}, title="B")
        assert "B" in text and "x" in text

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="E") == "E"

    def test_decile_histogram(self):
        counts = list(range(100))
        buckets = decile_histogram(counts, buckets=10)
        assert len(buckets) == 10
        assert sum(buckets) == sum(counts)

    def test_decile_histogram_validation(self):
        with pytest.raises(ValueError):
            decile_histogram([1, 2], buckets=0)


class TestValidateTrace:
    def test_validate_update_trace(self):
        from repro.sim.rng import RandomStreams
        from repro.workload.updates import STANDARD_UPDATE_TRACES, build_update_trace

        trace = build_update_trace(
            STANDARD_UPDATE_TRACES["med-unif"],
            [5] * 32,
            horizon=200.0,
            streams=RandomStreams(3),
        )
        assert validate_update_trace(trace)
