"""Tests for the simulated value layer and value-divergence freshness."""

import pytest
from hypothesis import given, strategies as st

from repro.db.items import DataItem
from repro.db.values import RandomWalkStream, ValueDivergenceFreshness, ValueTable
from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import run_experiment
from repro.sim.rng import RandomStreams


def walk(initial, step_sigma, seed):
    """A RandomWalkStream fed by a named substream, as production does."""
    return RandomWalkStream(initial, step_sigma, rng=RandomStreams(seed).stream("walk"))


def make_item(arrivals=0, applied=0):
    item = DataItem(item_id=0, ideal_period=10.0, update_exec_time=0.1)
    for k in range(arrivals):
        item.record_arrival(float(k + 1))
        if k + 1 > applied:
            item.record_drop()
    if applied:
        item.apply_update(applied, float(applied))
    return item


class TestRandomWalk:
    def test_initial_value(self):
        stream = walk(initial=50.0, step_sigma=1.0, seed=1)
        assert stream.value_at(0) == 50.0

    def test_deterministic_and_order_independent(self):
        a = walk(100.0, 1.0, seed=7)
        b = walk(100.0, 1.0, seed=7)
        assert a.value_at(10) == b.value_at(10)
        # Querying out of order gives the same walk.
        c = walk(100.0, 1.0, seed=7)
        later = c.value_at(10)
        earlier = c.value_at(3)
        assert later == a.value_at(10)
        assert earlier == a.value_at(3)

    def test_zero_sigma_is_constant(self):
        stream = walk(5.0, 0.0, seed=1)
        assert stream.value_at(100) == 5.0

    def test_negative_seqno_rejected(self):
        with pytest.raises(ValueError):
            walk(0.0, 1.0, seed=1).value_at(-1)

    @given(st.integers(min_value=0, max_value=200))
    def test_property_prefix_stability(self, seqno):
        stream = walk(0.0, 1.0, seed=3)
        first = stream.value_at(seqno)
        stream.value_at(seqno + 50)  # extend the walk
        assert stream.value_at(seqno) == first


class TestValueTable:
    def test_stored_and_source_values(self):
        table = ValueTable(n_items=4, seed=9, step_sigma=1.0)
        item = make_item(arrivals=5, applied=2)
        stream = table.stream(0)
        assert table.stored_value(item) == stream.value_at(2)
        assert table.source_value(item) == stream.value_at(5)
        assert table.divergence(item) == pytest.approx(
            abs(stream.value_at(5) - stream.value_at(2))
        )

    def test_fresh_item_no_divergence(self):
        table = ValueTable(n_items=4, seed=9)
        item = make_item(arrivals=3, applied=3)
        assert table.divergence(item) == 0.0

    def test_bounds(self):
        table = ValueTable(n_items=2, seed=1)
        with pytest.raises(IndexError):
            table.stream(2)
        with pytest.raises(ValueError):
            ValueTable(n_items=0, seed=1)


class TestValueDivergenceFreshness:
    def test_fresh_item_is_one(self):
        table = ValueTable(n_items=2, seed=5)
        metric = ValueDivergenceFreshness(table, scale=5.0)
        assert metric.item_freshness(make_item(3, 3), 0.0) == 1.0

    def test_divergence_lowers_freshness(self):
        table = ValueTable(n_items=2, seed=5, step_sigma=10.0)
        metric = ValueDivergenceFreshness(table, scale=5.0)
        stale = make_item(arrivals=20, applied=1)
        assert metric.item_freshness(stale, 0.0) < 1.0

    def test_cancelling_steps_can_stay_fresh(self):
        """The semantic difference vs the drift proxy: value distance,
        not drop count, decides."""
        table = ValueTable(n_items=2, seed=5, step_sigma=0.0)  # constant walk
        metric = ValueDivergenceFreshness(table, scale=5.0)
        very_stale_by_lag = make_item(arrivals=50, applied=1)
        assert metric.item_freshness(very_stale_by_lag, 0.0) == 1.0

    def test_floor_positive(self):
        table = ValueTable(n_items=2, seed=5, step_sigma=100.0)
        metric = ValueDivergenceFreshness(table, scale=0.5)
        assert metric.item_freshness(make_item(50, 1), 0.0) > 0.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ValueDivergenceFreshness(ValueTable(2, 1), scale=0.0)


class TestEndToEnd:
    def test_value_metric_through_runner(self):
        report = run_experiment(
            ExperimentConfig(
                policy="unit",
                update_trace="med-unif",
                seed=5,
                scale=SCALES["smoke"],
                freshness_metric="value",
                freshness_value_scale=3.0,
            )
        )
        assert sum(report.outcome_counts.values()) == report.queries_submitted

    def test_wide_scale_tolerates_more_staleness_than_lag(self):
        from repro.db.transactions import Outcome

        lag = run_experiment(
            ExperimentConfig(
                policy="unit", update_trace="med-unif", seed=5, scale=SCALES["smoke"]
            )
        )
        value = run_experiment(
            ExperimentConfig(
                policy="unit",
                update_trace="med-unif",
                seed=5,
                scale=SCALES["smoke"],
                freshness_metric="value",
                freshness_value_scale=50.0,  # very tolerant
                freshness_value_sigma=0.5,
            )
        )
        assert (
            value.outcome_counts[Outcome.DATA_STALE]
            <= lag.outcome_counts[Outcome.DATA_STALE]
        )
