"""End-to-end tests of the experiment runner."""

from types import SimpleNamespace

import pytest

from repro.db.transactions import Outcome
from repro.experiments.config import SCALES, ExperimentConfig, build_experiment
from repro.experiments.runner import _drain_window, run_experiment

SMOKE = SCALES["smoke"]


class TestDrainWindow:
    @staticmethod
    def _trace(*pairs):
        return SimpleNamespace(
            queries=[
                SimpleNamespace(arrival=arrival, relative_deadline=deadline)
                for arrival, deadline in pairs
            ]
        )

    def test_window_covers_latest_pending_deadline(self):
        trace = self._trace((1.0, 4.0), (9.0, 30.0))  # deadlines: 5, 39
        assert _drain_window(trace, 10.0) == pytest.approx(30.0)

    def test_deadlines_inside_horizon_need_only_the_epsilon(self):
        trace = self._trace((1.0, 2.0), (3.0, 4.0))
        assert _drain_window(trace, 10.0) == 1.0

    def test_early_long_deadline_does_not_over_extend(self):
        # The window follows max(arrival + relative_deadline), not
        # horizon + max(relative_deadline): a long deadline on an early
        # arrival must not inflate it.
        trace = self._trace((0.0, 8.0), (9.5, 1.0))  # deadlines: 8, 10.5
        assert _drain_window(trace, 10.0) == pytest.approx(1.5)

    def test_empty_trace(self):
        assert _drain_window(SimpleNamespace(queries=[]), 10.0) == 1.0


class TestConfig:
    def test_build_experiment_defaults(self):
        config = build_experiment()
        assert config.policy == "unit"
        assert config.update_trace == "med-unif"
        assert config.scale.name == "small"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            build_experiment(policy="magic")

    def test_unknown_trace_rejected(self):
        with pytest.raises(ValueError):
            build_experiment(update_trace="med-diagonal")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            build_experiment(scale="galactic")

    def test_label(self):
        config = build_experiment(policy="odu", update_trace="low-neg")
        assert config.label() == "odu/low-neg/naive"


@pytest.mark.parametrize("policy", ["imu", "odu", "qmf", "unit"])
class TestAllPolicies:
    def test_runs_and_conserves_queries(self, policy):
        config = ExperimentConfig(
            policy=policy, update_trace="low-unif", seed=5, scale=SMOKE
        )
        report = run_experiment(config)
        assert report.queries_submitted > 0
        assert sum(report.outcome_counts.values()) == report.queries_submitted
        assert sum(report.ratios.values()) == pytest.approx(1.0)

    def test_usm_within_profile_bounds(self, policy):
        config = ExperimentConfig(
            policy=policy, update_trace="med-unif", seed=5, scale=SMOKE
        )
        report = run_experiment(config)
        assert config.profile.usm_min <= report.usm <= config.profile.usm_max


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = run_experiment(
            ExperimentConfig(policy="unit", update_trace="med-unif", seed=9, scale=SMOKE)
        )
        b = run_experiment(
            ExperimentConfig(policy="unit", update_trace="med-unif", seed=9, scale=SMOKE)
        )
        assert a.outcome_counts == b.outcome_counts
        assert a.usm == b.usm
        assert a.update_counts_executed == b.update_counts_executed

    def test_different_seeds_differ(self):
        a = run_experiment(
            ExperimentConfig(policy="unit", update_trace="med-unif", seed=1, scale=SMOKE)
        )
        b = run_experiment(
            ExperimentConfig(policy="unit", update_trace="med-unif", seed=2, scale=SMOKE)
        )
        assert a.outcome_counts != b.outcome_counts or a.usm != b.usm

    def test_policies_share_identical_workload(self):
        """Same seed -> same query trace and update arrivals regardless
        of policy (paired comparison discipline)."""
        imu = run_experiment(
            ExperimentConfig(policy="imu", update_trace="low-unif", seed=4, scale=SMOKE)
        )
        odu = run_experiment(
            ExperimentConfig(policy="odu", update_trace="low-unif", seed=4, scale=SMOKE)
        )
        assert imu.queries_submitted == odu.queries_submitted
        assert imu.update_arrivals == odu.update_arrivals
        assert imu.query_access_counts == odu.query_access_counts


class TestReportContents:
    def test_per_item_series_sizes(self):
        config = ExperimentConfig(
            policy="unit", update_trace="med-unif", seed=5, scale=SMOKE
        )
        report = run_experiment(config)
        n = SMOKE.n_items
        assert len(report.query_access_counts) == n
        assert len(report.update_counts_original) == n
        assert len(report.update_counts_executed) == n

    def test_imu_executes_everything(self):
        report = run_experiment(
            ExperimentConfig(policy="imu", update_trace="low-unif", seed=5, scale=SMOKE)
        )
        assert report.updates_dropped == 0
        assert report.updates_executed == report.update_arrivals

    def test_odu_drops_all_periodic_arrivals(self):
        report = run_experiment(
            ExperimentConfig(policy="odu", update_trace="low-unif", seed=5, scale=SMOKE)
        )
        assert report.updates_dropped == report.update_arrivals

    def test_imu_and_odu_never_go_stale(self):
        """Paper: both baselines achieve 100% freshness by construction."""
        for policy in ("imu", "odu"):
            report = run_experiment(
                ExperimentConfig(
                    policy=policy, update_trace="med-unif", seed=5, scale=SMOKE
                )
            )
            assert report.outcome_counts[Outcome.DATA_STALE] == 0

    def test_records_kept_when_requested(self):
        config = ExperimentConfig(
            policy="imu",
            update_trace="low-unif",
            seed=5,
            scale=SMOKE,
            keep_records=True,
        )
        report = run_experiment(config)
        assert report.records is not None
        assert len(report.records) == report.queries_submitted

    def test_summary_renders(self):
        report = run_experiment(
            ExperimentConfig(policy="unit", update_trace="low-unif", seed=5, scale=SMOKE)
        )
        text = report.summary()
        assert "UNIT" in text
        assert "USM" in text
