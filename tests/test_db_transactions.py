"""Tests for transaction records and the dual-class priority order."""

import pytest

from repro.db.transactions import (
    Outcome,
    QueryRecord,
    QueryTransaction,
    TransactionState,
    UpdateTransaction,
)


def make_query(**kwargs):
    defaults = dict(
        txn_id=1,
        arrival=0.0,
        exec_time=0.1,
        items=(0,),
        relative_deadline=1.0,
        freshness_req=0.9,
    )
    defaults.update(kwargs)
    return QueryTransaction(**defaults)


def make_update(**kwargs):
    defaults = dict(txn_id=2, arrival=0.0, exec_time=0.1, item_id=0, period=5.0)
    defaults.update(kwargs)
    return UpdateTransaction(**defaults)


class TestValidation:
    def test_query_requires_items(self):
        with pytest.raises(ValueError):
            make_query(items=())

    def test_query_requires_positive_deadline(self):
        with pytest.raises(ValueError):
            make_query(relative_deadline=0.0)

    def test_query_freshness_requirement_range(self):
        with pytest.raises(ValueError):
            make_query(freshness_req=0.0)
        with pytest.raises(ValueError):
            make_query(freshness_req=1.5)

    def test_positive_exec_time(self):
        with pytest.raises(ValueError):
            make_query(exec_time=0.0)
        with pytest.raises(ValueError):
            make_update(exec_time=-1.0)

    def test_update_requires_item(self):
        with pytest.raises(ValueError):
            make_update(item_id=-1)


class TestDerivedFields:
    def test_query_absolute_deadline(self):
        query = make_query(arrival=5.0, relative_deadline=2.0)
        assert query.deadline == pytest.approx(7.0)

    def test_query_cpu_utilization_is_eq6_quantity(self):
        query = make_query(exec_time=0.2, relative_deadline=2.0)
        assert query.cpu_utilization == pytest.approx(0.1)

    def test_update_edf_deadline_is_arrival_plus_period(self):
        update = make_update(arrival=3.0, period=5.0)
        assert update.deadline == pytest.approx(8.0)

    def test_remaining_initialized_to_exec_time(self):
        assert make_query(exec_time=0.3).remaining == pytest.approx(0.3)


class TestPriorityOrder:
    def test_updates_outrank_queries(self):
        update = make_update(arrival=100.0, period=1000.0)  # late EDF deadline
        query = make_query(arrival=0.0, relative_deadline=0.01)  # urgent
        assert update.priority_key() < query.priority_key()

    def test_edf_within_queries(self):
        urgent = make_query(txn_id=1, relative_deadline=0.5)
        relaxed = make_query(txn_id=2, relative_deadline=5.0)
        assert urgent.priority_key() < relaxed.priority_key()

    def test_edf_within_updates(self):
        soon = make_update(txn_id=1, period=1.0)
        late = make_update(txn_id=2, period=10.0)
        assert soon.priority_key() < late.priority_key()

    def test_ties_broken_by_txn_id(self):
        a = make_query(txn_id=1)
        b = make_query(txn_id=2)
        assert a.priority_key() < b.priority_key()


class TestLifecycle:
    def test_finished_states(self):
        query = make_query()
        assert not query.is_finished
        query.state = TransactionState.COMMITTED
        assert query.is_finished
        query.state = TransactionState.ABORTED
        assert query.is_finished


class TestQueryRecord:
    def test_response_time(self):
        record = QueryRecord(
            txn_id=1,
            arrival=1.0,
            items=(0,),
            exec_time=0.1,
            relative_deadline=1.0,
            freshness_req=0.9,
            outcome=Outcome.SUCCESS,
            finish_time=1.5,
        )
        assert record.response_time == pytest.approx(0.5)
