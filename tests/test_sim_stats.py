"""Tests for the statistics helpers."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import OnlineStats, TimeSeries, TimeWeightedMean, WindowedCounts

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = OnlineStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_property_matches_batch_statistics(self, values):
        stats = OnlineStats()
        stats.extend(values)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-9)
        assert stats.variance == pytest.approx(
            statistics.pvariance(values), abs=1e-3, rel=1e-6
        )
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_stdev_is_sqrt_variance(self):
        stats = OnlineStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.stdev == pytest.approx(math.sqrt(stats.variance))


class TestTimeWeightedMean:
    def test_constant_signal(self):
        twm = TimeWeightedMean(initial_value=3.0)
        assert twm.value_at(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        twm = TimeWeightedMean()
        twm.update(5.0, 10.0)  # 0 for 5s, then 10
        assert twm.value_at(10.0) == pytest.approx(5.0)

    def test_time_going_backwards_raises(self):
        twm = TimeWeightedMean()
        twm.update(5.0, 1.0)
        with pytest.raises(ValueError):
            twm.update(4.0, 2.0)

    def test_current_tracks_last_value(self):
        twm = TimeWeightedMean()
        twm.update(1.0, 7.0)
        assert twm.current == 7.0


class TestTimeSeries:
    def test_append_and_read(self):
        ts = TimeSeries("x")
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert ts.times == (1.0, 2.0)
        assert ts.values == (10.0, 20.0)
        assert ts.last() == (2.0, 20.0)
        assert ts.mean() == 15.0
        assert len(ts) == 2

    def test_empty_series(self):
        ts = TimeSeries()
        assert ts.last() is None
        assert ts.mean() == 0.0

    def test_rejects_time_regression(self):
        ts = TimeSeries()
        ts.append(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(1.0, 1.0)


class TestWindowedCounts:
    def test_counts_within_window(self):
        window = WindowedCounts(10.0)
        window.record(0.0, "a")
        window.record(5.0, "a")
        window.record(6.0, "b")
        assert window.counts(6.0) == {"a": 2, "b": 1}

    def test_eviction(self):
        window = WindowedCounts(10.0)
        window.record(0.0, "a")
        window.record(9.0, "b")
        assert window.counts(15.0) == {"b": 1}
        assert window.total(25.0) == 0

    def test_ratios(self):
        window = WindowedCounts(100.0)
        for _ in range(3):
            window.record(1.0, "x")
        window.record(1.0, "y")
        ratios = window.ratios(2.0)
        assert ratios["x"] == pytest.approx(0.75)
        assert ratios["y"] == pytest.approx(0.25)

    def test_empty_ratios(self):
        window = WindowedCounts(10.0)
        assert window.ratios(100.0) == {}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedCounts(0.0)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.sampled_from("abc")),
            min_size=1,
            max_size=60,
        )
    )
    def test_property_total_matches_manual_count(self, events):
        events.sort(key=lambda e: e[0])
        window = WindowedCounts(20.0)
        for t, label in events:
            window.record(t, label)
        now = events[-1][0]
        expected = sum(1 for t, _ in events if t >= now - 20.0)
        assert window.total(now) == expected
