"""Tests for the parallel sweep and the workload CLI."""

import pytest

from repro.core.usm import PenaltyProfile
from repro.experiments.config import SCALES
from repro.experiments.sweep import run_grid, run_grid_parallel
from repro.workload.__main__ import main as workload_main

SMOKE = SCALES["smoke"]


class TestParallelSweep:
    def test_matches_serial_results(self):
        kwargs = dict(
            policies=("imu", "odu"),
            traces=("low-unif",),
            profiles=(PenaltyProfile.naive(),),
            scale=SMOKE,
            seed=5,
        )
        serial = run_grid(**kwargs)
        parallel = run_grid_parallel(workers=2, **kwargs)
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key].usm == parallel[key].usm
            assert serial[key].outcome_counts == parallel[key].outcome_counts

    def test_single_worker_fallback(self):
        reports = run_grid_parallel(
            policies=("imu",),
            traces=("low-unif",),
            profiles=(PenaltyProfile.naive(),),
            scale=SMOKE,
            seed=5,
            workers=1,
        )
        assert len(reports) == 1

    def test_empty_grid(self):
        assert run_grid_parallel((), (), (), SMOKE) == {}


class TestWorkloadCli:
    def test_generate_and_inspect_round_trip(self, tmp_path, capsys):
        out = tmp_path / "bundle.json"
        rc = workload_main(
            [
                "generate",
                "--scale",
                "smoke",
                "--seed",
                "5",
                "--traces",
                "low-unif",
                "med-neg",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

        rc = workload_main(["inspect", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "low-unif" in text and "med-neg" in text
        assert "corr w/ queries" in text

    def test_unknown_trace_fails(self, tmp_path, capsys):
        rc = workload_main(
            [
                "generate",
                "--scale",
                "smoke",
                "--traces",
                "med-diagonal",
                "--out",
                str(tmp_path / "x.json"),
            ]
        )
        assert rc == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            workload_main([])
