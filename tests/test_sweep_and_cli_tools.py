"""Tests for the parallel sweep and the workload CLI."""

import pytest

from repro.core.usm import PenaltyProfile
from repro.experiments.config import SCALES
from repro.experiments.sweep import WORKERS_ENV, run_grid, run_grid_parallel
from repro.workload.__main__ import main as workload_main

from tests.test_determinism_regression import _stable_report_bytes

SMOKE = SCALES["smoke"]

GRID_KWARGS = dict(
    policies=("unit", "imu"),
    traces=("low-unif", "med-neg"),
    profiles=(PenaltyProfile.naive(),),
    scale=SMOKE,
    seed=5,
)


class TestParallelSweep:
    def test_matches_serial_results(self):
        kwargs = dict(
            policies=("imu", "odu"),
            traces=("low-unif",),
            profiles=(PenaltyProfile.naive(),),
            scale=SMOKE,
            seed=5,
        )
        serial = run_grid(**kwargs)
        parallel = run_grid_parallel(workers=2, **kwargs)
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key].usm == parallel[key].usm
            assert serial[key].outcome_counts == parallel[key].outcome_counts

    def test_single_worker_fallback(self):
        reports = run_grid_parallel(
            policies=("imu",),
            traces=("low-unif",),
            profiles=(PenaltyProfile.naive(),),
            scale=SMOKE,
            seed=5,
            workers=1,
        )
        assert len(reports) == 1

    def test_empty_grid(self):
        assert run_grid_parallel((), (), (), SMOKE) == {}


class TestExecutorDeterminism:
    def test_parallel_reports_byte_identical_to_serial(self):
        serial = run_grid(**GRID_KWARGS)
        parallel = run_grid_parallel(workers=2, **GRID_KWARGS)
        assert list(serial) == list(parallel)  # entry order, not just keys
        for key in serial:
            assert _stable_report_bytes(serial[key]) == _stable_report_bytes(
                parallel[key]
            )

    def test_serial_progress_callback_fires_per_cell(self):
        calls = []
        run_grid(
            progress_callback=lambda key, report, done, total: calls.append(
                (key, done, total)
            ),
            **GRID_KWARGS,
        )
        assert len(calls) == 4
        assert calls[-1][1:] == (4, 4)

    def test_parallel_progress_callback_fires_per_cell(self):
        calls = []
        run_grid_parallel(
            workers=2,
            progress_callback=lambda key, report, done, total: calls.append(done),
            **GRID_KWARGS,
        )
        assert sorted(calls) == [1, 2, 3, 4]

    def test_env_override_routes_run_grid_through_pool(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        baseline = run_grid(**GRID_KWARGS)
        monkeypatch.setenv(WORKERS_ENV, "2")
        routed = run_grid(**GRID_KWARGS)
        assert list(baseline) == list(routed)
        for key in baseline:
            assert _stable_report_bytes(baseline[key]) == _stable_report_bytes(
                routed[key]
            )

    def test_malformed_env_override_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        reports = run_grid(**GRID_KWARGS)
        assert len(reports) == 4


class TestWorkloadCli:
    def test_generate_and_inspect_round_trip(self, tmp_path, capsys):
        out = tmp_path / "bundle.json"
        rc = workload_main(
            [
                "generate",
                "--scale",
                "smoke",
                "--seed",
                "5",
                "--traces",
                "low-unif",
                "med-neg",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

        rc = workload_main(["inspect", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "low-unif" in text and "med-neg" in text
        assert "corr w/ queries" in text

    def test_unknown_trace_fails(self, tmp_path, capsys):
        rc = workload_main(
            [
                "generate",
                "--scale",
                "smoke",
                "--traces",
                "med-diagonal",
                "--out",
                str(tmp_path / "x.json"),
            ]
        )
        assert rc == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            workload_main([])
