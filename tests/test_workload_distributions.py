"""Tests for the random-variate helpers."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.distributions import (
    BurstyArrivalProcess,
    CumulativeSampler,
    exponential,
    lognormal_from_mean_cv,
    shuffled_zipf_weights,
    weighted_choice,
    zipf_weights,
)


class TestZipf:
    def test_weights_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.3)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_higher_skew_concentrates_head(self):
        mild = zipf_weights(100, 0.5)
        sharp = zipf_weights(100, 2.0)
        assert sharp[0] > mild[0]

    def test_shuffled_preserves_multiset(self):
        rng = random.Random(3)
        shuffled = shuffled_zipf_weights(20, 1.0, rng)
        assert sorted(shuffled) == sorted(zipf_weights(20, 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestLognormal:
    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=20)
    def test_property_positive(self, mean, cv):
        rng = random.Random(0)
        assert lognormal_from_mean_cv(mean, cv, rng) > 0

    def test_zero_cv_is_deterministic(self):
        rng = random.Random(0)
        assert lognormal_from_mean_cv(2.5, 0.0, rng) == 2.5

    def test_sample_mean_converges(self):
        rng = random.Random(7)
        samples = [lognormal_from_mean_cv(0.05, 1.0, rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(0.05, rel=0.05)

    def test_sample_cv_converges(self):
        rng = random.Random(7)
        samples = [lognormal_from_mean_cv(1.0, 0.5, rng) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert math.sqrt(var) / mean == pytest.approx(0.5, rel=0.1)

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            lognormal_from_mean_cv(0.0, 1.0, rng)
        with pytest.raises(ValueError):
            lognormal_from_mean_cv(1.0, -0.5, rng)


class TestExponential:
    def test_mean_converges(self):
        rng = random.Random(1)
        samples = [exponential(2.0, rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential(0.0, random.Random(0))


class TestBurstyProcess:
    def test_mean_rate_formula(self):
        process = BurstyArrivalProcess(
            base_rate=1.0,
            burst_factor=4.0,
            normal_dwell=90.0,
            burst_dwell=10.0,
            rng=random.Random(0),
        )
        # burst weight 0.1: 1.0 * (1 + 3*0.1) = 1.3
        assert process.mean_rate == pytest.approx(1.3)

    def test_arrivals_strictly_increasing_within_horizon(self):
        process = BurstyArrivalProcess(1.0, 4.0, 50.0, 10.0, random.Random(2))
        arrivals = process.arrivals_until(500.0)
        assert arrivals
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[-1] <= 500.0

    def test_long_run_rate_matches(self):
        process = BurstyArrivalProcess(2.0, 5.0, 100.0, 20.0, random.Random(5))
        arrivals = process.arrivals_until(20000.0)
        rate = len(arrivals) / 20000.0
        assert rate == pytest.approx(process.mean_rate, rel=0.1)

    def test_bursts_create_rate_variance(self):
        """Per-window arrival counts must be overdispersed vs Poisson."""
        process = BurstyArrivalProcess(1.0, 10.0, 50.0, 25.0, random.Random(9))
        arrivals = process.arrivals_until(5000.0)
        window = 25.0
        counts = [0] * int(5000.0 / window)
        for arrival in arrivals:
            counts[min(len(counts) - 1, int(arrival / window))] += 1
        mean = sum(counts) / len(counts)
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        assert var > 2.0 * mean  # Poisson would give var == mean

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivalProcess(0.0, 2.0, 1.0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            BurstyArrivalProcess(1.0, 0.5, 1.0, 1.0, random.Random(0))


class TestSamplers:
    def test_weighted_choice_respects_zero_weights(self):
        rng = random.Random(0)
        draws = {weighted_choice([0.0, 1.0, 0.0], rng) for _ in range(50)}
        assert draws == {1}

    def test_cumulative_sampler_matches_distribution(self):
        sampler = CumulativeSampler([1.0, 3.0])
        rng = random.Random(11)
        draws = [sampler.sample(rng) for _ in range(8000)]
        assert draws.count(1) / len(draws) == pytest.approx(0.75, abs=0.03)

    def test_cumulative_sampler_validation(self):
        with pytest.raises(ValueError):
            CumulativeSampler([])
        with pytest.raises(ValueError):
            CumulativeSampler([-1.0, 2.0])
        with pytest.raises(ValueError):
            CumulativeSampler([0.0, 0.0])
