"""Tests for data items and the drop-based staleness lag."""

import pytest
from hypothesis import given, strategies as st

from repro.db.items import DataItem, ItemTable


def make_item(**kwargs):
    defaults = dict(item_id=0, ideal_period=10.0, update_exec_time=0.1)
    defaults.update(kwargs)
    return DataItem(**defaults)


class TestDataItem:
    def test_initial_state_is_fresh(self):
        item = make_item()
        assert item.udrop == 0
        assert not item.is_degraded
        assert item.current_period == item.ideal_period

    def test_validation(self):
        with pytest.raises(ValueError):
            make_item(ideal_period=0.0)
        with pytest.raises(ValueError):
            make_item(update_exec_time=-1.0)
        with pytest.raises(ValueError):
            make_item(current_period=5.0)  # below ideal 10.0

    def test_queued_arrival_does_not_stale(self):
        """Only *dropped* arrivals count toward Udrop (paper Eq. 1)."""
        item = make_item()
        item.record_arrival(1.0)
        assert item.udrop == 0  # queued for execution, not dropped

    def test_drop_increases_lag(self):
        item = make_item()
        item.record_arrival(1.0)
        item.record_drop()
        assert item.udrop == 1
        item.record_arrival(2.0)
        item.record_drop()
        assert item.udrop == 2

    def test_applying_newest_update_clears_lag(self):
        item = make_item()
        for t in (1.0, 2.0, 3.0):
            item.record_arrival(t)
            item.record_drop()
        seq = item.record_arrival(4.0)
        item.apply_update(seq, 4.5)
        assert item.udrop == 0

    def test_applying_stale_update_keeps_lag(self):
        item = make_item()
        old_seq = item.record_arrival(1.0)
        item.record_arrival(2.0)
        item.record_drop()
        item.apply_update(old_seq, 3.0)  # older than the drop
        assert item.udrop == 1

    def test_apply_never_regresses_seq(self):
        item = make_item()
        first = item.record_arrival(1.0)
        second = item.record_arrival(2.0)
        item.apply_update(second, 2.5)
        item.apply_update(first, 3.0)  # out-of-order commit
        assert item.applied_seq == second

    def test_degrade_stretches_period(self):
        item = make_item()
        new_period = item.degrade_period(0.1)
        assert new_period == pytest.approx(11.0)
        assert item.is_degraded

    def test_upgrade_subtracts_in_ideal_units_with_floor(self):
        item = make_item()
        item.degrade_period(0.1)  # 11.0
        item.upgrade_period(0.5)  # -5.0 -> floored at 10.0
        assert item.current_period == pytest.approx(10.0)
        assert not item.is_degraded

    def test_deep_degradation_recovers_gradually(self):
        item = make_item()
        for _ in range(30):
            item.degrade_period(0.1)
        deep = item.current_period
        item.upgrade_period(0.5)
        assert item.current_period == pytest.approx(deep - 5.0)

    def test_reset_period(self):
        item = make_item()
        item.degrade_period(0.5)
        item.reset_period()
        assert item.current_period == item.ideal_period

    @given(st.lists(st.sampled_from(["drop", "apply"]), min_size=1, max_size=60))
    def test_property_lag_never_negative_and_bounded_by_drops(self, ops):
        item = make_item()
        t = 0.0
        drops_since_apply = 0
        for op in ops:
            t += 1.0
            seq = item.record_arrival(t)
            if op == "drop":
                item.record_drop()
                drops_since_apply += 1
            else:
                item.apply_update(seq, t)
                drops_since_apply = 0
            assert item.udrop >= 0
            assert item.udrop == drops_since_apply


class TestItemTable:
    def test_uniform_builder(self):
        table = ItemTable.uniform(4, ideal_period=5.0, update_exec_time=0.1)
        assert len(table) == 4
        assert table[2].item_id == 2

    def test_requires_dense_ids(self):
        items = [make_item(item_id=0), make_item(item_id=2)]
        with pytest.raises(ValueError):
            ItemTable(items)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ItemTable([])

    def test_degraded_items_and_totals(self):
        table = ItemTable.uniform(3, ideal_period=5.0, update_exec_time=0.1)
        table[1].degrade_period(0.2)
        assert [item.item_id for item in table.degraded_items()] == [1]
        table[0].record_arrival(1.0)
        table[0].record_drop()
        totals = table.totals()
        assert totals["arrivals"] == 1
        assert totals["dropped"] == 1
