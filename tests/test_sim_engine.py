"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_priority_then_fifo_order():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("late"), priority=5)
    sim.schedule(1.0, lambda: fired.append("first"), priority=-1)
    sim.schedule(1.0, lambda: fired.append("second"), priority=-1)
    sim.run()
    assert fired == ["first", "second", "late"]


def test_schedule_after_uses_relative_delay():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: sim.schedule_after(2.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [7.0]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, lambda: fired.append("x"))
    sim.schedule(2.0, lambda: fired.append("y"))
    timer.cancel()
    assert not timer.active
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    assert not timer.active


def test_run_until_stops_clock_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    # The later event is still pending and fires on a subsequent run.
    sim.run()
    assert fired == [1, 10]


def test_event_at_exact_until_boundary_fires():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("edge"))
    sim.run(until=5.0)
    assert fired == ["edge"]


def test_step_returns_false_when_drained():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_max_events_bounds_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_fired_counts_only_live_events():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    timer.cancel()
    sim.run()
    assert sim.events_fired == 1


def test_events_scheduled_during_run_fire_in_order():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule_after(1.0, lambda: chain(n + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def inner():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, inner)
    sim.run()
    assert len(errors) == 1


def test_pending_excludes_cancelled_immediately():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    timer.cancel()
    assert sim.pending == 1


def test_pending_decrements_as_events_fire():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.0)
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0


def test_cancel_after_fire_is_a_noop():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert not timer.active
    timer.cancel()  # must not corrupt the live-event count
    assert sim.pending == 1
    sim.run()
    assert sim.events_fired == 2
    assert sim.pending == 0


def test_peek_time_skips_cancelled():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    timer.cancel()
    assert sim.peek_time() == 2.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_property_firing_order_is_sorted(times):
    """Whatever times are scheduled, callbacks observe a nondecreasing clock."""
    sim = Simulator()
    observed = []
    for t in times:
        sim.schedule(t, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancelled_subset_never_fires(entries):
    sim = Simulator()
    fired = []
    cancelled_count = 0
    for index, (t, cancel) in enumerate(entries):
        timer = sim.schedule(t, lambda i=index: fired.append(i))
        if cancel:
            timer.cancel()
            cancelled_count += 1
    sim.run()
    assert len(fired) == len(entries) - cancelled_count


def test_heap_size_bounded_under_heavy_cancellation():
    """Cancel-heavy churn must not grow the raw heap without bound.

    Every admitted query cancels its deadline timer on commit, so a
    long run cancels most of what it schedules.  The compactor rebuilds
    the heap once cancelled entries pass a small floor and outnumber
    live ones, which bounds ``heap_size`` (lazily-deleted entries
    included) at roughly twice ``pending`` plus the floor.
    """
    sim = Simulator()
    live_timers = []
    keep = 50
    for i in range(20_000):
        live_timers.append(sim.schedule(1.0 + i * 1e-3, lambda: None))
        if len(live_timers) > keep:
            live_timers.pop(0).cancel()
        # Compactor invariant: cancelled entries never exceed
        # max(live, floor), so the raw heap stays O(pending).
        assert sim.heap_size <= 2 * sim.pending + 2 * 64
    assert sim.pending == keep
    assert sim.heap_size <= 2 * keep + 2 * 64
    # The surviving timers still fire exactly once each.
    sim.run()
    assert sim.pending == 0
