"""Coverage for the policy-hook defaults and raw event ordering."""

from repro.db.items import ItemTable
from repro.db.policy_api import ServerPolicy
from repro.db.server import Server, ServerConfig
from repro.db.transactions import QueryTransaction
from repro.sim.engine import Simulator
from repro.sim.events import Event


class MinimalPolicy(ServerPolicy):
    """Implements only the two abstract hooks; defaults for the rest."""

    def admit_query(self, query, server):
        return True

    def should_apply_update(self, item, server):
        return True


class TestPolicyDefaults:
    def make(self):
        sim = Simulator()
        items = ItemTable.uniform(2, ideal_period=5.0, update_exec_time=0.1)
        return sim, Server(sim, items, MinimalPolicy(), ServerConfig())

    def test_default_hooks_are_noops(self):
        """A policy with only the two decisions implemented runs a full
        query + update lifecycle without errors."""
        sim, server = self.make()
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=0.0,
            exec_time=0.1,
            items=(0,),
            relative_deadline=1.0,
        )
        sim.schedule(0.0, lambda: server.submit_query(txn))
        sim.schedule(0.5, lambda: server.source_update_arrival(1))
        sim.run()
        assert len(server.records) == 1
        assert server.items[1].updates_executed == 1

    def test_default_stale_at_read_lets_query_proceed(self):
        policy = MinimalPolicy()
        assert policy.on_query_stale_at_read(None, None) is False

    def test_describe_defaults_to_class_name(self):
        assert MinimalPolicy().describe() == "MinimalPolicy"


class TestEventOrdering:
    def test_total_order(self):
        early = Event(time=1.0, priority=0, seq=1)
        later_time = Event(time=2.0, priority=-5, seq=0)
        same_time_higher_priority = Event(time=1.0, priority=-1, seq=2)
        same_everything_later_seq = Event(time=1.0, priority=0, seq=3)
        assert early < later_time
        assert same_time_higher_priority < early
        assert early < same_everything_later_seq

    def test_cancelled_event_does_not_invoke_callback(self):
        fired = []
        event = Event(time=1.0, callback=lambda: fired.append(1))
        event.cancelled = True
        event.fire()
        assert fired == []

    def test_fire_invokes_callback(self):
        fired = []
        Event(time=1.0, callback=lambda: fired.append(1)).fire()
        assert fired == [1]
