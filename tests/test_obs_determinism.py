"""Observability must not perturb the simulation.

Three contracts:

1. Two runs with the same seed produce byte-identical traces
   (:func:`trace_digest` over the JSONL bytes).
2. Traces are identical whether the sweep runs serially or in the
   process pool — recording happens inside each worker.
3. A run with observability enabled produces a byte-identical
   *simulation report* to one with it disabled (the recorder observes;
   it never steers).
"""

import dataclasses

from repro.core.usm import PenaltyProfile
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import run_grid, run_grid_parallel
from repro.obs.config import ObsConfig
from repro.obs.export import trace_digest
from tests.test_determinism_regression import _stable_report_bytes

SMOKE = SCALES["smoke"]

OBS_KEEP = ObsConfig(enabled=True, keep_events=True)


def _run(config):
    report = run_experiment(config)
    assert report.obs_events is not None
    return report


class TestTraceDeterminism:
    def test_same_seed_identical_trace(self):
        config = ExperimentConfig(
            policy="unit", update_trace="med-unif", seed=7, scale=SMOKE, obs=OBS_KEEP
        )
        first = _run(config)
        second = _run(dataclasses.replace(config))
        assert first.obs_events  # non-trivial trace
        assert trace_digest(first.obs_events) == trace_digest(second.obs_events)

    def test_different_seed_different_trace(self):
        base = ExperimentConfig(
            policy="unit", update_trace="med-unif", seed=7, scale=SMOKE, obs=OBS_KEEP
        )
        other = dataclasses.replace(base, seed=8)
        assert trace_digest(_run(base).obs_events) != trace_digest(
            _run(other).obs_events
        )

    def test_serial_vs_parallel_sweep_identical_traces(self):
        kwargs = dict(
            policies=("unit", "odu"),
            traces=("low-unif", "med-unif"),
            profiles=(PenaltyProfile.naive(),),
            scale=SMOKE,
            seed=5,
            base=ExperimentConfig(
                policy="unit", update_trace="low-unif", seed=5, scale=SMOKE,
                obs=OBS_KEEP,
            ),
        )
        serial = run_grid(**kwargs)
        parallel = run_grid_parallel(workers=2, **kwargs)
        assert list(serial) == list(parallel)
        for key in serial:
            assert trace_digest(serial[key].obs_events) == trace_digest(
                parallel[key].obs_events
            ), key


class TestObsDoesNotPerturb:
    def test_enabled_vs_disabled_byte_identical_report(self):
        """The acceptance gate: obs on vs off, same seed, same report."""
        disabled = run_experiment(
            ExperimentConfig(policy="unit", update_trace="med-unif", seed=7, scale=SMOKE)
        )
        enabled = run_experiment(
            ExperimentConfig(
                policy="unit", update_trace="med-unif", seed=7, scale=SMOKE,
                obs=ObsConfig(enabled=True),
            )
        )
        assert _stable_report_bytes(disabled) == _stable_report_bytes(enabled)
        # And the recorder actually saw the run.
        assert enabled.obs_summary is not None
        assert enabled.obs_summary["recorded"] > 0
        assert disabled.obs_summary is None

    def test_obs_disabled_config_matches_no_config(self):
        plain = run_experiment(
            ExperimentConfig(policy="unit", update_trace="low-unif", seed=3, scale=SMOKE)
        )
        explicit_off = run_experiment(
            ExperimentConfig(
                policy="unit", update_trace="low-unif", seed=3, scale=SMOKE,
                obs=ObsConfig(enabled=False),
            )
        )
        assert _stable_report_bytes(plain) == _stable_report_bytes(explicit_off)
        assert explicit_off.obs_summary is None

    def test_all_policies_unperturbed(self):
        """Every policy's instrumentation path is observation-only."""
        for policy in ("unit", "imu", "odu", "elastic"):
            off = run_experiment(
                ExperimentConfig(
                    policy=policy, update_trace="med-unif", seed=11, scale=SMOKE
                )
            )
            on = run_experiment(
                ExperimentConfig(
                    policy=policy, update_trace="med-unif", seed=11, scale=SMOKE,
                    obs=ObsConfig(enabled=True),
                )
            )
            assert _stable_report_bytes(off) == _stable_report_bytes(on), policy


class TestArtifactDeterminism:
    def test_exported_trace_bytes_identical_across_runs(self, tmp_path):
        def run_into(directory):
            config = ExperimentConfig(
                policy="unit", update_trace="med-unif", seed=7, scale=SMOKE,
                obs=ObsConfig(enabled=True, out_dir=str(directory)),
            )
            report = run_experiment(config)
            assert report.obs_artifacts is not None
            return report.obs_artifacts

        first = run_into(tmp_path / "a")
        second = run_into(tmp_path / "b")
        assert set(first) == {
            "trace_jsonl", "chrome_json", "controller_csv", "prometheus_txt",
            "spans_jsonl",
        }
        for kind in first:
            with open(first[kind], "rb") as fa, open(second[kind], "rb") as fb:
                assert fa.read() == fb.read(), kind
