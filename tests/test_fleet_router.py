"""Tests for the fleet query router."""

import pytest

from repro.fleet.partition import build_partition
from repro.fleet.router import route_queries
from repro.obs.trace import FLEET_ROUTE, TraceRecorder
from repro.workload.queries import QuerySpec, QueryTrace
from repro.workload.updates import ItemUpdateSpec, UpdateTrace

HORIZON = 100.0


def query(arrival, items, exec_time=0.1, deadline=5.0, freshness=0.9):
    return QuerySpec(
        arrival=arrival,
        items=tuple(items),
        exec_time=exec_time,
        relative_deadline=deadline,
        freshness_req=freshness,
    )


def make_traces(queries, n_items=4, updates_per_item=0, update_exec=0.05):
    qt = QueryTrace(name="t", horizon=HORIZON, n_items=n_items, queries=list(queries))
    items = []
    for item_id in range(n_items):
        count = updates_per_item
        period = HORIZON / count if count else 2 * HORIZON
        items.append(
            ItemUpdateSpec(
                item_id=item_id,
                count=count,
                period=period,
                phase=0.0 if count else HORIZON,
                exec_time=update_exec,
            )
        )
    ut = UpdateTrace(name="t", horizon=HORIZON, items=items, target_utilization=0.1)
    return qt, ut


class TestPrimaryPolicy:
    def test_routes_to_primary_of_first_item(self):
        part = build_partition(4, 2, strategy="mod")  # item i -> shard i%2
        qt, ut = make_traces([query(1.0, [2]), query(2.0, [1]), query(3.0, [3])])
        plan = route_queries(qt, ut, part, policy="primary")
        assert plan.assignments == [0, 1, 1]
        assert plan.forced == [False, False, False]

    def test_single_shard_takes_everything(self):
        part = build_partition(4, 1)
        qt, ut = make_traces([query(1.0, [0]), query(2.0, [3])])
        plan = route_queries(qt, ut, part, policy="primary")
        assert plan.assignments == [0, 0]
        assert plan.est_freshness == [1.0, 1.0]


class TestForcedRouting:
    def test_disjoint_hosts_force_primary_and_materialize_replicas(self):
        part = build_partition(4, 2, strategy="mod")  # no replication
        qt, ut = make_traces([query(1.0, [0, 1])])  # primaries 0 and 1
        plan = route_queries(qt, ut, part, policy="primary")
        assert plan.assignments == [0]
        assert plan.forced == [True]
        # Item 1 must be materialized on shard 0 as a forced replica.
        assert plan.extra_hosts == {0: [1]}

    def test_replication_avoids_forcing(self):
        part = build_partition(4, 2, replication=2, strategy="mod")
        qt, ut = make_traces([query(1.0, [0, 1])])
        plan = route_queries(qt, ut, part, policy="primary")
        assert plan.forced == [False]
        assert plan.extra_hosts == {}


class TestLeastLoaded:
    def test_spreads_replicated_reads(self):
        # Full replication: every shard hosts every item, so routing is
        # purely load-driven and must alternate.
        part = build_partition(4, 2, replication=2, strategy="mod")
        qt, ut = make_traces([query(float(i), [0]) for i in range(1, 5)])
        plan = route_queries(qt, ut, part, policy="least-loaded")
        assert sorted(plan.routed_counts) == [2, 2]

    def test_round_robin_cycles(self):
        part = build_partition(4, 2, replication=2, strategy="mod")
        qt, ut = make_traces([query(float(i), [0]) for i in range(1, 5)])
        plan = route_queries(qt, ut, part, policy="round-robin")
        assert plan.assignments == [0, 1, 0, 1]


class TestFreshnessPolicy:
    def test_stale_replica_filtered_out(self):
        # Item 0's primary is shard 0; shard 1 holds a lag-delayed
        # replica.  With updates every 2s and a 10s lag, the replica is
        # ~5 updates behind: estimated freshness 1/6 << 0.9, so every
        # read of item 0 must stay on the primary.
        part = build_partition(2, 2, replication=2, strategy="mod")
        qt, ut = make_traces(
            [query(50.0 + i, [0], freshness=0.9) for i in range(4)],
            n_items=2,
            updates_per_item=50,
        )
        plan = route_queries(qt, ut, part, policy="freshness", replica_lag=10.0)
        assert plan.assignments == [0, 0, 0, 0]
        assert all(f == 1.0 for f in plan.est_freshness)

    def test_fresh_replica_used_for_balance(self):
        # No updates at all: replicas are perfectly fresh, so the
        # freshness policy degenerates to least-loaded and spreads.
        part = build_partition(2, 2, replication=2, strategy="mod")
        qt, ut = make_traces(
            [query(float(i), [0], freshness=0.9) for i in range(1, 5)],
            n_items=2,
            updates_per_item=0,
        )
        plan = route_queries(qt, ut, part, policy="freshness")
        assert sorted(plan.routed_counts) == [2, 2]

    def test_low_requirement_tolerates_staleness(self):
        part = build_partition(2, 2, replication=2, strategy="mod")
        qt, ut = make_traces(
            [query(50.0 + i, [0], freshness=0.05) for i in range(4)],
            n_items=2,
            updates_per_item=50,
        )
        plan = route_queries(qt, ut, part, policy="freshness", replica_lag=10.0)
        # 1/(1+5) ~ 0.167 >= 0.05: the replica qualifies, so load
        # balancing spreads across both shards.
        assert sorted(plan.routed_counts) == [2, 2]


class TestDeterminismAndObs:
    def test_plan_is_deterministic(self):
        part = build_partition(8, 3, replication=2)
        queries = [query(float(i) * 0.5, [i % 8]) for i in range(40)]
        qt, ut = make_traces(queries, n_items=8, updates_per_item=10)
        a = route_queries(qt, ut, part, policy="least-loaded")
        b = route_queries(qt, ut, part, policy="least-loaded")
        assert a.assignments == b.assignments
        assert a.routed_exec == b.routed_exec

    def test_route_events_emitted(self):
        part = build_partition(4, 2, replication=2, strategy="mod")
        qt, ut = make_traces([query(1.0, [0]), query(2.0, [1])])
        recorder = TraceRecorder()
        plan = route_queries(qt, ut, part, policy="primary", recorder=recorder)
        events = [e for e in recorder.events() if e.kind == FLEET_ROUTE]
        assert len(events) == 2
        first = events[0].as_dict()
        assert first["shard"] == plan.assignments[0]
        assert first["policy"] == "primary"
        assert first["txn"] == 1

    def test_unknown_policy_rejected(self):
        part = build_partition(4, 2)
        qt, ut = make_traces([query(1.0, [0])])
        with pytest.raises(ValueError):
            route_queries(qt, ut, part, policy="nope")
