"""Exporters: JSONL, Chrome trace, controller CSV, Prometheus text."""

import csv
import json

import pytest

from repro.obs.export import (
    _prom_number,
    chrome_trace_events,
    controller_rows,
    histogram_quantile,
    render_prometheus,
    render_trace_jsonl,
    trace_digest,
    truncation_header,
    write_chrome_trace,
    write_controller_csv,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry, RunMetrics
from repro.obs.trace import TraceRecorder


def _sample_recorder():
    rec = TraceRecorder()
    rec.query_admit(0.1, 1, 1.5, 2)
    rec.lock_wait(0.2, 2, 7, True, [1])
    rec.query_outcome(0.4, 1, "success", 0.1, 0.3, 0.9, 0)
    rec.control_window(1.0, {"S": 0.8, "R": 0.1}, 0.42, 20, ["LAC"], 1.25, 0.3, 2, -0.5)
    rec.control_window(2.0, {"S": 0.7, "R": 0.2}, 0.35, 18, [], 1.0, 0.4, 3, -0.5)
    return rec


class TestJsonl:
    def test_one_line_per_event_sorted_keys(self):
        text = render_trace_jsonl(_sample_recorder())
        lines = text.splitlines()
        assert len(lines) == 5
        first = json.loads(lines[0])
        assert first["kind"] == "query.admit"
        assert first["t"] == 0.1
        # Canonical form: keys sorted, compact separators.
        assert lines[0] == json.dumps(first, sort_keys=True, separators=(",", ":"))

    def test_empty_source(self):
        assert render_trace_jsonl(TraceRecorder()) == ""

    def test_write_and_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        n = write_trace_jsonl(_sample_recorder(), path)
        assert n == 5
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["kind"] for e in events] == [
            "query.admit",
            "lock.wait",
            "query.outcome",
            "control.window",
            "control.window",
        ]

    def test_digest_is_stable_and_input_sensitive(self):
        a = trace_digest(_sample_recorder())
        b = trace_digest(_sample_recorder())
        assert a == b
        other = TraceRecorder()
        other.query_admit(0.1, 1, 1.5, 2)
        assert trace_digest(other) != a

    def test_accepts_plain_dicts(self):
        rec = _sample_recorder()
        assert trace_digest(rec.event_dicts()) == trace_digest(rec)


class TestChromeTrace:
    def test_metadata_lanes(self):
        events = chrome_trace_events(_sample_recorder())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names == {"server", "controller", "locks"}
        assert any(e["name"] == "process_name" for e in meta)

    def test_outcome_becomes_complete_slice(self):
        events = chrome_trace_events(_sample_recorder())
        (slice_,) = [e for e in events if e["ph"] == "X"]
        assert slice_["name"] == "query:success"
        assert slice_["ts"] == 0.1 * 1e6  # arrival, in microseconds
        assert slice_["dur"] == 0.3 * 1e6  # latency
        assert slice_["tid"] == 1  # server lane

    def test_window_becomes_counter_track(self):
        events = chrome_trace_events(_sample_recorder())
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2
        args = counters[0]["args"]
        assert args["S"] == 0.8
        assert args["usm"] == 0.42
        # Counter args must be numeric only (no lists/strings/bools).
        assert all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in args.values()
        )
        assert counters[0]["tid"] == 2  # controller lane

    def test_lock_events_are_instants_on_lock_lane(self):
        events = chrome_trace_events(_sample_recorder())
        (instant,) = [e for e in events if e.get("name") == "lock.wait"]
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert instant["tid"] == 3

    def test_written_file_is_valid_json(self, tmp_path):
        path = tmp_path / "chrome.json"
        write_chrome_trace(_sample_recorder(), path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)
        assert len(payload["traceEvents"]) > 5


class TestControllerCsv:
    def test_rows_only_window_snapshots(self):
        rows = controller_rows(_sample_recorder())
        assert len(rows) == 2
        assert rows[0]["t"] == 1.0
        assert rows[0]["S"] == 0.8
        assert rows[0]["usm"] == 0.42
        assert rows[0]["signals"] == "LAC"
        assert rows[1]["signals"] == "none"

    def test_csv_columns_t_first_union(self, tmp_path):
        path = tmp_path / "controller.csv"
        n = write_controller_csv(_sample_recorder(), path)
        assert n == 2
        with path.open() as fh:
            reader = csv.DictReader(fh)
            assert reader.fieldnames is not None
            assert reader.fieldnames[0] == "t"
            rows = list(reader)
        assert {"S", "R", "usm", "c_flex", "ticket_threshold"} <= set(rows[0])
        assert rows[0]["usm"] == "0.42"

    def test_empty_trace_gives_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_controller_csv(TraceRecorder(), path) == 0
        assert path.read_text().splitlines() == ["t"]


class TestTruncationHeader:
    def test_complete_trace_has_no_header(self):
        rec = _sample_recorder()
        assert truncation_header(rec) is None
        first = json.loads(render_trace_jsonl(rec).splitlines()[0])
        assert first["kind"] != "trace.meta"

    def test_wrapped_ring_prepends_header(self, tmp_path):
        rec = TraceRecorder(capacity=2)
        rec.query_admit(0.1, 1, 1.5, 2)
        rec.query_outcome(0.4, 1, "success", 0.1, 0.3, 0.9, 0)
        rec.control_window(1.0, {"S": 0.8}, 0.42, 20, ["LAC"], 1.25, 0.3, 2, -0.5)
        header = truncation_header(rec)
        assert header == {
            "kind": "trace.meta", "dropped": 1, "recorded": 3, "retained": 2,
        }
        path = tmp_path / "truncated.jsonl"
        write_trace_jsonl(rec, path)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == header
        assert len(lines) == 3  # header + the 2 retained events

    def test_digest_unchanged_for_complete_traces(self):
        """The header must not perturb historical digests."""
        rec = _sample_recorder()
        assert trace_digest(rec.event_dicts()) == trace_digest(rec)

    def test_chrome_exporter_skips_header(self):
        rec = TraceRecorder(capacity=1)
        rec.query_admit(0.1, 1, 1.5, 2)
        rec.query_outcome(0.4, 1, "success", 0.1, 0.3, 0.9, 0)
        events = [json.loads(line) for line in render_trace_jsonl(rec).splitlines()]
        assert events[0]["kind"] == "trace.meta"
        assert all(
            e.get("name") != "trace.meta" for e in chrome_trace_events(events)
        )


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", {"k": "v"}).inc(3)
        reg.gauge("repro_g").set(1.0, 0.5)
        text = render_prometheus(reg)
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{k="v"} 3' in text
        assert "# TYPE repro_g gauge" in text
        assert "repro_g 0.5" in text

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", (1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        text = render_prometheus(reg)
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 7" in text
        assert "repro_h_count 3" in text

    def test_accepts_run_metrics_wrapper(self, tmp_path):
        rm = RunMetrics()
        rm.registry.counter("repro_c_total").inc()
        assert "repro_c_total 1" in render_prometheus(rm)
        path = tmp_path / "prom.txt"
        assert write_prometheus(rm, path) > 0
        assert path.read_text().endswith("\n")

    def test_type_line_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("repro_f_total", {"a": "1"}).inc()
        reg.counter("repro_f_total", {"a": "2"}).inc()
        text = render_prometheus(reg)
        assert text.count("# TYPE repro_f_total counter") == 1

    def test_help_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total").inc()
        text = render_prometheus(reg, help_text={"repro_c_total": "a counter"})
        assert "# HELP repro_c_total a counter" in text


class TestPrometheusQuantiles:
    def test_quantile_lines_emitted(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", (0.1, 0.5, 1.0))
        for v in (0.05, 0.2, 0.3, 0.7, 2.5):
            h.observe(v)
        text = render_prometheus(reg)
        assert 'repro_h_quantile{quantile="0.5"} 0.4' in text
        # p90 rank 4.5 lands in the overflow bucket: highest finite edge.
        assert 'repro_h_quantile{quantile="0.9"} 1' in text
        assert 'repro_h_quantile{quantile="0.99"} 1' in text

    def test_linear_interpolation_inside_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", (10.0, 20.0))
        for v in (12.0, 13.0, 14.0, 15.0):
            h.observe(v)
        # All 4 in (10, 20]; p50 rank 2 -> 10 + 10 * 2/4 = 15.
        assert histogram_quantile(h, 0.5) == pytest.approx(15.0)

    def test_first_bucket_lower_bound_is_observed_min(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", (10.0,))
        h.observe(4.0)
        h.observe(6.0)
        # rank 1 in the first bucket: interpolate from min(4) to edge(10).
        assert histogram_quantile(h, 0.5) == pytest.approx(7.0)

    def test_empty_histogram_no_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", (1.0,))
        assert histogram_quantile(h, 0.5) is None
        assert "_quantile" not in render_prometheus(reg)

    def test_all_overflow_reports_highest_edge(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", (1.0, 2.0))
        h.observe(99.0)
        assert histogram_quantile(h, 0.5) == 2.0


class TestPrometheusEscaping:
    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_e_total", {"k": 'a"b\\c\nd'}).inc()
        text = render_prometheus(reg)
        assert 'repro_e_total{k="a\\"b\\\\c\\nd"} 1' in text
        # One physical line: the newline must not split the exposition.
        assert all(
            line.startswith(("#", "repro_e_total"))
            for line in text.strip().splitlines()
        )

    def test_infinite_and_nan_values(self):
        reg = MetricsRegistry()
        reg.gauge("repro_pos").set(0.0, float("inf"))
        reg.gauge("repro_neg").set(0.0, float("-inf"))
        text = render_prometheus(reg)
        assert "repro_pos +Inf" in text
        assert "repro_neg -Inf" in text
        assert _prom_number(float("nan")) == "NaN"

    def test_infinite_bucket_edge_renders_plus_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", (1.0, float("inf")))
        h.observe(0.5)
        h.observe(99.0)
        text = render_prometheus(reg)
        # The explicit inf edge and the implicit overflow bucket both
        # render as +Inf; counts stay cumulative.
        assert text.count('le="+Inf"') == 2
        # Quantiles never report an infinite estimate.
        q = histogram_quantile(h, 0.99)
        assert q is not None and q == 1.0
