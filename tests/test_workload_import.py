"""Tests for the real-trace importer."""

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.import_trace import (
    TraceFormatError,
    import_access_trace,
)
from repro.workload.queries import build_query_trace

SAMPLE = """\
# cello-like sample: arrival response location [r|w]
100.0  0.010  4096   r
100.5  0.020  8192   r
101.0  0.050  4096   w
102.0, 0.015, 65535, r
103.0  0.012  0
"""


class TestParsing:
    def test_basic_import(self):
        trace = import_access_trace(SAMPLE.splitlines(), n_items=16)
        assert trace.read_count == 4
        assert trace.write_response_times == [0.050]
        assert trace.n_items == 16

    def test_arrivals_rebased_and_sorted(self):
        trace = import_access_trace(SAMPLE.splitlines(), n_items=16)
        arrivals = [record.arrival for record in trace.reads]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)
        assert trace.horizon == pytest.approx(3.0)

    def test_region_mapping_spans_range(self):
        trace = import_access_trace(SAMPLE.splitlines(), n_items=16)
        regions = {record.region for record in trace.reads}
        assert all(0 <= region < 16 for region in regions)
        # location 0 -> region 0, max location -> last region
        assert 0 in regions
        assert 15 in regions

    def test_default_op_is_read(self):
        trace = import_access_trace(["1.0 0.01 5"], n_items=4)
        assert trace.read_count == 1

    def test_comments_and_blanks_ignored(self):
        trace = import_access_trace(
            ["# header", "", "1.0 0.01 5 r", "   "], n_items=4
        )
        assert trace.read_count == 1


class TestErrors:
    def test_malformed_field_count(self):
        with pytest.raises(TraceFormatError):
            import_access_trace(["1.0 0.01"], n_items=4)

    def test_bad_numbers(self):
        with pytest.raises(TraceFormatError):
            import_access_trace(["x 0.01 5"], n_items=4)

    def test_bad_op_flag(self):
        with pytest.raises(TraceFormatError):
            import_access_trace(["1.0 0.01 5 z"], n_items=4)

    def test_nonpositive_response(self):
        with pytest.raises(TraceFormatError):
            import_access_trace(["1.0 0.0 5 r"], n_items=4)

    def test_no_reads(self):
        with pytest.raises(TraceFormatError):
            import_access_trace(["1.0 0.01 5 w"], n_items=4)

    def test_invalid_n_items(self):
        with pytest.raises(ValueError):
            import_access_trace(SAMPLE.splitlines(), n_items=0)


class TestFileAndPipeline:
    def test_import_from_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(SAMPLE)
        trace = import_access_trace(path, n_items=8)
        assert trace.read_count == 4

    def test_feeds_query_trace_builder(self):
        """The imported reads drop straight into the paper's query-trace
        construction (deadlines from response times, 90% freshness)."""
        imported = import_access_trace(SAMPLE.splitlines(), n_items=16)
        query_trace = build_query_trace(
            imported.reads,
            n_items=imported.n_items,
            streams=RandomStreams(3),
            horizon=imported.horizon,
        )
        assert len(query_trace.queries) == imported.read_count
        for query in query_trace.queries:
            assert query.freshness_req == 0.9
            assert query.relative_deadline > query.exec_time
