"""The repo permanently lints itself (tier-1).

``src/repro`` must be simlint-clean; a seeded violation (wall-clock in
``sim/engine.py``) must fail loudly with an actionable message; and the
CLI honors its exit-code and output contract.
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestSelfCheck:
    def test_src_repro_is_clean(self):
        """The determinism/USM contract holds across the whole package."""
        violations, files_checked = lint_paths([SRC_REPRO])
        rendered = "\n".join(v.render() for v in violations)
        assert not violations, f"simlint violations in src/repro:\n{rendered}"
        assert files_checked > 40  # the whole package was actually walked

    def test_cli_exits_zero_on_clean_tree(self):
        result = run_cli(str(SRC_REPRO))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no violations" in result.stdout


@pytest.fixture()
def seeded_tree(tmp_path):
    """A copy of src/repro with a wall-clock call seeded into sim/engine.py."""
    tree = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, tree)
    engine = tree / "sim" / "engine.py"
    engine.write_text(
        engine.read_text(encoding="utf-8")
        + "\n\nimport time\n\n\ndef _leak_wall_clock() -> float:\n"
        "    return time.time()\n",
        encoding="utf-8",
    )
    return tree


class TestSeededViolation:
    def test_seeded_wall_clock_fails_with_actionable_message(self, seeded_tree):
        result = run_cli(str(seeded_tree))
        assert result.returncode == 1
        assert "SL002" in result.stdout
        assert "engine.py" in result.stdout
        assert "Simulator.now" in result.stdout  # tells the author what to do

    def test_seeded_violation_in_json_output(self, seeded_tree):
        result = run_cli(str(seeded_tree), "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["ok"] is False
        assert payload["counts_by_rule"].get("SL002") == 1
        (violation,) = [v for v in payload["violations"] if v["rule"] == "SL002"]
        assert violation["path"].endswith("engine.py")
        assert violation["line"] > 0

    def test_library_api_finds_seeded_violation(self, seeded_tree):
        violations, _ = lint_paths([seeded_tree])
        assert [v.rule_id for v in violations] == ["SL002"]

    def test_suppression_restores_clean_exit(self, seeded_tree):
        engine = seeded_tree / "sim" / "engine.py"
        patched = engine.read_text(encoding="utf-8").replace(
            "return time.time()",
            "return time.time()  # simlint: disable=SL002 -- test fixture",
        )
        engine.write_text(patched, encoding="utf-8")
        assert run_cli(str(seeded_tree)).returncode == 0

    def test_seeded_bare_print_fails_sl007(self, tmp_path):
        tree = tmp_path / "repro"
        shutil.copytree(SRC_REPRO, tree)
        stats = tree / "sim" / "stats.py"
        stats.write_text(
            stats.read_text(encoding="utf-8")
            + "\n\ndef _leak_to_stdout(x: float) -> None:\n    print(x)\n",
            encoding="utf-8",
        )
        result = run_cli(str(tree))
        assert result.returncode == 1
        assert "SL007" in result.stdout
        assert "stats.py" in result.stdout
        assert "logging_setup" in result.stdout


class TestCliContract:
    def test_json_on_clean_tree(self):
        result = run_cli(str(SRC_REPRO), "--format", "json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload["ok"] is True
        assert payload["violations"] == []
        assert payload["files_checked"] > 40

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in (
            "SL001",
            "SL002",
            "SL003",
            "SL004",
            "SL005",
            "SL006",
            "SL007",
        ):
            assert rule_id in result.stdout

    def test_missing_path_exits_2(self):
        result = run_cli("does/not/exist")
        assert result.returncode == 2
        assert "no such file" in result.stderr

    def test_unknown_rule_exits_2(self):
        result = run_cli(str(SRC_REPRO), "--select", "SL999")
        assert result.returncode == 2
        assert "SL999" in result.stderr

    def test_empty_select_exits_2(self, seeded_tree):
        # --select '' must not silently run zero rules and report clean.
        result = run_cli(str(seeded_tree), "--select", "")
        assert result.returncode == 2
        assert "names no rules" in result.stderr

    def test_select_single_rule(self, seeded_tree):
        # Selecting an unrelated rule must not report the seeded SL002.
        result = run_cli(str(seeded_tree), "--select", "SL001")
        assert result.returncode == 0

    def test_single_file_target(self):
        result = run_cli(str(SRC_REPRO / "core" / "usm.py"))
        assert result.returncode == 0
        assert "1 file checked" in result.stdout
