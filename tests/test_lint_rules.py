"""Fixture-level tests for each simlint rule (SL001-SL006).

Every rule gets snippets that MUST trigger and snippets that must NOT,
plus tests for suppression comments, rule selection, and the registry.
Fixture paths are virtual: ``lint_source`` only uses them to decide
which component a file belongs to.
"""

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.base import Rule, all_rules, get_rule, known_rule_ids, register
from repro.lint.walker import LintError, classify_component
from pathlib import Path

CORE = "src/repro/core/fixture.py"
DB = "src/repro/db/fixture.py"
SIM = "src/repro/sim/fixture.py"
WORKLOAD = "src/repro/workload/fixture.py"
EXPERIMENTS = "src/repro/experiments/fixture.py"
ANALYSIS = "src/repro/analysis/fixture.py"


def rules_fired(source, path):
    return sorted({v.rule_id for v in lint_source(source, path)})


def violations(source, path, rule_id):
    return [v for v in lint_source(source, path) if v.rule_id == rule_id]


class TestSL001AmbientRandom:
    def test_module_call_triggers(self):
        src = "import random\nx = random.random()\n"
        found = violations(src, CORE, "SL001")
        assert len(found) == 1
        assert "ambient random.random" in found[0].message

    def test_direct_random_construction_triggers(self):
        src = "import random\nrng = random.Random(42)\n"
        found = violations(src, DB, "SL001")
        assert len(found) == 1
        assert "RandomStreams" in found[0].message

    def test_from_import_and_call_trigger(self):
        src = "from random import gauss\ny = gauss(0.0, 1.0)\n"
        found = violations(src, WORKLOAD, "SL001")
        assert len(found) == 2  # the import and the call

    def test_aliased_module_triggers(self):
        src = "import random as rnd\nx = rnd.randint(1, 6)\n"
        assert len(violations(src, SIM, "SL001")) == 1

    def test_annotation_only_use_is_clean(self):
        src = (
            "import random\n\n"
            "def sample(rng: random.Random) -> float:\n"
            "    return rng.random()\n"
        )
        assert violations(src, CORE, "SL001") == []

    def test_out_of_scope_component_is_clean(self):
        src = "import random\nx = random.random()\n"
        assert violations(src, EXPERIMENTS, "SL001") == []

    def test_rng_module_is_exempt(self):
        src = "import random\nstream = random.Random(7)\n"
        assert violations(src, "src/repro/sim/rng.py", "SL001") == []


class TestSL002WallClock:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nnow = time.time()\n",
            "import time\nstart = time.perf_counter()\n",
            "import time\ntime.sleep(0.1)\n",
            "import datetime\nstamp = datetime.datetime.now()\n",
            "from datetime import datetime\nstamp = datetime.now()\n",
            "from datetime import date\ntoday = date.today()\n",
            "from time import perf_counter\n",
        ],
    )
    def test_wall_clock_triggers(self, snippet):
        assert len(violations(snippet, SIM, "SL002")) >= 1

    def test_virtual_clock_is_clean(self):
        src = (
            "def tick(sim) -> float:\n"
            "    return sim.now + 1.0\n"
        )
        assert violations(src, SIM, "SL002") == []

    def test_experiments_may_measure_wall_time(self):
        src = "import time\nstarted = time.perf_counter()\n"
        assert violations(src, EXPERIMENTS, "SL002") == []

    def test_unrelated_time_attribute_is_clean(self):
        src = "import time\nz = time.struct_time\n"
        assert violations(src, DB, "SL002") == []


class TestSL003UnorderedIteration:
    def test_set_call_triggers(self):
        src = "def pick(items):\n    for x in set(items):\n        return x\n"
        assert len(violations(src, CORE, "SL003")) == 1

    def test_dict_keys_triggers(self):
        src = "def pick(d):\n    for k in d.keys():\n        return k\n"
        found = violations(src, DB, "SL003")
        assert len(found) == 1
        assert ".keys()" in found[0].message

    def test_set_typed_local_triggers(self):
        src = (
            "def pick(a, b):\n"
            "    pending = {a, b}\n"
            "    for x in pending:\n"
            "        return x\n"
        )
        assert len(violations(src, CORE, "SL003")) == 1

    def test_comprehension_over_set_triggers(self):
        src = "def f(xs):\n    return [y for y in set(xs)]\n"
        assert len(violations(src, DB, "SL003")) == 1

    def test_enumerate_descends_into_set(self):
        src = "def f(xs):\n    for i, x in enumerate(set(xs)):\n        return i\n"
        assert len(violations(src, CORE, "SL003")) == 1

    def test_sorted_wrapping_is_clean(self):
        src = "def f(xs):\n    for x in sorted(set(xs)):\n        return x\n"
        assert violations(src, CORE, "SL003") == []

    def test_plain_dict_iteration_is_clean(self):
        src = "def f(d):\n    for k, v in d.items():\n        return k, v\n"
        assert violations(src, DB, "SL003") == []

    def test_list_iteration_is_clean(self):
        src = "def f(xs):\n    for x in list(xs):\n        return x\n"
        assert violations(src, CORE, "SL003") == []

    def test_out_of_scope_component_is_clean(self):
        src = "def f(xs):\n    for x in set(xs):\n        return x\n"
        assert violations(src, WORKLOAD, "SL003") == []


_OUTCOME_PRELUDE = "from repro.db.transactions import Outcome\n\n"


class TestSL004OutcomeExhaustive:
    def test_partial_elif_chain_triggers(self):
        src = _OUTCOME_PRELUDE + (
            "def book(outcome):\n"
            "    if outcome is Outcome.SUCCESS:\n"
            "        return 1\n"
            "    elif outcome is Outcome.REJECTED:\n"
            "        return 2\n"
            "    elif outcome is Outcome.DEADLINE_MISS:\n"
            "        return 3\n"
            "    return 4\n"
        )
        found = violations(src, CORE, "SL004")
        assert len(found) == 1
        assert "DATA_STALE" in found[0].message

    def test_partial_guard_run_triggers(self):
        src = _OUTCOME_PRELUDE + (
            "def book(outcome):\n"
            "    if outcome is Outcome.SUCCESS:\n"
            "        return 1\n"
            "    if outcome is Outcome.REJECTED:\n"
            "        return 2\n"
            "    return 0\n"
        )
        found = violations(src, CORE, "SL004")
        assert len(found) == 1
        assert "DEADLINE_MISS" in found[0].message

    def test_all_four_members_clean(self):
        src = _OUTCOME_PRELUDE + (
            "def book(outcome):\n"
            "    if outcome is Outcome.SUCCESS:\n"
            "        return 1\n"
            "    if outcome is Outcome.REJECTED:\n"
            "        return 2\n"
            "    if outcome is Outcome.DEADLINE_MISS:\n"
            "        return 3\n"
            "    if outcome is Outcome.DATA_STALE:\n"
            "        return 4\n"
            "    raise ValueError(outcome)\n"
        )
        assert violations(src, CORE, "SL004") == []

    def test_else_raise_is_loud_catch_all(self):
        src = _OUTCOME_PRELUDE + (
            "def book(outcome):\n"
            "    if outcome is Outcome.SUCCESS:\n"
            "        return 1\n"
            "    elif outcome in (Outcome.REJECTED, Outcome.DEADLINE_MISS):\n"
            "        return 2\n"
            "    else:\n"
            "        raise ValueError(outcome)\n"
        )
        assert violations(src, CORE, "SL004") == []

    def test_trailing_raise_after_guard_run_is_clean(self):
        src = _OUTCOME_PRELUDE + (
            "def book(outcome):\n"
            "    if outcome is Outcome.SUCCESS:\n"
            "        return 1\n"
            "    if outcome is Outcome.REJECTED:\n"
            "        return 2\n"
            "    raise ValueError(outcome)\n"
        )
        assert violations(src, CORE, "SL004") == []

    def test_membership_tuple_counts_members(self):
        src = _OUTCOME_PRELUDE + (
            "def book(outcome):\n"
            "    if outcome in (Outcome.SUCCESS, Outcome.DATA_STALE):\n"
            "        return 1\n"
            "    elif outcome in (Outcome.REJECTED, Outcome.DEADLINE_MISS):\n"
            "        return 2\n"
            "    return 0\n"
        )
        assert violations(src, CORE, "SL004") == []

    def test_single_guard_is_clean(self):
        src = _OUTCOME_PRELUDE + (
            "def early(outcome):\n"
            "    if outcome is Outcome.REJECTED:\n"
            "        return None\n"
            "    return 1\n"
        )
        assert violations(src, CORE, "SL004") == []

    def test_partial_dict_literal_triggers(self):
        src = _OUTCOME_PRELUDE + (
            "WEIGHTS = {Outcome.SUCCESS: 1.0, Outcome.REJECTED: -1.0}\n"
        )
        found = violations(src, ANALYSIS, "SL004")  # rule applies everywhere
        assert len(found) == 1
        assert "mapping" in found[0].message

    def test_full_dict_literal_clean(self):
        src = _OUTCOME_PRELUDE + (
            "WEIGHTS = {\n"
            "    Outcome.SUCCESS: 1.0,\n"
            "    Outcome.REJECTED: 0.0,\n"
            "    Outcome.DEADLINE_MISS: 0.0,\n"
            "    Outcome.DATA_STALE: 0.0,\n"
            "}\n"
        )
        assert violations(src, CORE, "SL004") == []

    def test_partial_match_triggers(self):
        src = _OUTCOME_PRELUDE + (
            "def book(outcome):\n"
            "    match outcome:\n"
            "        case Outcome.SUCCESS:\n"
            "            return 1\n"
            "        case Outcome.REJECTED:\n"
            "            return 2\n"
        )
        assert len(violations(src, CORE, "SL004")) == 1

    def test_match_with_raising_wildcard_clean(self):
        src = _OUTCOME_PRELUDE + (
            "def book(outcome):\n"
            "    match outcome:\n"
            "        case Outcome.SUCCESS | Outcome.DATA_STALE:\n"
            "            return 1\n"
            "        case Outcome.REJECTED:\n"
            "            return 2\n"
            "        case _:\n"
            "            raise ValueError(outcome)\n"
        )
        assert violations(src, CORE, "SL004") == []

    def test_non_outcome_chain_is_ignored(self):
        src = (
            "def route(policy):\n"
            "    if policy == 'unit':\n"
            "        return 1\n"
            "    elif policy == 'imu':\n"
            "        return 2\n"
            "    return 0\n"
        )
        assert violations(src, CORE, "SL004") == []


class TestSL005EventMutation:
    def test_cancelled_assignment_triggers(self):
        src = "def kill(timer):\n    timer.cancelled = True\n"
        found = violations(src, CORE, "SL005")
        assert len(found) == 1
        assert "Timer.cancel()" in found[0].message

    def test_eventish_time_assignment_triggers(self):
        src = "def retime(event):\n    event.time = 5.0\n"
        assert len(violations(src, DB, "SL005")) == 1

    def test_callback_swap_triggers(self):
        src = "def swap(pending_event, fn):\n    pending_event.callback = fn\n"
        assert len(violations(src, EXPERIMENTS, "SL005")) == 1

    def test_generic_time_attribute_is_clean(self):
        src = "def stamp(record):\n    record.time = 5.0\n"
        # 'record' does not look like an Event; mutation is allowed.
        assert violations(src, CORE, "SL005") == []

    def test_engine_module_is_exempt(self):
        src = "def cancel(self):\n    self._event.cancelled = True\n"
        assert violations(src, "src/repro/sim/engine.py", "SL005") == []

    def test_events_module_is_exempt(self):
        src = "def reset(event):\n    event.cancelled = False\n"
        assert violations(src, "src/repro/sim/events.py", "SL005") == []


class TestSL006PublicAnnotations:
    def test_unannotated_public_function_triggers(self):
        src = "def admit(query, server):\n    return True\n"
        found = violations(src, CORE, "SL006")
        assert len(found) == 1
        assert "query" in found[0].message and "return" in found[0].message

    def test_missing_return_only(self):
        src = "def admit(query: object):\n    return True\n"
        found = violations(src, DB, "SL006")
        assert len(found) == 1
        assert found[0].message.endswith("for: return")

    def test_unannotated_method_self_is_exempt(self):
        src = (
            "class Policy:\n"
            "    def admit(self, query: object) -> bool:\n"
            "        return True\n"
        )
        assert violations(src, CORE, "SL006") == []

    def test_private_function_is_exempt(self):
        src = "def _helper(x):\n    return x\n"
        assert violations(src, CORE, "SL006") == []

    def test_nested_function_is_exempt(self):
        src = (
            "def outer() -> int:\n"
            "    def inner(x):\n"
            "        return x\n"
            "    return inner(1)\n"
        )
        assert violations(src, CORE, "SL006") == []

    def test_dunder_counts_as_public(self):
        src = (
            "class Box:\n"
            "    def __init__(self, size):\n"
            "        self.size = size\n"
        )
        found = violations(src, DB, "SL006")
        assert len(found) == 1

    def test_starargs_need_annotations(self):
        src = "def spread(*args, **kwargs) -> None:\n    pass\n"
        found = violations(src, CORE, "SL006")
        assert len(found) == 1
        assert "*args" in found[0].message and "**kwargs" in found[0].message

    def test_out_of_scope_component_is_clean(self):
        src = "def helper(x):\n    return x\n"
        assert violations(src, EXPERIMENTS, "SL006") == []


class TestSL007BarePrint:
    def test_print_in_library_code_triggers(self):
        src = "def report(x):\n    print(x)\n"
        found = violations(src, CORE, "SL007")
        assert len(found) == 1
        assert "logging_setup" in found[0].message

    def test_print_outside_sim_components_triggers_too(self):
        # SL007 patrols every component, not just the simulation path.
        src = "print('progress')\n"
        assert len(violations(src, EXPERIMENTS, "SL007")) == 1
        assert len(violations(src, ANALYSIS, "SL007")) == 1

    def test_builtins_print_triggers(self):
        src = "import builtins\nbuiltins.print('hi')\n"
        assert len(violations(src, DB, "SL007")) == 1

    def test_main_module_is_exempt(self):
        src = "print('the artifact itself')\n"
        assert violations(src, "src/repro/experiments/__main__.py", "SL007") == []

    def test_cli_module_is_exempt(self):
        src = "print('usage: ...')\n"
        assert violations(src, "src/repro/lint/cli.py", "SL007") == []

    def test_logger_calls_are_clean(self):
        src = (
            "from repro.obs.logging_setup import get_logger\n"
            "_log = get_logger(__name__)\n"
            "def report(x):\n"
            "    _log.info('%s', x)\n"
        )
        assert violations(src, CORE, "SL007") == []

    def test_shadowed_print_is_clean(self):
        src = (
            "def print(*args):\n"
            "    pass\n"
            "print('not the builtin')\n"
        )
        assert violations(src, CORE, "SL007") == []

    def test_docstring_mention_is_clean(self):
        src = '"""Example::\n\n    print(report)\n"""\nx = 1\n'
        assert violations(src, SIM, "SL007") == []

    def test_suppression_comment_silences(self):
        src = "print('x')  # simlint: disable=SL007 -- debugging aid\n"
        assert violations(src, CORE, "SL007") == []


class TestSuppression:
    def test_line_disable_silences_rule(self):
        src = "import time\nnow = time.time()  # simlint: disable=SL002\n"
        assert violations(src, SIM, "SL002") == []

    def test_line_disable_with_justification(self):
        src = (
            "import time\n"
            "now = time.time()  # simlint: disable=SL002 -- cache warmup, not sim state\n"
        )
        assert violations(src, SIM, "SL002") == []

    def test_line_disable_all_rules(self):
        src = "import time\nnow = time.time()  # simlint: disable\n"
        assert violations(src, SIM, "SL002") == []

    def test_wrong_rule_id_does_not_silence(self):
        src = "import time\nnow = time.time()  # simlint: disable=SL001\n"
        assert len(violations(src, SIM, "SL002")) == 1

    def test_file_level_disable(self):
        src = (
            "# simlint: disable-file=SL002\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert violations(src, SIM, "SL002") == []

    def test_file_disable_only_named_rule(self):
        src = (
            "# simlint: disable-file=SL001\n"
            "import time\n"
            "a = time.time()\n"
        )
        assert len(violations(src, SIM, "SL002")) == 1

    def test_sf_ids_parse_in_the_shared_grammar(self):
        """Flow-rule ids ride the same suppression comments; naming one
        must neither crash the per-file layer nor silence its rules."""
        src = (
            "import time\n"
            "now = time.time()  # simlint: disable=SF002 -- flow-layer id only\n"
        )
        assert len(violations(src, SIM, "SL002")) == 1

    def test_mixed_sl_and_sf_ids_on_one_line(self):
        src = (
            "import time\n"
            "now = time.time()  # simlint: disable=SL002,SF002 -- both layers\n"
        )
        assert violations(src, SIM, "SL002") == []


class TestSuppressionWarnings:
    def test_unknown_rule_id_is_reported(self):
        from repro.lint.walker import suppression_warnings

        warnings = suppression_warnings(
            "import time\nnow = time.time()  # simlint: disable=SL099\n",
            "mod.py",
            known_ids={"SL002", "SF002"},
        )
        assert warnings == ["mod.py:2: suppression names unknown rule 'SL099'"]

    def test_known_ids_from_either_layer_do_not_warn(self):
        from repro.lint.walker import suppression_warnings

        warnings = suppression_warnings(
            "a = 1  # simlint: disable=SL002,SF002\n",
            "mod.py",
            known_ids={"SL002", "SF002"},
        )
        assert warnings == []

    def test_file_level_unknown_id_is_reported_at_line_one(self):
        from repro.lint.walker import suppression_warnings

        warnings = suppression_warnings(
            "# simlint: disable-file=XX123\na = 1\n",
            "mod.py",
            known_ids={"SL002"},
        )
        assert warnings == ["mod.py:1: suppression names unknown rule 'XX123'"]

    def test_prose_in_docstring_examples_does_not_warn(self):
        """The grammar examples in walker.py's own docstring parse as
        suppressions with prose trailing the id; prose is not a typo."""
        from repro.lint.walker import suppression_warnings

        src = '"""\n# simlint: disable=SL001            silence SL001 on this line\n"""\n'
        assert suppression_warnings(src, "m.py", {"SL002"}) == []

    def test_bare_disable_never_warns(self):
        from repro.lint.walker import suppression_warnings

        assert (
            suppression_warnings("a = 1  # simlint: disable\n", "m.py", {"SL002"})
            == []
        )


class TestSarifExport:
    def test_per_file_violations_render_as_sarif(self):
        import json

        from repro.lint.sarif import to_sarif

        found = violations("import time\nnow = time.time()\n", SIM, "SL002")
        sarif = to_sarif(found, [("SL002", "no wall-clock reads")], "simlint")
        text = json.dumps(sarif)  # must be JSON-serializable end to end
        assert json.loads(text)["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["SL002"]
        (result,) = run["results"]
        assert result["ruleId"] == "SL002"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] >= 1

    def test_empty_run_is_valid(self):
        from repro.lint.sarif import to_sarif

        sarif = to_sarif([], [("SL001", "x")], "simlint")
        assert sarif["runs"][0]["results"] == []


class TestConfigAndRegistry:
    def test_select_restricts_rules(self):
        src = "import time\nimport random\na = time.time()\nb = random.random()\n"
        config = LintConfig.from_rule_ids(select=["SL002"])
        found = lint_source(src, SIM, config)
        assert {v.rule_id for v in found} == {"SL002"}

    def test_ignore_drops_rule(self):
        src = "import time\na = time.time()\n"
        config = LintConfig.from_rule_ids(ignore=["SL002"])
        assert lint_source(src, SIM, config) == []

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="SL999"):
            LintConfig.from_rule_ids(select=["SL999"])

    def test_all_rules_registered(self):
        assert known_rule_ids() == [
            "SL001",
            "SL002",
            "SL003",
            "SL004",
            "SL005",
            "SL006",
            "SL007",
        ]
        for rule in all_rules():
            assert rule.summary

    def test_get_rule(self):
        assert get_rule("SL004").rule_id == "SL004"

    def test_duplicate_registration_rejected(self):
        class Impostor(Rule):
            rule_id = "SL001"
            summary = "impostor"

        with pytest.raises(ValueError, match="duplicate rule id"):
            register(Impostor)

    def test_component_overrides(self):
        src = "import time\na = time.time()\n"
        config = LintConfig(component_overrides={"SL002": frozenset({"experiments"})})
        assert lint_source(src, SIM, config) == []
        assert len(lint_source(src, EXPERIMENTS, config)) == 1


class TestWalkerBasics:
    def test_classify_importable_tree(self):
        assert classify_component(Path("src/repro/db/server.py")) == "db"
        assert classify_component(Path("src/repro/__init__.py")) is None

    def test_classify_fixture_tree(self):
        assert classify_component(Path("/tmp/x/sim/engine.py")) == "sim"
        assert classify_component(Path("/tmp/elsewhere/file.py")) is None

    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="syntax error"):
            lint_source("def broken(:\n", CORE)
