"""Tests for Update Frequency Modulation (paper Section 3.4)."""

import random

import pytest

from repro.core.modulation import UpdateFrequencyModulator
from repro.core.tickets import TicketBook
from repro.db.items import ItemTable


def make_modulator(n=4, escalate=False, max_stretch=100.0):
    items = ItemTable.uniform(n, ideal_period=10.0, update_exec_time=1.0)
    tickets = TicketBook(n)
    modulator = UpdateFrequencyModulator(
        items, tickets, random.Random(0), max_stretch=max_stretch
    )
    modulator.escalate = escalate
    return items, tickets, modulator


class TestDegrade:
    def test_no_tickets_no_victims(self):
        _, _, modulator = make_modulator()
        assert modulator.degrade(rounds=5) == []
        assert modulator.degrade_events == 0

    def test_degrade_stretches_victim_period_eq9(self):
        items, tickets, modulator = make_modulator()
        tickets.on_update(2, update_exec_time=1.0)
        victims = modulator.degrade(rounds=1)
        assert victims == [2]
        assert items[2].current_period == pytest.approx(11.0)
        assert modulator.degrade_events == 1

    def test_degrade_respects_cap(self):
        items, tickets, modulator = make_modulator(max_stretch=2.0)
        tickets.on_update(0, update_exec_time=1.0)
        for _ in range(30):
            modulator.degrade(rounds=1)
        assert items[0].current_period <= 2.0 * items[0].ideal_period * 1.1

    def test_protected_items_not_picked(self):
        items, tickets, modulator = make_modulator()
        tickets.on_update(0, update_exec_time=1.0)
        tickets.on_query_access(1, cpu_utilization=0.5)  # negative ticket
        for _ in range(20):
            modulator.degrade(rounds=1)
        assert not items[1].is_degraded

    def test_escalation_reaches_protected_items(self):
        items, tickets, modulator = make_modulator(escalate=True, max_stretch=1.5)
        tickets.on_update(0, update_exec_time=1.0)
        tickets.on_query_access(1, cpu_utilization=0.2)  # mildly protected
        tickets.on_query_access(2, cpu_utilization=2.0)  # strongly protected
        for _ in range(40):
            modulator.degrade(rounds=4)
        assert items[0].is_degraded
        assert items[1].is_degraded  # reached once the threshold walked down
        assert tickets.threshold < 0.0

    def test_without_escalation_threshold_stays_zero(self):
        items, tickets, modulator = make_modulator(escalate=False, max_stretch=1.5)
        tickets.on_update(0, update_exec_time=1.0)
        tickets.on_query_access(1, cpu_utilization=0.2)
        for _ in range(40):
            modulator.degrade(rounds=4)
        assert tickets.threshold == 0.0
        assert not items[1].is_degraded

    def test_invalid_rounds(self):
        _, _, modulator = make_modulator()
        with pytest.raises(ValueError):
            modulator.degrade(rounds=0)

    def test_escalation_respects_floor(self):
        """Items with tickets below the escalation floor are never
        exposed no matter how long overload persists."""
        items, tickets, modulator = make_modulator(escalate=True, max_stretch=1.2)
        modulator.escalation_floor = -1.0
        tickets.on_update(0, update_exec_time=1.0)
        tickets.on_query_access(1, cpu_utilization=0.6)  # ticket -0.6 (exposable)
        for _ in range(5):
            tickets.on_query_access(2, cpu_utilization=0.6)  # far below floor
        for _ in range(60):
            modulator.degrade(rounds=4)
        assert tickets.threshold >= -1.0
        assert items[1].is_degraded  # above the floor: eventually reached
        assert not items[2].is_degraded  # below the floor: protected forever

    def test_relax_never_overshoots_zero(self):
        """Round-trip audit: however the threshold got down, raising it
        clamps at exactly 0.0 — a relax step larger than the remaining
        distance must not push tau positive (a positive tau would
        *exclude* every item from the lottery, inverting escalation)."""
        _, tickets, modulator = make_modulator(escalate=True)
        tickets.on_update(0, update_exec_time=1.0)
        for _ in range(3):
            tickets.on_query_access(1, cpu_utilization=0.6)  # ticket -1.8
        # Drive tau down to an awkward value no multiple of the step
        # lands on, then relax past it.
        tickets.lower_threshold(2.5 * modulator.threshold_step)
        assert tickets.threshold < 0.0
        seen = []
        for _ in range(5):
            modulator.relax_threshold()
            seen.append(tickets.threshold)
        assert all(value <= 0.0 for value in seen)
        assert seen[-1] == 0.0
        # And relaxing at exactly zero stays put (guard, not a cycle).
        modulator.relax_threshold()
        assert tickets.threshold == 0.0

    def test_threshold_round_trip_restores_lottery(self):
        """Escalate then fully relax: the lottery must price items
        exactly as before the excursion (threshold back to 0 shifts
        every weight back by the same amount it shifted down)."""
        _, tickets, modulator = make_modulator(escalate=True)
        tickets.on_update(0, update_exec_time=1.0)
        tickets.on_query_access(1, cpu_utilization=0.4)
        before = modulator.victim_distribution()
        tickets.lower_threshold(modulator.threshold_step)
        assert modulator.victim_distribution() != before  # excursion is real
        while tickets.threshold < 0.0:
            modulator.relax_threshold()
        assert tickets.threshold == 0.0
        assert modulator.victim_distribution() == before

    def test_relax_threshold_walks_back_to_zero(self):
        items, tickets, modulator = make_modulator(escalate=True, max_stretch=1.2)
        tickets.on_update(0, update_exec_time=1.0)
        tickets.on_query_access(1, cpu_utilization=0.3)
        for _ in range(20):
            modulator.degrade(rounds=2)
        assert tickets.threshold < 0.0
        for _ in range(10):
            modulator.relax_threshold()
        assert tickets.threshold == 0.0


class TestUpgrade:
    def test_upgrade_restores_periods_eq10(self):
        items, tickets, modulator = make_modulator()
        tickets.on_update(0, update_exec_time=1.0)
        modulator.degrade(rounds=1)  # period 11.0
        changed = modulator.upgrade_all()
        assert changed == [0]
        assert items[0].current_period == pytest.approx(10.0)
        assert modulator.upgrade_events == 1

    def test_upgrade_noop_when_nothing_degraded(self):
        _, _, modulator = make_modulator()
        assert modulator.upgrade_all() == []
        assert modulator.upgrade_events == 0

    def test_upgrade_relaxes_escalation_threshold(self):
        items, tickets, modulator = make_modulator(escalate=True, max_stretch=1.2)
        tickets.on_query_access(0, cpu_utilization=1.0)
        tickets.on_update(1, update_exec_time=1.0)
        for _ in range(30):
            modulator.degrade(rounds=2)
        assert tickets.threshold < 0.0
        before = tickets.threshold
        modulator.upgrade_all()
        assert tickets.threshold > before

    def test_deep_degradation_recovers_over_several_upgrades(self):
        items, tickets, modulator = make_modulator()
        tickets.on_update(0, update_exec_time=1.0)
        for _ in range(25):
            modulator.degrade(rounds=1)
        deep = items[0].current_period
        assert deep > 50.0
        upgrades = 0
        while items[0].is_degraded and upgrades < 100:
            modulator.upgrade_all()
            upgrades += 1
        assert 2 <= upgrades < 100  # gradual, not a one-shot wipe


class TestDiagnostics:
    def test_degraded_count(self):
        items, tickets, modulator = make_modulator()
        tickets.on_update(0, update_exec_time=1.0)
        tickets.on_update(1, update_exec_time=1.0)
        for _ in range(10):
            modulator.degrade(rounds=2)
        assert modulator.degraded_count() == len(items.degraded_items())

    def test_victim_distribution_normalized(self):
        _, tickets, modulator = make_modulator()
        assert modulator.victim_distribution() is None
        tickets.on_update(0, update_exec_time=1.0)
        tickets.on_update(1, update_exec_time=1.0)
        dist = modulator.victim_distribution()
        assert sum(dist) == pytest.approx(1.0)

    def test_size_mismatch_rejected(self):
        items = ItemTable.uniform(4, ideal_period=10.0, update_exec_time=1.0)
        with pytest.raises(ValueError):
            UpdateFrequencyModulator(items, TicketBook(3), random.Random(0))
