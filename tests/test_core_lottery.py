"""Tests for the Fenwick-tree lottery scheduler."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lottery import LotteryScheduler


class TestWeights:
    def test_initial_total_zero(self):
        lottery = LotteryScheduler(8)
        assert lottery.total == 0.0
        assert lottery.sample(random.Random(1)) is None

    def test_set_and_read_weight(self):
        lottery = LotteryScheduler(4)
        lottery.set_weight(2, 3.5)
        assert lottery.weight(2) == 3.5
        assert lottery.total == pytest.approx(3.5)

    def test_add_weight_clamps_at_zero(self):
        lottery = LotteryScheduler(4)
        lottery.set_weight(1, 1.0)
        lottery.add_weight(1, -5.0)
        assert lottery.weight(1) == 0.0

    def test_negative_weight_rejected(self):
        lottery = LotteryScheduler(4)
        with pytest.raises(ValueError):
            lottery.set_weight(0, -1.0)

    def test_index_bounds(self):
        lottery = LotteryScheduler(4)
        with pytest.raises(IndexError):
            lottery.set_weight(4, 1.0)

    def test_rebuild(self):
        lottery = LotteryScheduler(3)
        lottery.rebuild([1.0, 2.0, 3.0])
        assert lottery.total == pytest.approx(6.0)
        assert lottery.weights() == [1.0, 2.0, 3.0]

    def test_rebuild_length_mismatch(self):
        lottery = LotteryScheduler(3)
        with pytest.raises(ValueError):
            lottery.rebuild([1.0])


class TestSampling:
    def test_single_positive_slot_always_drawn(self):
        lottery = LotteryScheduler(5)
        lottery.set_weight(3, 1.0)
        rng = random.Random(0)
        assert all(lottery.sample(rng) == 3 for _ in range(50))

    def test_zero_weight_slot_never_drawn(self):
        lottery = LotteryScheduler(4)
        lottery.set_weight(0, 5.0)
        lottery.set_weight(2, 5.0)
        rng = random.Random(0)
        draws = {lottery.sample(rng) for _ in range(200)}
        assert draws <= {0, 2}

    def test_empirical_proportionality(self):
        lottery = LotteryScheduler(3)
        lottery.rebuild([1.0, 2.0, 7.0])
        rng = random.Random(42)
        counts = Counter(lottery.sample(rng) for _ in range(10000))
        assert counts[2] / 10000 == pytest.approx(0.7, abs=0.03)
        assert counts[1] / 10000 == pytest.approx(0.2, abs=0.03)
        assert counts[0] / 10000 == pytest.approx(0.1, abs=0.03)

    @settings(max_examples=30)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=64),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_sample_lands_on_positive_weight(self, weights, seed):
        lottery = LotteryScheduler(len(weights))
        lottery.rebuild(weights)
        rng = random.Random(seed)
        result = lottery.sample(rng)
        if sum(weights) <= 0:
            assert result is None
        else:
            assert result is not None
            assert weights[result] > 0

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=64))
    def test_property_total_matches_sum(self, weights):
        lottery = LotteryScheduler(len(weights))
        for index, weight in enumerate(weights):
            lottery.set_weight(index, weight)
        assert lottery.total == pytest.approx(sum(weights), rel=1e-9, abs=1e-9)

    def test_incremental_updates_match_rebuild(self):
        rng = random.Random(7)
        n = 33
        incremental = LotteryScheduler(n)
        reference = [0.0] * n
        for _ in range(500):
            index = rng.randrange(n)
            weight = rng.random() * 10
            incremental.set_weight(index, weight)
            reference[index] = weight
        rebuilt = LotteryScheduler(n)
        rebuilt.rebuild(reference)
        draw_rng_a, draw_rng_b = random.Random(1), random.Random(1)
        for _ in range(100):
            assert incremental.sample(draw_rng_a) == rebuilt.sample(draw_rng_b)
