"""Tests for the graceful-degradation metrics (synthetic records)."""

import pytest

from repro.core.usm import PenaltyProfile
from repro.db.transactions import Outcome, QueryRecord
from repro.faults import FaultScenario, ServerSlowdown
from repro.faults.metrics import degradation_metrics, usm_time_series


def record(finish, outcome):
    return QueryRecord(
        txn_id=0,
        arrival=max(0.0, finish - 1.0),
        items=(0,),
        exec_time=0.5,
        relative_deadline=1.0,
        freshness_req=0.9,
        outcome=outcome,
        finish_time=finish,
        freshness=1.0,
    )


def successes(times):
    return [record(t, Outcome.SUCCESS) for t in times]


def misses(times):
    return [record(t, Outcome.DEADLINE_MISS) for t in times]


NAIVE = PenaltyProfile.naive()  # success=1, everything else 0 -> USM in [0,1]


def scenario(start=40.0, end=60.0):
    return FaultScenario(
        name="s", slowdowns=[ServerSlowdown(start=start, end=end, rate=0.5)]
    )


class TestUsmTimeSeries:
    def test_buckets_average_contributions(self):
        records = successes([1.0, 2.0]) + misses([7.0])
        series = usm_time_series(records, NAIVE, horizon=20.0, bucket=5.0)
        assert [t for t, _ in series] == [0.0, 5.0, 10.0, 15.0]
        assert series[0][1] == pytest.approx(1.0)
        assert series[1][1] == pytest.approx(0.0)
        assert series[2][1] is None  # idle, not zero
        assert series[3][1] is None

    def test_late_finishers_land_in_the_last_bucket(self):
        series = usm_time_series(
            successes([25.0]), NAIVE, horizon=20.0, bucket=5.0
        )
        assert series[-1][1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            usm_time_series([], NAIVE, horizon=20.0, bucket=0.0)
        with pytest.raises(ValueError):
            usm_time_series([], NAIVE, horizon=0.0)


class TestDegradationMetrics:
    def test_dip_and_clean_recovery(self):
        # Healthy until t=40 (all successes), a dip during the fault,
        # healthy again from t=60 on.
        records = (
            successes([t + 0.5 for t in range(0, 40, 2)])
            + misses([42.0, 47.0, 52.0, 57.0])
            + successes([62.0, 67.0, 72.0, 77.0, 82.0, 87.0])
        )
        out = degradation_metrics(
            records, NAIVE, scenario(), horizon=90.0, bucket=5.0
        )
        window = out["windows"][0]
        assert window["label"] == "server-slowdown-0"
        assert window["baseline_usm"] == pytest.approx(1.0)
        assert window["dip_depth"] == pytest.approx(1.0)
        assert window["min_usm"] == pytest.approx(0.0)
        assert window["time_below"] == pytest.approx(20.0)  # 4 bad buckets
        # First in-band bucket at/after the fault end is t=60.
        assert window["recovery_time"] == pytest.approx(0.0)

    def test_delayed_recovery_is_measured_from_fault_end(self):
        records = (
            successes([t + 0.5 for t in range(0, 40, 2)])
            + misses([42.0, 47.0, 52.0, 57.0, 62.0, 67.0])  # overhang to t=70
            + successes([72.0, 77.0, 82.0, 87.0])
        )
        out = degradation_metrics(
            records, NAIVE, scenario(), horizon=90.0, bucket=5.0
        )
        window = out["windows"][0]
        # In-band again from the t=70 bucket; the fault ended at 60.
        assert window["recovery_time"] == pytest.approx(10.0)
        assert window["time_below"] == pytest.approx(30.0)

    def test_never_recovering_reports_none(self):
        records = successes([t + 0.5 for t in range(0, 40, 2)]) + misses(
            [45.0, 55.0, 65.0, 75.0, 85.0]
        )
        out = degradation_metrics(
            records, NAIVE, scenario(), horizon=90.0, bucket=5.0
        )
        assert out["windows"][0]["recovery_time"] is None

    def test_single_inband_bucket_does_not_count_as_settled(self):
        # One good bucket sandwiched between bad ones must not satisfy
        # the settle requirement (settle_buckets=2).
        records = (
            successes([t + 0.5 for t in range(0, 40, 2)])
            + misses([45.0, 55.0, 65.0])
            + successes([72.0])  # lone good bucket
            + misses([77.0, 82.0, 87.0])
        )
        out = degradation_metrics(
            records, NAIVE, scenario(), horizon=90.0, bucket=5.0
        )
        assert out["windows"][0]["recovery_time"] is None

    def test_empty_buckets_do_not_break_a_recovery_streak(self):
        records = (
            successes([t + 0.5 for t in range(0, 40, 2)])
            + misses([45.0])
            + successes([62.0])  # in band ...
            # ... nothing in [65, 85) ...
            + successes([87.0])  # ... still in band: settled
        )
        out = degradation_metrics(
            records, NAIVE, scenario(), horizon=90.0, bucket=5.0
        )
        assert out["windows"][0]["recovery_time"] == pytest.approx(0.0)

    def test_band_defaults_to_fraction_of_usm_range(self):
        records = successes([1.0])
        out = degradation_metrics(records, NAIVE, scenario(), horizon=90.0)
        assert out["band"] == pytest.approx(0.05 * NAIVE.usm_range)

    def test_payload_shape(self):
        out = degradation_metrics(
            successes([1.0]), NAIVE, scenario(), horizon=20.0, bucket=5.0
        )
        assert out["scenario"] == "s"
        assert len(out["usm_series"]) == 4
        assert set(out["usm_series"][0]) == {"t", "usm"}
