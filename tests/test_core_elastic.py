"""Tests for the elastic-scheduling baseline policy."""

import pytest

from repro.core.elastic import ElasticConfig, ElasticPolicy
from repro.db.items import ItemTable
from repro.db.server import ARRIVAL_EVENT_PRIORITY, Server, ServerConfig
from repro.db.transactions import Outcome, QueryTransaction
from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import run_experiment
from repro.sim.engine import Simulator


def build(config=None, n_items=4, period=1.0, update_exec=0.4):
    sim = Simulator()
    items = ItemTable.uniform(n_items, ideal_period=period, update_exec_time=update_exec)
    policy = ElasticPolicy(config or ElasticConfig(control_period=1.0))
    server = Server(sim, items, policy, ServerConfig())
    return sim, server, policy


def feed_periodic_updates(sim, server, n_items, period, horizon):
    for item_id in range(n_items):
        t = 0.1 + 0.01 * item_id
        while t <= horizon:
            sim.schedule(
                t,
                lambda i=item_id: server.source_update_arrival(i),
                priority=ARRIVAL_EVENT_PRIORITY,
            )
            t += period


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ElasticConfig(target_update_share=0.0)
        with pytest.raises(ValueError):
            ElasticConfig(control_period=0.0)
        with pytest.raises(ValueError):
            ElasticConfig(step=1.5)
        with pytest.raises(ValueError):
            ElasticConfig(max_stretch=0.5)


class TestSpring:
    def test_compresses_under_update_overload(self):
        sim, server, policy = build()
        feed_periodic_updates(sim, server, 4, period=0.5, horizon=10.0)
        sim.run(until=10.5)
        assert policy.stretch > 1.0
        assert policy.compressions > 0
        assert server.items[0].updates_dropped > 0

    def test_relaxes_when_load_subsides(self):
        sim, server, policy = build()
        feed_periodic_updates(sim, server, 4, period=0.5, horizon=5.0)
        sim.run(until=5.5)
        stretched = policy.stretch
        assert stretched > 1.0
        sim.run(until=20.0)  # quiet period: spring relaxes
        assert policy.stretch < stretched
        assert policy.relaxations > 0

    def test_stretch_is_uniform_not_selective(self):
        """Unlike UNIT, elastic scheduling cannot favour hot items —
        every item drops the same fraction under overload."""
        sim, server, policy = build(n_items=2)
        feed_periodic_updates(sim, server, 2, period=0.5, horizon=20.0)
        sim.run(until=21.0)
        a, b = server.items[0], server.items[1]
        assert a.updates_dropped == pytest.approx(b.updates_dropped, abs=3)

    def test_idle_system_never_stretches(self):
        sim, server, policy = build()
        feed_periodic_updates(sim, server, 1, period=5.0, horizon=20.0)
        sim.run(until=21.0)
        assert policy.stretch == 1.0
        assert server.items[0].updates_dropped == 0


class TestAdmission:
    def test_feasibility_rejects_impossible_query(self):
        sim, server, policy = build()
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=1.0,
            exec_time=2.0,
            items=(0,),
            relative_deadline=1.0,
        )
        sim.schedule(1.0, lambda: server.submit_query(txn), priority=ARRIVAL_EVENT_PRIORITY)
        sim.run(until=2.0)
        assert server.outcome_counts[Outcome.REJECTED] == 1

    def test_admit_all_variant(self):
        sim, server, policy = build(ElasticConfig(feasibility_check=False))
        txn = QueryTransaction(
            txn_id=server.next_txn_id(),
            arrival=1.0,
            exec_time=2.0,
            items=(0,),
            relative_deadline=1.0,
        )
        sim.schedule(1.0, lambda: server.submit_query(txn), priority=ARRIVAL_EVENT_PRIORITY)
        sim.run(until=5.0)
        assert server.outcome_counts[Outcome.DEADLINE_MISS] == 1


class TestEndToEnd:
    def test_runner_integration(self):
        report = run_experiment(
            ExperimentConfig(
                policy="elastic", update_trace="med-unif", seed=5, scale=SCALES["smoke"]
            )
        )
        assert report.policy_name == "Elastic"
        assert sum(report.outcome_counts.values()) == report.queries_submitted
        assert report.updates_dropped > 0  # spring engaged at 75% volume

    def test_unit_beats_uniform_stretching(self):
        """The ablation claim: selective (lottery) degradation beats
        uniform elastic stretching on the skewed workload."""
        elastic = run_experiment(
            ExperimentConfig(
                policy="elastic", update_trace="med-unif", seed=5, scale=SCALES["small"]
            )
        )
        unit = run_experiment(
            ExperimentConfig(
                policy="unit", update_trace="med-unif", seed=5, scale=SCALES["small"]
            )
        )
        assert unit.usm > elastic.usm