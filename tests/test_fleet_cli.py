"""Tests for the ``python -m repro.fleet`` CLI."""

import json

import pytest

from repro.fleet.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == "smoke"
        assert args.shards == 2
        assert args.router == "primary"

    def test_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--router", "nope"])


class TestRunCommand:
    def test_run_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        code = main(
            [
                "run",
                "--scale",
                "smoke",
                "--shards",
                "2",
                "--replication",
                "2",
                "--router",
                "freshness",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "fleet: 2 shard(s)" in captured
        assert "digest:" in captured
        payload = json.loads(out.read_text())
        assert payload["n_shards"] == 2
        assert payload["router_policy"] == "freshness"
        assert len(payload["shard_digests"]) == 2
        assert payload["merged"]["queries"] == sum(
            shard["queries"] for shard in payload["shards"]
        )


class TestSmokeCommand:
    def test_smoke_gate_passes_and_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "smoke.json"
        code = main(["smoke", "--scale", "smoke", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "1-shard equivalence: ok" in captured
        payload = json.loads(out.read_text())
        assert set(payload["cells"]) == {"low-unif", "med-unif"}
        for cell in payload["cells"].values():
            assert cell["n_shards"] == 2
