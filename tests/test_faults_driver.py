"""Tests for the runtime fault driver and server service-rate control."""

import pytest

from repro.db.items import ItemTable
from repro.db.policy_api import ServerPolicy
from repro.db.server import Server, ServerConfig
from repro.db.transactions import QueryTransaction
from repro.faults import FaultScenario, HotspotShift, ServerSlowdown
from repro.faults.driver import FaultDriver
from repro.obs.trace import TraceRecorder
from repro.sim.engine import Simulator


class _Inert(ServerPolicy):
    def __init__(self):
        self.fault_calls = []

    def admit_query(self, query, server):
        return True

    def should_apply_update(self, item, server):
        return True

    def on_fault(self, label, active, server):
        self.fault_calls.append((server.now, label, active))


def make_server():
    sim = Simulator()
    items = ItemTable.uniform(4, ideal_period=100.0, update_exec_time=0.5)
    policy = _Inert()
    return sim, policy, Server(sim, items, policy, ServerConfig())


def submit(server, exec_time=1.0, deadline=100.0, at=0.0):
    query = QueryTransaction(
        txn_id=server.next_txn_id(),
        arrival=at,
        exec_time=exec_time,
        items=(0,),
        relative_deadline=deadline,
    )
    server.submit_query(query)
    return query


class TestSetServiceRate:
    def test_slowdown_stretches_completion(self):
        sim, _, server = make_server()
        sim.schedule(0.0, lambda: submit(server, exec_time=1.0))
        # Halve the rate at t=0.5: half the work is done, the other
        # half now takes 1.0s -> finish at 1.5.
        sim.schedule(0.5, lambda: server.set_service_rate(0.5))
        sim.run()
        record = server.records[0]
        assert record.finish_time == pytest.approx(1.5)
        assert record.outcome.name == "SUCCESS"

    def test_restore_rate_midway(self):
        sim, _, server = make_server()
        sim.schedule(0.0, lambda: submit(server, exec_time=1.0))
        sim.schedule(0.5, lambda: server.set_service_rate(0.5))
        sim.schedule(1.0, lambda: server.set_service_rate(1.0))
        # 0.5 work by t=0.5, plus 0.25 at half rate by t=1.0; the
        # remaining 0.25 at full rate -> finish at 1.25.
        sim.run()
        assert server.records[0].finish_time == pytest.approx(1.25)

    def test_busy_time_is_occupancy_not_work(self):
        sim, _, server = make_server()
        sim.schedule(0.0, lambda: submit(server, exec_time=1.0))
        sim.schedule(0.0, lambda: server.set_service_rate(0.5))
        sim.run()
        # The CPU was occupied for 2 sim-seconds even though only 1s of
        # work was retired.
        assert server.busy_time() == pytest.approx(2.0)

    def test_invalid_rate_rejected(self):
        _, _, server = make_server()
        with pytest.raises(ValueError):
            server.set_service_rate(0.0)
        with pytest.raises(ValueError):
            server.set_service_rate(-1.0)


class TestFaultDriver:
    def scenario(self):
        return FaultScenario(
            name="s",
            slowdowns=[ServerSlowdown(start=10.0, end=20.0, rate=0.5)],
            hotspot_shifts=[HotspotShift(at=15.0, rotation=1)],
        )

    def test_schedules_one_event_per_boundary(self):
        sim, _, server = make_server()
        driver = FaultDriver(self.scenario(), server)
        # Slowdown start+end, instantaneous shift start only.
        assert driver.install(sim) == 3

    def test_applies_and_reverts_the_slowdown(self):
        sim, _, server = make_server()
        driver = FaultDriver(self.scenario(), server)
        driver.install(sim)
        sim.schedule(12.0, lambda: rates.append(server.service_rate))
        sim.schedule(25.0, lambda: rates.append(server.service_rate))
        rates = []
        sim.run()
        assert rates == [0.5, 1.0]
        assert driver.starts_fired == 2
        assert driver.ends_fired == 2  # shift closes itself

    def test_overlapping_slowdowns_compose(self):
        scenario = FaultScenario(
            name="s",
            slowdowns=[
                ServerSlowdown(start=0.0, end=20.0, rate=0.5),
                ServerSlowdown(start=5.0, end=10.0, rate=0.5),
            ],
        )
        sim, _, server = make_server()
        FaultDriver(scenario, server).install(sim)
        observed = []
        for t in (1.0, 6.0, 12.0, 25.0):
            sim.schedule(t, lambda: observed.append(server.service_rate))
        sim.run()
        assert observed == [0.5, 0.25, 0.5, 1.0]

    def test_overlapping_slowdowns_ending_out_of_order(self):
        """Regression: the first-started window ends while the second is
        still open.  The restore must recompose the rate from the set of
        active faults — a pre-fault snapshot would wrongly restore 1.0
        at t=10 and 0.5 at t=20."""
        scenario = FaultScenario(
            name="s",
            slowdowns=[
                ServerSlowdown(start=0.0, end=10.0, rate=0.5),
                ServerSlowdown(start=5.0, end=20.0, rate=0.25),
            ],
        )
        sim, _, server = make_server()
        FaultDriver(scenario, server).install(sim)
        observed = []
        for t in (1.0, 6.0, 12.0, 25.0):
            sim.schedule(t, lambda: observed.append(server.service_rate))
        sim.run()
        assert observed == [0.5, 0.5 * 0.25, 0.25, 1.0]

    def test_recomposed_rate_is_history_independent(self):
        """With three overlapping windows the composed rate must be the
        canonical-order product of whatever set is active — identical
        whichever order windows happened to open or close in."""
        rates = (0.3, 0.7, 0.9)
        starts = (0.0, 2.0, 4.0)
        # First scenario: windows close in start order; second: reverse.
        ends_in_order = (10.0, 12.0, 14.0)
        ends_reversed = (14.0, 12.0, 10.0)
        observed = {}
        for label, ends in (("fifo", ends_in_order), ("lifo", ends_reversed)):
            scenario = FaultScenario(
                name=label,
                slowdowns=[
                    ServerSlowdown(start=s, end=e, rate=r)
                    for s, e, r in zip(starts, ends, rates)
                ],
            )
            sim, _, server = make_server()
            FaultDriver(scenario, server).install(sim)
            samples = []
            for t in (5.0, 20.0):
                sim.schedule(t, lambda: samples.append(server.service_rate))
            sim.run()
            observed[label] = samples
        # While all three are active the rate is the canonical-order
        # product regardless of open order; after all close it is 1.0.
        expected_all = (0.3 * 0.7) * 0.9  # (start, label) order
        assert observed["fifo"] == [expected_all, 1.0]
        assert observed["lifo"] == [expected_all, 1.0]

    def test_emits_paired_trace_markers(self):
        sim, _, server = make_server()
        rec = TraceRecorder()
        FaultDriver(self.scenario(), server, recorder=rec).install(sim)
        sim.run()
        events = [(e.kind, e.fields["label"]) for e in rec.events()]
        assert events == [
            ("fault.start", "server-slowdown-0"),
            ("fault.start", "hotspot-shift-0"),
            ("fault.end", "hotspot-shift-0"),
            ("fault.end", "server-slowdown-0"),
        ]
        start = next(e for e in rec.events() if e.kind == "fault.start")
        assert start.fields["fault"] == "server-slowdown"
        assert start.fields["rate"] == 0.5

    def test_policy_hook_sees_both_edges(self):
        sim, policy, server = make_server()
        FaultDriver(self.scenario(), server).install(sim)
        sim.run()
        assert policy.fault_calls == [
            (10.0, "server-slowdown-0", True),
            (15.0, "hotspot-shift-0", True),
            (15.0, "hotspot-shift-0", False),
            (20.0, "server-slowdown-0", False),
        ]

    def test_empty_scenario_schedules_nothing(self):
        sim, _, server = make_server()
        driver = FaultDriver(FaultScenario(name="none"), server)
        assert driver.install(sim) == 0
        sim.run()
        assert server.service_rate == 1.0
